"""Command-line interface: build indexes, run diverse queries, explore.

Examples::

    # Build an index from a typed CSV (see repro.storage.csvio) and save it.
    python -m repro build cars.csv --ordering Make,Model,Color,Year \
        --out cars.idx

    # One-shot diverse query against a saved index.
    python -m repro query cars.idx "Make = 'Honda'" -k 5

    # Scored search with a different algorithm.
    python -m repro query cars.idx \
        "Make = 'Honda' [2] OR Description CONTAINS 'low miles'" \
        -k 5 --algorithm onepass --scored

    # Interactive shell (reads one query per line).
    python -m repro shell cars.idx

    # No data handy? Explore the paper's Figure 1 example.
    python -m repro demo

    # Drive a generated workload and export the metrics registry
    # (add --check to fail when a paper access-bound was violated).
    python -m repro metrics cars.idx --shards 3 --check --out metrics.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .core.engine import ALGORITHMS, AUTO, DiversityEngine
from .data.paper_example import figure1_ordering, figure1_relation
from .index.inverted import InvertedIndex
from .index.snapshot import load_index, save_index
from .core.ordering import DiversityOrdering
from .parallel import UnsupportedWorkerModeError
from .query.parser import QueryParseError, parse_query
from .resilience import (
    ChaosPolicy,
    ResilienceError,
    ResiliencePolicy,
    ShardFaultSpec,
)
from .serving import ServingCache
from .sharding import ShardedEngine, ShardedIndex
from .storage.csvio import read_csv


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Diverse top-k query answering (ICDE 2008 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="index a CSV and save a snapshot")
    build.add_argument("csv", type=Path, help="typed CSV file (name:kind header)")
    build.add_argument(
        "--ordering",
        required=True,
        help="comma-separated diversity ordering, highest priority first",
    )
    build.add_argument("--out", type=Path, default=None, help="snapshot path")
    build.add_argument(
        "--backend", choices=["array", "bptree", "compressed"], default="array"
    )
    durability = build.add_argument_group(
        "durability",
        "initialise a crash-safe data directory instead of (or alongside) a "
        "bare snapshot file; mutations against it are write-ahead-logged",
    )
    durability.add_argument(
        "--data-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="create a durable store (snapshot + write-ahead log) here",
    )
    durability.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        metavar="N",
        help="re-snapshot and truncate a store's log whenever it reaches "
        "N records (0 = only on demand)",
    )
    durability.add_argument(
        "--fsync-every",
        type=int,
        default=1,
        metavar="N",
        help="fsync the WAL every N records (1 = every record, full "
        "durability; larger batches trade the tail of a crash for speed)",
    )
    durability.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="partition the durable store across N shards (one WAL + "
        "snapshot per shard); only meaningful with --data-dir",
    )
    durability.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="R",
        help="record a replication factor of R in the manifest: recover/"
        "serve grow each shard to R bit-identical copies with automatic "
        "failover (only replica 0 is persisted; the rest bootstrap from "
        "its snapshot + WAL)",
    )

    query = commands.add_parser("query", help="run one diverse query")
    query.add_argument(
        "index", type=Path,
        help="snapshot from 'build', or a --data-dir to recover and query",
    )
    query.add_argument("text", help="query text, e.g. \"Make = 'Honda'\"")
    _query_options(query)

    shell = commands.add_parser("shell", help="interactive query shell")
    shell.add_argument(
        "index", type=Path,
        help="snapshot from 'build', or a --data-dir to recover and query",
    )
    _query_options(shell)

    demo = commands.add_parser("demo", help="explore the paper's Figure 1 data")
    _query_options(demo)
    demo.add_argument("text", nargs="?", default="Make = 'Honda'")

    recover_cmd = commands.add_parser(
        "recover",
        help="recover a durable data directory and report what replay did",
    )
    recover_cmd.add_argument("data_dir", type=Path, help="durable store root")
    recover_cmd.add_argument(
        "--query",
        default=None,
        metavar="TEXT",
        help="optionally run one query against the recovered index",
    )
    _query_options(recover_cmd)

    plan_cmd = commands.add_parser(
        "plan",
        help="inspect the auto planner: cost model features + breakdown",
    )
    plan_cmd.add_argument(
        "action", choices=["explain"],
        help="'explain' prints the per-algorithm cost table for one query",
    )
    plan_cmd.add_argument(
        "index", type=Path, nargs="?", default=None,
        help="snapshot or durable data directory; omitted = Figure 1 demo",
    )
    plan_cmd.add_argument(
        "text", nargs="?", default=None,
        help="query text (default: \"Make = 'Honda'\")",
    )
    _query_options(plan_cmd)

    serve_cmd = commands.add_parser(
        "serve",
        help="serve diverse queries over HTTP (stdlib asyncio front-end)",
    )
    serve_cmd.add_argument(
        "index", type=Path, nargs="?", default=None,
        help="snapshot or durable data directory; omitted = Figure 1 demo",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8080,
        help="TCP port to bind (0 = pick a free port)",
    )
    serve_cmd.add_argument(
        "--server-workers", type=int, default=1, metavar="N",
        help="engine executor threads behind the admission queue",
    )
    serve_cmd.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="admission queue bound (requests beyond it are shed)",
    )
    serve_cmd.add_argument(
        "--default-deadline-ms", type=float, default=1000.0, metavar="MS",
        help="deadline for requests that do not set one "
        "(param deadline_ms or header X-Repro-Deadline-Ms)",
    )
    serve_cmd.add_argument(
        "--quota-rate", type=float, default=0.0, metavar="QPS",
        help="per-tenant token refill rate (X-Repro-Tenant header; "
        "0 disables quotas)",
    )
    serve_cmd.add_argument(
        "--quota-burst", type=float, default=10.0, metavar="N",
        help="per-tenant token bucket capacity",
    )
    _query_options(serve_cmd)

    metrics_cmd = commands.add_parser(
        "metrics",
        help="drive a generated workload and export the metrics registry",
    )
    metrics_cmd.add_argument(
        "index", type=Path, nargs="?", default=None,
        help="snapshot or durable data directory; omitted = Figure 1 demo",
    )
    metrics_cmd.add_argument(
        "--algorithms",
        default="probe,onepass",
        help="comma-separated algorithms the workload drives "
        "(default: probe,onepass — the two paper access-bound paths)",
    )
    metrics_cmd.add_argument(
        "--repeat", type=int, default=2, metavar="N",
        help="workload passes (repeats exercise the serving caches)",
    )
    metrics_cmd.add_argument(
        "--limit", type=int, default=8, metavar="N",
        help="values per attribute in the generated workload",
    )
    metrics_cmd.add_argument(
        "--format", choices=["json", "prometheus"], default="json",
        help="export format: the repro-metrics JSON snapshot, or the "
        "Prometheus text exposition",
    )
    metrics_cmd.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write the export here instead of stdout",
    )
    metrics_cmd.add_argument(
        "--check", action="store_true",
        help="exit 5 when a paper access-bound violation counter is nonzero "
        "(probe 2k bound, one-pass single-scan property)",
    )
    _query_options(metrics_cmd)

    args = parser.parse_args(argv)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "shell":
        return _cmd_shell(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_demo(args)


def _query_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-k", type=int, default=10, help="results to return")
    parser.add_argument(
        "--algorithm", choices=list(ALGORITHMS) + [AUTO], default="probe",
        help="fixed algorithm, or 'auto' to let the cost model pick "
        "(see 'python -m repro plan explain')",
    )
    parser.add_argument("--scored", action="store_true", help="scored search")
    parser.add_argument(
        "--stats", action="store_true", help="print probe statistics"
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve repeated queries from the plan/result caches",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="after running, write the process metrics registry snapshot "
        "(repro-metrics JSON) here",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="partition the index across N shards and answer by fan-out + "
        "diverse-merge (answers are identical to --shards 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker-pool size for the sharded fan-out (0 = sequential)",
    )
    parser.add_argument(
        "--worker-mode",
        choices=["thread", "process", "fork", "spawn"],
        default="thread",
        help="fan-out backend for the gather algorithms: 'thread' (GIL-"
        "bound), 'process' (real OS processes; picks fork where the "
        "platform has it, else spawn), or an explicit 'fork'/'spawn'",
    )
    resilience = parser.add_argument_group(
        "resilience (sharded deployments)",
        "per-query failure budgets and seeded fault injection; gather "
        "algorithms degrade to the surviving shards, scan algorithms fail "
        "fast with a structured error",
    )
    resilience.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-query deadline budget (default: unbounded)",
    )
    resilience.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="bounded retries per shard call on transient faults (default 2)",
    )
    resilience.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed for deterministic fault injection",
    )
    resilience.add_argument(
        "--chaos-latency-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="inject this much latency into every shard read",
    )
    resilience.add_argument(
        "--chaos-transient",
        type=float,
        default=0.0,
        metavar="RATE",
        help="probability in [0,1] that a shard read fails transiently",
    )
    resilience.add_argument(
        "--chaos-crash",
        default="",
        metavar="IDS",
        help="comma-separated shard ids to hard-kill (e.g. '0,2'); with "
        "--replicas, SHARD:REPLICA kills one copy (e.g. '0:1,2:0')",
    )
    replication = parser.add_argument_group(
        "replication (sharded deployments)",
        "R bit-identical copies per shard behind automatic failover: "
        "answers stay exact (never degraded) while at least one replica "
        "of every shard survives",
    )
    replication.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="R",
        help="replicas per shard (default: 1, or a durable store's "
        "manifest value when recovering)",
    )
    replication.add_argument(
        "--hedge-ms",
        type=float,
        default=None,
        metavar="MS",
        help="arm hedged reads: race a backup replica when the first "
        "read exceeds MS (adaptive: rises to the observed p95)",
    )


def _parse_crash_list(raw: str) -> list:
    """Crash addresses: '2' kills shard 2, '2:1' kills only its replica 1."""
    addresses: list = []
    try:
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" in part:
                shard, replica = part.split(":", 1)
                addresses.append((int(shard), int(replica)))
            else:
                addresses.append(int(part))
    except ValueError:
        print(
            f"--chaos-crash expects comma-separated shard ids or "
            f"SHARD:REPLICA pairs, got {raw!r}",
            file=sys.stderr,
        )
        raise SystemExit(2) from None
    return addresses


def _chaos_from_args(args) -> ChaosPolicy | None:
    """A ChaosPolicy when any --chaos-* flag asks for faults, else None."""
    latency = getattr(args, "chaos_latency_ms", 0.0)
    transient = getattr(args, "chaos_transient", 0.0)
    crashed = _parse_crash_list(getattr(args, "chaos_crash", ""))
    if not latency and not transient and not crashed:
        return None
    default = ShardFaultSpec(latency_ms=latency, transient_rate=transient)
    per_shard = {
        shard: ShardFaultSpec(
            latency_ms=latency, transient_rate=transient, crashed=True
        )
        for shard in crashed
    }
    return ChaosPolicy(
        seed=getattr(args, "chaos_seed", 0), default=default, per_shard=per_shard
    )


def _hedge_from_args(args):
    hedge_ms = getattr(args, "hedge_ms", None)
    if hedge_ms is None:
        return None
    from .replication import HedgePolicy

    return HedgePolicy(delay_ms=hedge_ms)


def _make_engine(index, args) -> DiversityEngine:
    shards = getattr(args, "shards", 1)
    if shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        raise SystemExit(2)
    replicas = getattr(args, "replicas", None) or 1
    if replicas < 1:
        print("--replicas must be >= 1", file=sys.stderr)
        raise SystemExit(2)
    if replicas > 1 and shards <= 1:
        print("--replicas needs a sharded deployment (--shards >= 2)",
              file=sys.stderr)
        raise SystemExit(2)
    if replicas > 1 and getattr(args, "worker_mode", "thread") != "thread":
        print("--worker-mode process/fork/spawn cannot serve a replicated "
              "deployment (--replicas >= 2); use --worker-mode thread",
              file=sys.stderr)
        raise SystemExit(2)
    if shards > 1:
        # Re-partition the loaded single index: snapshots store one index,
        # sharding is a deployment decision made at serve time.
        index = ShardedIndex.build(
            index.relation, index.ordering, shards=shards, backend=index.backend
        )
        policy = ResiliencePolicy(
            deadline_ms=getattr(args, "deadline_ms", None),
            max_retries=getattr(args, "retries", 2),
            seed=getattr(args, "chaos_seed", 0),
        )
        if replicas > 1:
            index.replicate(replicas, policy=policy, hedge=_hedge_from_args(args))
        engine: DiversityEngine = ShardedEngine(
            index, workers=getattr(args, "workers", 0),
            worker_mode=getattr(args, "worker_mode", "thread"), policy=policy,
        )
        chaos = _chaos_from_args(args)
        if chaos is not None:
            try:
                engine.inject_chaos(chaos)
            except UnsupportedWorkerModeError as error:
                print(str(error), file=sys.stderr)
                raise SystemExit(2) from None
    else:
        engine = DiversityEngine(index)
    _attach_cache(engine, args)
    return engine


def _attach_cache(engine: DiversityEngine, args) -> None:
    """Attach a serving cache per ``--cache`` and export its counters."""
    _attach_postings_metrics(engine)
    if not getattr(args, "cache", False):
        return
    from .observability import get_registry
    from .serving.engine import register_cache_collector

    engine.attach_cache(ServingCache())
    collector = register_cache_collector(get_registry(), engine)
    if collector is not None:
        # Pin the weakref'd collector to the engine for the process lifetime.
        engine._metrics_collector = collector


def _attach_postings_metrics(engine: DiversityEngine) -> None:
    """Export posting-list memory gauges for the engine's index."""
    from .observability import get_registry, register_postings_collector

    index = engine.index
    if not hasattr(index, "memory_stats"):
        return
    collector = register_postings_collector(get_registry(), index)
    if collector is not None:
        engine._postings_collector = collector


def _cmd_build(args) -> int:
    if args.out is None and args.data_dir is None:
        print("build needs --out and/or --data-dir", file=sys.stderr)
        return 2
    if args.replicas < 1:
        print("--replicas must be >= 1", file=sys.stderr)
        return 2
    if args.replicas > 1 and args.shards <= 1:
        print("--replicas needs a sharded store (--shards >= 2)",
              file=sys.stderr)
        return 2
    started = time.perf_counter()
    relation = read_csv(args.csv, name=args.csv.stem)
    ordering = DiversityOrdering(
        [name.strip() for name in args.ordering.split(",") if name.strip()]
    )
    destinations = []
    if args.data_dir is not None:
        from .durability import create_sharded_store, create_store

        if args.shards > 1:
            sharded = ShardedIndex.build(
                relation, ordering, shards=args.shards, backend=args.backend
            )
            create_sharded_store(
                sharded, args.data_dir, snapshot_every=args.snapshot_every,
                fsync_every=args.fsync_every, replicas=args.replicas,
            )
            suffix = (f", x{args.replicas} replicas on recovery"
                      if args.replicas > 1 else "")
            destinations.append(
                f"{args.data_dir} ({args.shards} durable shards{suffix})"
            )
        else:
            index = InvertedIndex.build(relation, ordering, backend=args.backend)
            create_store(
                index, args.data_dir, snapshot_every=args.snapshot_every,
                fsync_every=args.fsync_every,
            )
            destinations.append(f"{args.data_dir} (durable store)")
    if args.out is not None:
        index = InvertedIndex.build(relation, ordering, backend=args.backend)
        save_index(index, args.out)
        destinations.append(str(args.out))
    elapsed = time.perf_counter() - started
    print(
        f"indexed {len(relation)} rows "
        f"({len(ordering)} diversity levels, backend={args.backend}) "
        f"in {elapsed:.2f}s -> {', '.join(destinations)}"
    )
    return 0


def _recover_engine(data_dir: Path, args) -> DiversityEngine:
    """Recover a durable data directory into a query engine, or exit 4."""
    from .durability import DurableIndex, RecoveryError, recover

    try:
        recovered = recover(data_dir)
    except RecoveryError as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        raise SystemExit(4) from None
    if isinstance(recovered, DurableIndex):
        engine: DiversityEngine = DiversityEngine(recovered)
    else:
        policy = ResiliencePolicy(
            deadline_ms=getattr(args, "deadline_ms", None),
            max_retries=getattr(args, "retries", 2),
            seed=getattr(args, "chaos_seed", 0),
        )
        replicas = getattr(args, "replicas", None)
        if replicas is None:
            # The build-time --replicas choice lives in the manifest;
            # recovery re-grows to that factor unless overridden.
            from .durability.store import read_manifest

            replicas = int(read_manifest(data_dir).get("replicas", 1))
        if replicas > 1:
            recovered.replicate(replicas, policy=policy,
                                hedge=_hedge_from_args(args))
        engine = ShardedEngine(
            recovered, workers=getattr(args, "workers", 0),
            worker_mode=getattr(args, "worker_mode", "thread"), policy=policy,
        )
        chaos = _chaos_from_args(args)
        if chaos is not None:
            try:
                engine.inject_chaos(chaos)
            except UnsupportedWorkerModeError as error:
                print(str(error), file=sys.stderr)
                raise SystemExit(2) from None
    _attach_cache(engine, args)
    return engine


def _open_engine(path: Path, args) -> DiversityEngine:
    """Serve either a bare snapshot file or a durable data directory."""
    if path.is_dir():
        return _recover_engine(path, args)
    return _make_engine(load_index(path), args)


def _durable_stores(engine: DiversityEngine) -> list:
    """The DurableIndex stores behind an engine (empty when not durable)."""
    index = engine.index
    candidates = getattr(index, "shards", [index])
    return [store for store in candidates if hasattr(store, "recovery")]


def _cmd_recover(args) -> int:
    engine = _recover_engine(args.data_dir, args)
    stores = _durable_stores(engine)
    for store in stores:
        label = store.wal.path.parent
        print(f"{label}: {store.recovery.describe()}")
    relation = engine.relation
    print(
        f"recovered {relation.live_count} live rows "
        f"({len(relation)} slots) at epoch {engine.epoch} "
        f"across {len(stores)} store(s)"
    )
    if args.query is not None:
        return _run_query(engine, args, args.query)
    return 0


def _run_query(engine: DiversityEngine, args, text: str) -> int:
    try:
        parsed = parse_query(text)
    except QueryParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    try:
        result = engine.search(
            parsed, k=args.k, algorithm=args.algorithm, scored=args.scored
        )
    except ResilienceError as error:
        # Structured failure from the sharded fan-out: deadline exhausted,
        # or shards lost that the scan algorithms cannot answer without.
        print(f"unavailable: {error}", file=sys.stderr)
        _write_metrics_snapshot(args)
        return 3
    elapsed = (time.perf_counter() - started) * 1000
    print(result.to_table())
    degraded = ""
    if result.stats.get("degraded"):
        degraded = (
            f" DEGRADED {result.stats['shards_failed']}/"
            f"{result.stats['shards_total']} shards lost;"
        )
    label = args.algorithm
    if args.algorithm == AUTO and result.stats.get("algorithm_selected"):
        label = f"auto->{result.stats['algorithm_selected']}"
    print(
        f"[{len(result)} results, {label}"
        f"{' scored' if args.scored else ''},{degraded} {elapsed:.2f} ms]"
    )
    if args.stats:
        for key, value in sorted(result.stats.items()):
            print(f"  {key}: {value}")
    _write_metrics_snapshot(args)
    return 0


def _cmd_serve(args) -> int:
    """Run the HTTP front-end until SIGTERM/SIGINT, then drain."""
    from .server import ServerConfig, run_server
    from .serving.engine import ServingEngine

    # The serving wrapper owns caching on this path: skip the CLI-attached
    # cache so there is exactly one ServingCache in front of the engine.
    args.cache = False
    if args.index is None:
        from .data.paper_example import figure1_ordering, figure1_relation

        index = InvertedIndex.build(figure1_relation(), figure1_ordering())
        engine = _make_engine(index, args)
    else:
        engine = _open_engine(args.index, args)
    serving = ServingEngine(engine)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=max(1, args.server_workers),
        queue_depth=args.queue_depth,
        default_deadline_ms=args.default_deadline_ms,
        default_k=args.k,
        default_algorithm=args.algorithm,
        quota_rate_per_s=args.quota_rate,
        quota_burst=args.quota_burst,
    )
    try:
        return run_server(serving, config)
    finally:
        # Drain has finished every admitted request by the time run_server
        # returns, so closing here never cuts an answer off mid-execution.
        serving.close()
        _write_metrics_snapshot(args)


def _write_metrics_snapshot(args) -> None:
    """Honour ``--metrics-out`` (a no-op when the flag is absent)."""
    path = getattr(args, "metrics_out", None)
    if path is None:
        return
    import json

    from .observability import get_registry

    document = get_registry().snapshot()
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True, default=str) + "\n"
    )


def _workload_queries(engine: DiversityEngine, limit: int) -> list:
    """A scalar-predicate workload generated from the index vocabulary.

    One equality query per (attribute, value) up to ``limit`` values per
    attribute, plus one OR and one AND combination per attribute pair —
    enough shape diversity to exercise union and leapfrog cursors.
    """
    from .query.query import Query

    scalars = []
    for attribute in engine.ordering.attributes:
        values = engine.index.vocabulary(attribute)[: max(0, limit)]
        scalars.extend(Query.scalar(attribute, value) for value in values)
    combos = []
    for first, second in zip(scalars, scalars[1:]):
        combos.append(first | second)
    if len(scalars) >= 2:
        combos.append(scalars[0] & scalars[1])
    return scalars + combos


def _bound_violations(snapshot: dict) -> float:
    """Sum of the paper access-bound violation counters in a snapshot."""
    return sum(
        counter["value"]
        for counter in snapshot.get("counters", ())
        if counter["name"] in (
            "repro_probe_bound_violations_total",
            "repro_onepass_scan_violations_total",
            "repro_plan_bound_violations_total",
        )
    )


def _cmd_plan(args) -> int:
    """``plan explain``: print the auto planner's verdict for one query."""
    from .planner import estimate_costs, render_explain

    index_arg, text = args.index, args.text
    if text is None:
        # Two optional positionals: a single argument that is not an
        # existing index path is the query text (demo data).
        if index_arg is not None and not index_arg.exists():
            index_arg, text = None, str(index_arg)
        else:
            text = "Make = 'Honda'"
    if index_arg is not None:
        engine = _open_engine(index_arg, args)
    else:
        engine = _make_engine(
            InvertedIndex.build(figure1_relation(), figure1_ordering()), args
        )
    try:
        parsed = parse_query(text)
    except QueryParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2
    try:
        prepared = engine.prepare(parsed, args.scored)
        decision = engine.plan(prepared, args.k, args.scored)
        all_costs = estimate_costs(
            engine.index, prepared, args.k, args.scored
        )
    except ResilienceError as error:
        print(f"unavailable: {error}", file=sys.stderr)
        return 3
    print(f"query: {prepared.describe()}")
    print(render_explain(decision, all_costs))
    _write_metrics_snapshot(args)
    return 0


def _cmd_metrics(args) -> int:
    import json

    from .observability import get_registry

    algorithms = [
        name.strip() for name in args.algorithms.split(",") if name.strip()
    ]
    valid = ALGORITHMS + (AUTO,)
    unknown = [name for name in algorithms if name not in valid]
    if not algorithms or unknown:
        print(
            f"--algorithms must name algorithms from {valid}, "
            f"got {args.algorithms!r}",
            file=sys.stderr,
        )
        return 2
    if args.index is not None:
        engine = _open_engine(args.index, args)
    else:
        engine = _make_engine(
            InvertedIndex.build(figure1_relation(), figure1_ordering()), args
        )
    # Workload generation is control-plane work: read the vocabulary with
    # chaos disarmed, then re-inject so only the serving path sees faults.
    if hasattr(engine, "clear_chaos"):
        engine.clear_chaos()
    queries = _workload_queries(engine, args.limit)
    chaos = _chaos_from_args(args)
    if chaos is not None and hasattr(engine, "inject_chaos"):
        engine.inject_chaos(chaos)
    failures = 0
    for _ in range(max(1, args.repeat)):
        for parsed in queries:
            for algorithm in algorithms:
                try:
                    engine.search(
                        parsed, k=args.k, algorithm=algorithm, scored=args.scored
                    )
                except ResilienceError:
                    # Chaos/degradation is part of the point: the workload
                    # keeps going and the failure lands in the metrics.
                    failures += 1
    registry = get_registry()
    snapshot = registry.snapshot()
    if args.format == "prometheus":
        text = registry.render_prometheus()
    else:
        text = json.dumps(snapshot, indent=2, sort_keys=True, default=str) + "\n"
    if args.out is not None:
        args.out.write_text(text)
        print(f"wrote {args.out} ({args.format}, "
              f"{len(queries) * len(algorithms) * max(1, args.repeat)} "
              f"workload queries, {failures} unavailable)")
    else:
        sys.stdout.write(text)
    if args.check:
        violations = _bound_violations(snapshot)
        if violations:
            print(
                f"BOUND VIOLATIONS: {violations:g} "
                "(probe 2k bound / one-pass single-scan)",
                file=sys.stderr,
            )
            return 5
        print("bounds ok: probe <= 2k+1, one-pass single scan",
              file=sys.stderr)
    return 0


def _cmd_query(args) -> int:
    engine = _open_engine(args.index, args)
    return _run_query(engine, args, args.text)


def _cmd_shell(args) -> int:
    engine = _open_engine(args.index, args)
    print(
        f"repro shell — {engine.index!r}\n"
        f"ordering: {engine.ordering!r}\n"
        "enter a query per line (blank or 'exit' quits):"
    )
    for line in sys.stdin:
        text = line.strip()
        if not text or text.lower() in ("exit", "quit", r"\q"):
            break
        _run_query(engine, args, text)
        print()
    return 0


def _cmd_demo(args) -> int:
    index = InvertedIndex.build(figure1_relation(), figure1_ordering())
    engine = _make_engine(index, args)
    print("Figure 1(a) Cars relation (15 rows), "
          "ordering Make < Model < Color < Year < Description\n")
    return _run_query(engine, args, args.text)


if __name__ == "__main__":
    sys.exit(main())
