"""Spawn-safe worker bootstrap: one shard replica from its snapshot dir.

A ``spawn`` worker starts with a fresh interpreter — nothing of the
parent's built index survives the exec — so it rebuilds its shards from
the durability layer's on-disk layout (``data_dir/shard-NNNN/`` holding a
partial rid-subset snapshot plus that shard's WAL).

The full deployment recovery (:func:`repro.durability.sharded
.recover_sharded_store`) restores the *global* relation and refuses rid
gaps, because the coordinator must keep every shard's rows addressable.
A worker needs none of that: the gather algorithms observe only Dewey
IDs — posting lists, ``MergedList`` cursors and ``diverse_subset`` never
read a rid — so the replica packs just its own shard's live rows into a
local dense-rid relation and force-restores the *shared global* Dewey
assignment over them.  Posting-list content (the set of Dewey IDs per
``(attribute, value)``) is bit-identical to the coordinator's shard, and
the replica lands on the shard's exact mutation epoch, which is what the
coordinator's epoch fence checks against.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..core.ordering import DiversityOrdering
from ..durability.errors import RecoveryError
from ..index.inverted import InvertedIndex
from ..index.snapshot import SnapshotError, read_snapshot, restore_dewey
from ..storage.relation import Relation
from ..storage.schema import Attribute, AttributeKind, Schema


def load_shard_replica(
    data_dir: Union[str, Path], shard_id: int
) -> InvertedIndex:
    """Rebuild shard ``shard_id`` of the deployment at ``data_dir``.

    Returns a standalone read-only :class:`InvertedIndex` whose posting
    lists, Dewey assignments and mutation epoch match the coordinator's
    shard exactly (snapshot + full WAL replay).  Raises
    :class:`RecoveryError` on a damaged or inconsistent directory — a
    worker must refuse to serve from a shard it cannot prove complete.
    """
    from ..durability.sharded import shard_dir_name
    from ..durability.store import (
        SNAPSHOT_NAME,
        WAL_NAME,
        _scan_wal_for_recovery,
        parse_record,
        read_manifest,
    )

    data_dir = Path(data_dir)
    manifest = read_manifest(data_dir)
    if manifest.get("kind") != "sharded":
        raise RecoveryError(
            data_dir,
            f"manifest kind {manifest.get('kind')!r} is not a sharded store",
        )
    num_shards = int(manifest.get("shards", 0))
    if not 0 <= shard_id < num_shards:
        raise RecoveryError(
            data_dir,
            f"shard {shard_id} outside the deployment's 0..{num_shards - 1}",
        )
    shard_dir = data_dir / shard_dir_name(shard_id)
    snapshot_path = shard_dir / SNAPSHOT_NAME
    if not snapshot_path.exists():
        raise RecoveryError(
            data_dir, f"missing snapshot for shard {shard_id} ({snapshot_path})"
        )
    try:
        payload = read_snapshot(snapshot_path)
    except SnapshotError as error:
        raise RecoveryError(data_dir, str(error)) from error
    scan = _scan_wal_for_recovery(shard_dir / WAL_NAME, shard_dir)

    # ---- Snapshot state: this shard's rows + live Dewey assignments.
    rows = {int(rid): row for rid, row in payload["rows"]}
    assignments = {
        int(rid): tuple(int(component) for component in components)
        for rid, components in payload["deweys"]
    }
    live = set(assignments)

    # ---- WAL replay on top (same seq/gap discipline as full recovery).
    snapshot_epoch = int(payload.get("epoch", 0))
    expected = snapshot_epoch
    for record in scan.records:
        seq, op, rid, dewey, row = parse_record(record, shard_dir)
        if seq <= snapshot_epoch:
            continue  # superseded by the snapshot (post-rename crash)
        expected += 1
        if seq != expected:
            raise RecoveryError(
                shard_dir,
                f"WAL sequence gap: expected seq {expected}, found {seq}",
            )
        if op == "insert":
            rows[rid] = row
            assignments[rid] = dewey
            live.add(rid)
        else:  # remove
            if rid not in live or assignments.get(rid) != dewey:
                raise RecoveryError(
                    shard_dir,
                    f"remove record {seq} references rid {rid} with Dewey "
                    f"{list(dewey)} not live in this shard",
                )
            live.discard(rid)
            del assignments[rid]

    # ---- Local dense-rid relation over the live rows (global-rid order).
    try:
        schema = Schema(
            Attribute(name, AttributeKind(kind))
            for name, kind in payload["schema"]
        )
    except (KeyError, TypeError, ValueError) as error:
        raise RecoveryError(data_dir, f"bad schema: {error}") from None
    relation = Relation(schema, name=payload.get("name", "R"))
    ordering = DiversityOrdering(payload["ordering"])
    local_assignments = {}
    for local_rid, global_rid in enumerate(sorted(live)):
        relation.insert(rows[global_rid])
        local_assignments[local_rid] = assignments[global_rid]
    try:
        dewey = restore_dewey(relation, ordering, local_assignments)
    except SnapshotError as error:
        raise RecoveryError(data_dir, str(error)) from error
    index = InvertedIndex(
        relation, ordering, backend=payload["backend"], dewey=dewey
    )
    for local_rid in range(len(relation)):
        index.index_restored_row(local_rid)
    index.restore_epoch(expected)
    return index
