"""Process-based shard execution for the scatter-gather fan-out.

CPython threads cannot run the pure-python per-shard diverse top-k
concurrently (the GIL serialises them — BENCH_sharding.json documents the
thread pool as a pure slowdown), so this package moves the *gather*
algorithms' shard work into real OS processes:

* :class:`~repro.parallel.pool.ProcessShardPool` — the coordinator side.
  One dedicated worker process per pool slot, each owning a fixed subset
  of shards, spoken to over a :mod:`multiprocessing` pipe.  The
  coordinator ships only ``(query, k, algorithm, scored, epoch)`` per
  shard and receives the per-shard candidate lists (Dewey IDs + scores)
  that the existing Definitions 1-2 diverse-merge consumes unchanged.
* :mod:`~repro.parallel.worker` — the worker side: a blocking task loop
  over the pipe, answering against a read-only shard replica.  Replicas
  bootstrap two ways: ``fork`` workers inherit the built in-memory shard
  indexes from the parent (POSIX, zero-copy until the first write);
  ``spawn`` workers rebuild them from the durability layer's per-shard
  snapshot directories (``shard-NNNN`` + MANIFEST,
  :func:`~repro.parallel.bootstrap.load_shard_replica`).
* **Epoch fencing** — every request carries the per-shard mutation epoch
  the coordinator expects; a worker whose replica sits at any other epoch
  answers ``stale`` instead of computing, and the coordinator rebuilds
  the pool rather than merging a stale candidate list.

Deployments the workers cannot faithfully mirror are rejected up front
with :class:`UnsupportedWorkerModeError` (never silently bypassed):
chaos fault plans and replica-set failover are coordinator-side state
that does not exist inside a worker process.
"""

from .bootstrap import load_shard_replica
from .pool import (
    CRASHED,
    DEADLINE,
    ERROR,
    OK,
    PROCESS_MODES,
    STALE,
    ProcessShardPool,
    UnsupportedWorkerModeError,
    WORKER_MODES,
    resolve_worker_mode,
)
from .worker import compute_candidates

__all__ = [
    "CRASHED",
    "DEADLINE",
    "ERROR",
    "OK",
    "PROCESS_MODES",
    "STALE",
    "ProcessShardPool",
    "UnsupportedWorkerModeError",
    "WORKER_MODES",
    "compute_candidates",
    "load_shard_replica",
    "resolve_worker_mode",
]
