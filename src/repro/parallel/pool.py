"""Coordinator side of the process backend: dedicated per-shard workers.

Design notes (measured, not guessed):

* **Dedicated pipe workers, not an executor.**  A
  ``ProcessPoolExecutor`` round-trip costs ~0.7 ms for a 4-way fan-out on
  this codebase's payloads; a bare ``multiprocessing.Pipe`` to a
  dedicated worker costs ~0.1 ms.  At benchmark scale the fan-out runs
  per query, so the transport overhead is the difference between the
  process backend paying for itself and losing to serial outright.
* **Static shard ownership.**  Shards are assigned round-robin to
  ``min(workers, num_shards)`` workers at build time.  Each worker keeps
  its replicas hot for its whole life — no per-task replica lookup, no
  cross-worker state.
* **Epoch fencing, both sides.**  The pool records the per-shard epochs
  it was built at; :meth:`ProcessShardPool.stale` compares them against
  the live index so the engine rebuilds *before* fanning out after a
  mutation.  Each request additionally carries the expected epoch so a
  worker whose replica drifted anyway (the fork raced a mutation, the
  disk state ran behind) answers ``stale`` rather than computing — the
  coordinator never merges a candidate list from the wrong epoch.
* **Failure containment.**  A dead worker marks the pool broken and
  costs exactly its shards (reported ``crashed`` — the engine degrades
  or fails per the gather contract); the next fan-out rebuilds.  Close
  is idempotent, lock-serialised, and joins every worker (terminate
  after a bounded grace), so "close returned" means "no children left".
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .worker import clear_fork_shards, set_fork_shards, worker_main

#: Every accepted ``worker_mode``; "process" resolves to the platform's
#: best process mode (fork where available, spawn otherwise).
WORKER_MODES = ("thread", "process", "fork", "spawn")
PROCESS_MODES = ("fork", "spawn")

#: Per-shard fan-out statuses.
OK = "ok"
STALE = "stale"
ERROR = "error"
DEADLINE = "deadline"
CRASHED = "crashed"

#: Grace period for worker join before escalating to terminate.
_JOIN_TIMEOUT_S = 5.0


class UnsupportedWorkerModeError(ValueError):
    """A worker-mode / deployment-feature combination that cannot work.

    Raised eagerly (injection or pool-build time) instead of silently
    bypassing the feature: process workers hold read-only replicas, so
    coordinator-side machinery — chaos fault plans, replica-set failover
    — would simply not exist on their execution path.
    """


def resolve_worker_mode(mode: str) -> str:
    """Map a user-facing mode to a concrete one (``process`` -> platform)."""
    if mode not in WORKER_MODES:
        raise ValueError(
            f"worker_mode must be one of {WORKER_MODES}, got {mode!r}"
        )
    if mode == "process":
        return "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    if mode in PROCESS_MODES and mode not in mp.get_all_start_methods():
        raise UnsupportedWorkerModeError(
            f"worker_mode={mode!r} is unavailable on this platform "
            f"(start methods: {mp.get_all_start_methods()})"
        )
    return mode


def _data_shard(shard, shard_id: int):
    """Validate + unwrap one shard slot for process execution.

    Replica sets and chaos proxies are coordinator-side wrappers a worker
    replica cannot mirror — reject them loudly rather than serving reads
    that silently skip failover/fault plans.  Durable wrappers unwrap to
    their in-memory index (the WAL handle stays with the parent).
    """
    from ..replication.replica_set import ReplicaSet

    if isinstance(shard, ReplicaSet):
        raise UnsupportedWorkerModeError(
            f"process workers cannot fan out over a replicated deployment: "
            f"shard {shard_id} is a ReplicaSet, and replica failover/hedging "
            f"is coordinator-side state that does not exist inside a worker "
            f"process; use worker_mode='thread' with replicas > 1"
        )
    if getattr(shard, "chaos", None) is not None:
        raise UnsupportedWorkerModeError(
            f"process workers cannot honour an injected chaos policy: shard "
            f"{shard_id} carries a fault plan the worker replicas would "
            f"silently ignore; clear chaos or use worker_mode='thread'"
        )
    return shard


class ProcessShardPool:
    """``min(workers, num_shards)`` worker processes over private pipes."""

    def __init__(self, index, workers: int, mode: str, registry=None):
        if mode not in PROCESS_MODES:
            raise ValueError(
                f"ProcessShardPool mode must be one of {PROCESS_MODES}, "
                f"got {mode!r} (resolve 'process' first)"
            )
        if workers < 1:
            raise ValueError("process pool needs workers >= 1")
        self._index = index
        self._mode = mode
        self._workers_requested = workers
        self._registry = registry
        self._lock = threading.RLock()
        self._procs: List = []
        self._conns: List = []
        self._assignment: Dict[int, int] = {}
        self._built_epochs: List[int] = []
        self._broken = False
        self._closed = False
        self._request_counter = 0
        self._build()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        return self._mode

    @property
    def width(self) -> int:
        """Worker-process count (``min(workers, num_shards)`` at build)."""
        return len(self._procs)

    @property
    def built_epochs(self) -> List[int]:
        """Per-shard epochs the current workers were built at."""
        return list(self._built_epochs)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        """True once any worker died or a pipe failed (rebuild pending)."""
        return self._broken

    def worker_of(self, shard_id: int) -> int:
        return self._assignment[shard_id]

    def worker_pids(self) -> List[Optional[int]]:
        return [proc.pid for proc in self._procs]

    def stale(self) -> bool:
        """Does the pool need a rebuild before the next fan-out?"""
        return (
            self._broken
            or self._built_epochs != list(self._index.shard_epochs())
        )

    def matches(self, workers: int, mode: str, num_shards: int) -> bool:
        """Is this pool still the right shape for the engine's config?"""
        return (
            not self._closed
            and self._workers_requested == workers
            and self._mode == mode
            and len(self._built_epochs) == num_shards
        )

    # ------------------------------------------------------------------
    # Build / rebuild
    # ------------------------------------------------------------------
    def _spawn_data_dir(self, shards) -> Path:
        """The deployment directory spawn workers bootstrap from.

        Spawn workers start from a clean interpreter, so every shard must
        be durably backed (a ``DurableIndex`` with a ``shard-NNNN``
        snapshot dir); the shared parent of those dirs is the deployment
        root the workers read.  WALs are synced first so the on-disk
        state includes every acknowledged mutation.
        """
        roots = set()
        for shard_id, shard in enumerate(shards):
            snapshot_path = getattr(shard, "snapshot_path", None)
            wal = getattr(shard, "wal", None)
            if snapshot_path is None or wal is None:
                raise UnsupportedWorkerModeError(
                    f"worker_mode='spawn' bootstraps workers from per-shard "
                    f"snapshot directories, but shard {shard_id} has no "
                    f"durable store; create the deployment with a data_dir "
                    f"(repro.durability) or use worker_mode='fork'/'thread'"
                )
            wal.sync()
            roots.add(Path(snapshot_path).parent.parent)
        if len(roots) != 1:
            raise UnsupportedWorkerModeError(
                f"shards live in {len(roots)} different deployment "
                f"directories; spawn workers need a single data_dir"
            )
        return roots.pop()

    def _build(self) -> None:
        index = self._index
        num_shards = index.num_shards
        width = max(1, min(self._workers_requested, num_shards))
        shards = [
            _data_shard(shard, shard_id)
            for shard_id, shard in enumerate(index.shards)
        ]
        data_dir: Optional[str] = None
        if self._mode == "spawn":
            data_dir = str(self._spawn_data_dir(shards))
        context = mp.get_context(self._mode)
        assignment = {
            shard_id: shard_id % width for shard_id in range(num_shards)
        }
        owned = [
            [sid for sid in range(num_shards) if assignment[sid] == slot]
            for slot in range(width)
        ]
        if self._mode == "fork":
            # Fork workers inherit the *in-memory* indexes (a durable
            # shard's WAL handle stays with the parent — workers only
            # read postings).
            set_fork_shards({
                shard_id: getattr(shard, "index", shard)
                for shard_id, shard in enumerate(shards)
            })
        procs: List = []
        conns: List = []
        try:
            for slot in range(width):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=worker_main,
                    args=(child_conn, self._mode, owned[slot], data_dir),
                    name=f"repro-shard-worker-{slot}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns.append(parent_conn)
        except BaseException:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT_S)
            raise
        finally:
            if self._mode == "fork":
                clear_fork_shards()
        self._procs = procs
        self._conns = conns
        self._assignment = assignment
        self._built_epochs = list(index.shard_epochs())
        self._broken = False
        if self._registry is not None:
            self._registry.gauge(
                "repro_parallel_workers",
                "Live shard worker processes in the process pool",
            ).set(float(width))

    def rebuild(self, reason: str) -> None:
        """Tear the workers down and re-bootstrap at the current epoch."""
        with self._lock:
            self._teardown()
            self._closed = False
            self._build()
        if self._registry is not None:
            self._registry.counter(
                "repro_parallel_pool_rebuilds_total",
                "Process-pool rebuilds, by trigger",
                reason=reason,
            ).inc()

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------
    def fanout(
        self,
        query,
        k: int,
        algorithm: str,
        scored: bool,
        expected_epochs: List[int],
        deadline=None,
    ) -> Dict[int, Tuple[str, object, float]]:
        """One request per shard; returns ``{shard_id: (status, value,
        elapsed_ms)}`` with every shard present.

        Serialised on the pool lock — one fan-out owns the pipes at a
        time (concurrent batched serving should use thread mode).  On
        deadline expiry the in-flight shards report ``deadline`` and
        their late replies are discarded by request-id matching on the
        next fan-out.  A dead pipe reports ``crashed`` for the worker's
        shards and marks the pool broken (rebuilt on next use).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("process shard pool is closed")
            self._request_counter += 1
            request_id = self._request_counter
            results: Dict[int, Tuple[str, object, float]] = {}
            pending: Dict[int, set] = {slot: set() for slot in range(self.width)}
            for shard_id, slot in self._assignment.items():
                message = (
                    request_id, shard_id, query, k, algorithm, scored,
                    expected_epochs[shard_id],
                )
                try:
                    self._conns[slot].send(message)
                except (OSError, ValueError):
                    self._broken = True
                    results[shard_id] = (
                        CRASHED, f"worker {slot} pipe closed", 0.0
                    )
                    continue
                pending[slot].add(shard_id)
            while any(pending.values()):
                waiting = [
                    self._conns[slot]
                    for slot, outstanding in pending.items()
                    if outstanding
                ]
                timeout = None
                if deadline is not None:
                    remaining_ms = deadline.remaining_ms()
                    if remaining_ms != float("inf"):
                        timeout = max(0.0, remaining_ms / 1000.0)
                ready = mp.connection.wait(waiting, timeout=timeout)
                if not ready:
                    for slot, outstanding in pending.items():
                        for shard_id in outstanding:
                            results[shard_id] = (DEADLINE, None, 0.0)
                        outstanding.clear()
                    break
                for conn in ready:
                    slot = self._conns.index(conn)
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        self._broken = True
                        for shard_id in pending[slot]:
                            results[shard_id] = (
                                CRASHED, f"worker {slot} died", 0.0
                            )
                        pending[slot] = set()
                        continue
                    reply_request, shard_id, status, value, elapsed_ms = reply
                    if reply_request != request_id:
                        continue  # late answer from an abandoned fan-out
                    pending[slot].discard(shard_id)
                    results[shard_id] = (status, value, elapsed_ms)
            return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down and join it; idempotent, thread-safe."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown()
        if self._registry is not None:
            self._registry.gauge(
                "repro_parallel_workers",
                "Live shard worker processes in the process pool",
            ).set(0.0)

    def _teardown(self) -> None:
        procs, self._procs = self._procs, []
        conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.send(None)  # graceful shutdown sentinel
            except (OSError, ValueError):
                pass
        for proc in procs:
            proc.join(timeout=_JOIN_TIMEOUT_S)
        for proc in procs:
            if proc.is_alive():  # stuck mid-task: escalate
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT_S)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        self._assignment = {}
        self._built_epochs = []

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("broken" if self._broken else "live")
        return (
            f"ProcessShardPool(mode={self._mode!r}, width={self.width}, "
            f"shards={len(self._built_epochs)}, {state})"
        )
