"""The worker-process side of the shard pool: a pipe-driven task loop.

Each worker owns a fixed subset of shards (round-robin over the pool
width) and answers ``(query, k, algorithm, scored, epoch)`` requests with
that shard's gather candidates — exactly the value the coordinator's
in-thread closure computes, so the downstream Definitions 1-2 merge is
oblivious to which side produced it.

Replicas come from one of two places:

* **fork** — the parent publishes its built shard indexes through
  :func:`set_fork_shards` immediately before forking; the child inherits
  them copy-on-write and clears nothing (the loop only reads).
* **spawn** — the child gets a data directory instead and lazily rebuilds
  each owned shard from its snapshot + WAL
  (:func:`~repro.parallel.bootstrap.load_shard_replica`) on first use.

**Epoch fence.**  Every request names the per-shard mutation epoch the
coordinator currently observes.  A replica at any other epoch — the
parent mutated after the fork, or the on-disk state ran ahead/behind —
answers ``("stale", (seen, expected))`` without computing, and the
coordinator rebuilds the pool.  A stale candidate list is never merged.

The loop is total: per-task exceptions are reported as ``("error", ...)``
replies, never allowed to kill the worker; only a closed pipe or the
``None`` shutdown sentinel ends the process.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core import baselines
from ..core.diversify import diverse_subset, scored_diverse_subset

#: Fork-inherited shard views, published by the parent just before the
#: pool forks and cleared right after — never used by spawn workers.
_FORK_SHARDS: Optional[Dict[int, object]] = None


def set_fork_shards(shards: Dict[int, object]) -> None:
    global _FORK_SHARDS
    _FORK_SHARDS = shards


def clear_fork_shards() -> None:
    global _FORK_SHARDS
    _FORK_SHARDS = None


def compute_candidates(shard, query, k: int, algorithm: str, scored: bool):
    """One shard's gather contribution: ``(candidates, next_calls,
    scored_next_calls)`` — the exact tuple the thread path produces.

    Only the scatter-gather algorithms run here (``naive``, and unscored
    ``basic``); the scan algorithms are coordinator-driven by design
    (their probe order must see the union cursors) and never reach a
    worker.
    """
    from ..index.merged import MergedList

    merged = MergedList(query, shard)
    if algorithm == "naive":
        if scored:
            matches = baselines.collect_all_scored(merged)
            chosen = scored_diverse_subset(matches, k)
            local = {dewey: matches[dewey] for dewey in chosen}
        else:
            local = diverse_subset(baselines.collect_all(merged), k)
    elif algorithm == "basic" and not scored:
        local = baselines.basic_unscored(merged, k)
    else:
        raise ValueError(
            f"algorithm {algorithm!r} (scored={scored}) is coordinator-"
            f"driven; it has no per-shard gather step"
        )
    return local, merged.next_calls, merged.scored_next_calls


def worker_main(
    conn, mode: str, shard_ids: List[int], data_dir: Optional[str]
) -> None:
    """Blocking task loop over ``conn`` until EOF or the ``None`` sentinel.

    Requests: ``(request_id, shard_id, query, k, algorithm, scored,
    expected_epoch)``.  Replies: ``(request_id, shard_id, status, value,
    elapsed_ms)`` with status ``"ok"`` / ``"stale"`` / ``"error"``.
    """
    shards: Dict[int, object] = {}
    if mode == "fork":
        inherited = _FORK_SHARDS or {}
        shards = {shard_id: inherited[shard_id] for shard_id in shard_ids}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            request_id, shard_id, query, k, algorithm, scored, expected = message
            try:
                shard = shards.get(shard_id)
                if shard is None:
                    if mode != "spawn" or data_dir is None:
                        raise RuntimeError(
                            f"worker owns no replica of shard {shard_id}"
                        )
                    from .bootstrap import load_shard_replica

                    shard = load_shard_replica(data_dir, shard_id)
                    shards[shard_id] = shard
                seen = shard.epoch
                if expected is not None and seen != expected:
                    # Fenced: this replica predates (or postdates) the
                    # epoch the coordinator is answering at.  Refuse — a
                    # stale candidate list must never reach the merge.
                    reply = (request_id, shard_id, "stale", (seen, expected), 0.0)
                else:
                    started = time.perf_counter()
                    value = compute_candidates(shard, query, k, algorithm, scored)
                    elapsed_ms = (time.perf_counter() - started) * 1000.0
                    reply = (request_id, shard_id, "ok", value, elapsed_ms)
            except Exception as error:  # total loop: report, never die
                reply = (
                    request_id,
                    shard_id,
                    "error",
                    f"{type(error).__name__}: {error}",
                    0.0,
                )
            try:
                conn.send(reply)
            except (OSError, ValueError):
                break  # coordinator went away mid-reply
    finally:
        try:
            conn.close()
        except OSError:
            pass
