"""Logical query rewriting (normalisation).

A small, classical rewrite pass applied before compilation:

* flatten nested ANDs/ORs (the constructors already do this; rewriting keeps
  it true for programmatically assembled trees),
* merge duplicate sibling *leaves* by summing their weights
  (``a[2] OR a[3]`` with the same predicate becomes ``a[5]``) — every
  tuple's score is preserved exactly, since scores sum over satisfied
  leaves,
* drop match-all leaves from conjunctions (``TRUE AND p`` -> ``p``): every
  conjunction match satisfied the TRUE leaf, so scores shift *uniformly* by
  its weight, which preserves score order, ties, and therefore the scored
  diversity semantics,
* singleton collapse (an AND/OR of one child is that child).

Disjunctions containing match-all are left alone: they are boolean
tautologies but their members score differently, so collapsing would lose
information.

The property tests check boolean equivalence (and score equivalence up to
the documented uniform shift) against full-scan evaluation.
"""

from __future__ import annotations

from typing import Dict, List

from .predicates import Predicate
from .query import AND, LEAF, OR, Query


def normalise(query: Query) -> Query:
    """Apply all semantics-preserving rewrites bottom-up."""
    if query.kind == LEAF:
        return query
    children = [normalise(child) for child in query.children]
    flattened: List[Query] = []
    for child in children:
        if child.kind == query.kind:
            flattened.extend(child.children)
        else:
            flattened.append(child)
    if query.kind == AND:
        real = [child for child in flattened if not is_match_all_leaf(child)]
        if real:
            flattened = real
        else:
            return Query.match_all()
    merged: List[Query] = []
    leaf_slots: Dict[Predicate, int] = {}
    for child in flattened:
        if child.kind == LEAF and not is_match_all_leaf(child):
            key = child.predicate
            slot = leaf_slots.get(key)
            if slot is not None:
                existing = merged[slot]
                merged[slot] = Query(
                    LEAF,
                    existing.predicate,
                    weight=existing.weight + child.weight,
                )
                continue
            leaf_slots[key] = len(merged)
        merged.append(child)
    if len(merged) == 1:
        return merged[0]
    if query.kind == AND:
        return Query.conjunction(*merged)
    return Query.disjunction(*merged)


def is_match_all_leaf(query: Query) -> bool:
    """True for the TRUE (match-everything) leaf."""
    from .query import _MatchAllPredicate

    return query.kind == LEAF and isinstance(query.predicate, _MatchAllPredicate)


def to_query_string(query: Query) -> str:
    """Render a query in the text syntax accepted by
    :func:`repro.query.parser.parse_query` (round-trippable).

    Unlike :meth:`Query.describe` (which is for humans), this emits parser
    weights (``[2]``) and quotes every literal.
    """
    if query.kind == LEAF:
        return _leaf_to_string(query)
    joiner = " AND " if query.kind == AND else " OR "
    parts = []
    for child in query.children:
        text = to_query_string(child)
        if child.kind != LEAF:
            text = f"({text})"
        parts.append(text)
    return joiner.join(parts)


def _leaf_to_string(query: Query) -> str:
    from .predicates import KeywordPredicate, ScalarPredicate

    predicate = query.predicate
    weight = "" if query.weight == 1.0 else f" [{query.weight:g}]"
    if isinstance(predicate, ScalarPredicate):
        return f"{predicate.attribute} = {_literal(predicate.value)}{weight}"
    if isinstance(predicate, KeywordPredicate):
        return (
            f"{predicate.attribute} CONTAINS "
            f"{_literal(predicate.keywords)}{weight}"
        )
    return "*"


def _literal(value) -> str:
    if isinstance(value, bool):
        return f"'{value}'"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"
