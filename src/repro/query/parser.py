"""A small text syntax for queries.

Grammar (case-insensitive keywords)::

    query       := disjunction
    disjunction := conjunction ( OR conjunction )*
    conjunction := factor ( AND factor )*
    factor      := '(' query ')' | predicate
    predicate   := ident '=' literal [ weight ]
                 | ident CONTAINS literal [ weight ]
    weight      := '[' number ']'
    literal     := 'single quoted' | "double quoted" | bareword | number

Examples::

    Make = 'Honda' AND Description CONTAINS 'Low miles'
    (Make = 'Honda' [2] OR Make = 'Toyota') AND Year = 2007

This mirrors the form-interface queries of the paper's introduction and is
used by the examples and the workload dump format.
"""

from __future__ import annotations

import re
from typing import Any

from .query import Query

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<lbracket>\[) |
        (?P<rbracket>\]) |
        (?P<eq>=) |
        (?P<squote>'(?:[^'\\]|\\.)*') |
        (?P<dquote>"(?:[^"\\]|\\.)*") |
        (?P<number>-?\d+(?:\.\d+)?) |
        (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    )
    """,
    re.VERBOSE,
)


class QueryParseError(ValueError):
    """Raised on malformed query text."""


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.tokens: list[tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None or match.end() == position:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise QueryParseError(f"cannot tokenise at: {remainder[:30]!r}")
            position = match.end()
            for name, value in match.groupdict().items():
                if value is not None:
                    self.tokens.append((name, value))
                    break
        self.index = 0

    def peek(self) -> tuple[str, str] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def pop(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryParseError(f"unexpected end of query: {self.text!r}")
        self.index += 1
        return token

    def pop_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == "word" and token[1].lower() == keyword:
            self.index += 1
            return True
        return False

    def expect(self, kind: str) -> str:
        name, value = self.pop()
        if name != kind:
            raise QueryParseError(f"expected {kind}, got {value!r} in {self.text!r}")
        return value


def parse_query(text: str) -> Query:
    """Parse ``text`` into a :class:`Query`."""
    stripped = text.strip()
    if not stripped or stripped == "*":
        return Query.match_all()
    stream = _Tokens(text)
    query = _parse_disjunction(stream)
    if stream.peek() is not None:
        raise QueryParseError(
            f"trailing tokens after query: {stream.peek()[1]!r} in {text!r}"
        )
    return query


def _parse_disjunction(stream: _Tokens) -> Query:
    children = [_parse_conjunction(stream)]
    while stream.pop_keyword("or"):
        children.append(_parse_conjunction(stream))
    if len(children) == 1:
        return children[0]
    return Query.disjunction(*children)


def _parse_conjunction(stream: _Tokens) -> Query:
    children = [_parse_factor(stream)]
    while stream.pop_keyword("and"):
        children.append(_parse_factor(stream))
    if len(children) == 1:
        return children[0]
    return Query.conjunction(*children)


def _parse_factor(stream: _Tokens) -> Query:
    token = stream.peek()
    if token is None:
        raise QueryParseError(f"unexpected end of query: {stream.text!r}")
    if token[0] == "lparen":
        stream.pop()
        inner = _parse_disjunction(stream)
        name, value = stream.pop()
        if name != "rparen":
            raise QueryParseError(f"expected ')', got {value!r}")
        return inner
    return _parse_predicate(stream)


def _parse_predicate(stream: _Tokens) -> Query:
    attribute = stream.expect("word")
    token = stream.peek()
    if token is None:
        raise QueryParseError(f"dangling attribute {attribute!r}")
    if token[0] == "eq":
        stream.pop()
        value = _parse_literal(stream)
        weight = _parse_weight(stream)
        return _build_leaf(Query.scalar, attribute, value, weight)
    if token[0] == "word" and token[1].lower() == "contains":
        stream.pop()
        value = _parse_literal(stream)
        weight = _parse_weight(stream)
        return _build_leaf(Query.keyword, attribute, str(value), weight)
    raise QueryParseError(
        f"expected '=' or CONTAINS after {attribute!r}, got {token[1]!r}"
    )


def _build_leaf(factory, attribute: str, value: Any, weight: float) -> Query:
    """Construct a leaf, reporting semantic rejections (token-free keyword
    text, negative weights) as parse errors of the input text."""
    try:
        return factory(attribute, value, weight=weight)
    except ValueError as error:
        raise QueryParseError(str(error)) from None


def _parse_literal(stream: _Tokens) -> Any:
    name, value = stream.pop()
    if name in ("squote", "dquote"):
        body = value[1:-1]
        return re.sub(r"\\(.)", r"\1", body)
    if name == "number":
        return float(value) if "." in value else int(value)
    if name == "word":
        return value
    raise QueryParseError(f"expected a literal, got {value!r}")


def _parse_weight(stream: _Tokens) -> float:
    token = stream.peek()
    if token is None or token[0] != "lbracket":
        return 1.0
    stream.pop()
    number = stream.expect("number")
    closing = stream.pop()
    if closing[0] != "rbracket":
        raise QueryParseError(f"expected ']', got {closing[1]!r}")
    return float(number)
