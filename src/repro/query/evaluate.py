"""Reference (full-scan) query evaluation.

``res(relation, query)`` is the paper's ``RES(R, Q)``: the exact match set,
computed by scanning every row.  The index-based engines must agree with it;
the test oracles and the selectivity estimator are built on it.
"""

from __future__ import annotations

from typing import Iterable

from ..storage.relation import Relation
from .query import Query


def res(relation: Relation, query: Query) -> list[int]:
    """All matching rids, in rid order (full scan; the correctness oracle)."""
    names = relation.schema.names
    matching = []
    for rid, row in relation.iter_live():
        mapping = dict(zip(names, row))
        if query.matches(mapping):
            matching.append(rid)
    return matching


def scored_res(relation: Relation, query: Query) -> list[tuple[int, float]]:
    """All ``(rid, score)`` matches, in rid order."""
    names = relation.schema.names
    matching = []
    for rid, row in relation.iter_live():
        mapping = dict(zip(names, row))
        if query.matches(mapping):
            matching.append((rid, query.score(mapping)))
    return matching


def selectivity(relation: Relation, query: Query) -> float:
    """|RES(R,Q)| / |R| — the quantity Figure 7 varies."""
    if relation.live_count == 0:
        return 0.0
    return len(res(relation, query)) / relation.live_count


def count_matches(relation: Relation, queries: Iterable[Query]) -> list[int]:
    """Match counts for a workload of queries (used by workload calibration)."""
    return [len(res(relation, query)) for query in queries]
