"""Query trees: conjunctions and disjunctions of predicates.

A :class:`Query` is a boolean tree whose leaves are
:class:`~repro.query.predicates.Predicate` objects.  The paper's queries are
flat ANDs or ORs; we allow arbitrary nesting (the evaluator, the cursor
compiler and the scorer all recurse), which strictly generalises the paper.

Scoring (Section II-A): each *leaf* may carry a weight; the score of a tuple
is the sum of the weights of the leaf predicates it satisfies — a monotone
combination, as required by threshold-style algorithms.  Conjunctive queries
therefore give every result the same score (scored diversity degenerates to
unscored, as the paper notes).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional, Sequence

from .predicates import KeywordPredicate, Predicate, ScalarPredicate

AND = "and"
OR = "or"
LEAF = "leaf"

#: Weight used for leaves whose weight was not specified.
DEFAULT_WEIGHT = 1.0


class Query:
    """An immutable boolean query tree."""

    __slots__ = ("kind", "predicate", "weight", "children")

    def __init__(
        self,
        kind: str,
        predicate: Optional[Predicate] = None,
        weight: float = DEFAULT_WEIGHT,
        children: Sequence["Query"] = (),
    ):
        if kind == LEAF:
            if predicate is None:
                raise ValueError("leaf query needs a predicate")
            if children:
                raise ValueError("leaf query cannot have children")
            if weight < 0:
                raise ValueError("leaf weight must be non-negative")
        elif kind in (AND, OR):
            if predicate is not None:
                raise ValueError(f"{kind} query cannot carry a predicate")
            if not children:
                raise ValueError(f"{kind} query needs at least one child")
        else:
            raise ValueError(f"unknown query node kind {kind!r}")
        self.kind = kind
        self.predicate = predicate
        self.weight = float(weight)
        self.children = tuple(children)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def scalar(cls, attribute: str, value: Any, weight: float = DEFAULT_WEIGHT) -> "Query":
        """``attribute = value`` leaf."""
        return cls(LEAF, ScalarPredicate(attribute, value), weight=weight)

    @classmethod
    def keyword(cls, attribute: str, keywords: str, weight: float = DEFAULT_WEIGHT) -> "Query":
        """``attribute CONTAINS keywords`` leaf."""
        return cls(LEAF, KeywordPredicate(attribute, keywords), weight=weight)

    @classmethod
    def conjunction(cls, *children: "Query") -> "Query":
        """AND of child queries (flattening nested ANDs)."""
        return cls(AND, children=_flatten(AND, children))

    @classmethod
    def disjunction(cls, *children: "Query") -> "Query":
        """OR of child queries (flattening nested ORs)."""
        return cls(OR, children=_flatten(OR, children))

    @classmethod
    def match_all(cls) -> "Query":
        """The predicate-free query (Fig. 4's default: no predicates)."""
        return cls(AND, children=(cls(LEAF, _MatchAllPredicate("*")),))

    def __and__(self, other: "Query") -> "Query":
        return Query.conjunction(self, other)

    def __or__(self, other: "Query") -> "Query":
        return Query.disjunction(self, other)

    # ------------------------------------------------------------------
    # Reference semantics
    # ------------------------------------------------------------------
    def matches(self, row: Mapping[str, Any]) -> bool:
        """Boolean match against a row mapping (reference implementation)."""
        if self.kind == LEAF:
            return self.predicate.matches(row)
        if self.kind == AND:
            return all(child.matches(row) for child in self.children)
        return any(child.matches(row) for child in self.children)

    def score(self, row: Mapping[str, Any]) -> float:
        """Sum of the weights of satisfied leaves (0.0 for a non-match...
        callers should check :meth:`matches` first for OR-query semantics)."""
        if self.kind == LEAF:
            return self.weight if self.predicate.matches(row) else 0.0
        return sum(child.score(row) for child in self.children)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def leaves(self) -> Iterator["Query"]:
        """All leaf nodes, left to right."""
        if self.kind == LEAF:
            yield self
        else:
            for child in self.children:
                yield from child.leaves()

    def predicates(self) -> list[Predicate]:
        return [leaf.predicate for leaf in self.leaves()]

    def attributes(self) -> set[str]:
        """All attributes referenced anywhere in the tree."""
        return {leaf.predicate.attribute for leaf in self.leaves()}

    def is_match_all(self) -> bool:
        return any(
            isinstance(leaf.predicate, _MatchAllPredicate) for leaf in self.leaves()
        )

    def max_score(self) -> float:
        """Largest achievable score (every leaf satisfied)."""
        return sum(leaf.weight for leaf in self.leaves())

    def __repr__(self) -> str:
        return f"Query({self.describe()})"

    def describe(self) -> str:
        if self.kind == LEAF:
            text = self.predicate.describe()
            if self.weight != DEFAULT_WEIGHT:
                text += f" [w={self.weight:g}]"
            return text
        joiner = " AND " if self.kind == AND else " OR "
        return "(" + joiner.join(child.describe() for child in self.children) + ")"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.predicate == other.predicate
            and self.weight == other.weight
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.predicate, self.weight, self.children))


class _MatchAllPredicate(Predicate):
    """Internal predicate matching every row (the empty query)."""

    def matches(self, row: Mapping[str, Any]) -> bool:
        return True

    def describe(self) -> str:
        return "TRUE"


def _flatten(kind: str, children: Sequence[Query]) -> tuple[Query, ...]:
    flat: list[Query] = []
    for child in children:
        if child.kind == kind:
            flat.extend(child.children)
        else:
            flat.append(child)
    return tuple(flat)
