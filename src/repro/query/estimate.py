"""Selectivity estimation from index statistics.

The inverted index knows exact posting-list lengths, which give exact
selectivities for leaf predicates and the usual independence-assumption
estimates for AND/OR trees.  The estimator drives the physical optimisation
in :mod:`repro.index.merged`: leapfrog intersection converges fastest when
the *rarest* list leads, so AND children are ordered by ascending estimated
cardinality before compilation.
"""

from __future__ import annotations

from ..index.inverted import InvertedIndex
from .predicates import KeywordPredicate, ScalarPredicate
from .query import AND, LEAF, OR, Query


def leaf_cardinality(query: Query, index: InvertedIndex) -> int:
    """Exact match count of a leaf predicate (posting-list lengths)."""
    predicate = query.predicate
    if isinstance(predicate, ScalarPredicate):
        return len(index.scalar_postings(predicate.attribute, predicate.value))
    if isinstance(predicate, KeywordPredicate):
        # Conjunction of tokens: bounded by the rarest token's list.
        lengths = [
            len(index.token_postings(predicate.attribute, token))
            for token in predicate.terms
        ]
        return min(lengths) if lengths else 0
    return len(index)  # match-all


def estimate_cardinality(query: Query, index: InvertedIndex) -> float:
    """Estimated match count under attribute independence.

    Exact for leaves; AND multiplies selectivities, OR uses inclusion-
    exclusion on the independence assumption.  Clamped to [0, |R|].
    """
    total = len(index)
    if total == 0:
        return 0.0
    return total * estimate_selectivity(query, index)


def estimate_selectivity(query: Query, index: InvertedIndex) -> float:
    total = len(index)
    if total == 0:
        return 0.0
    if query.kind == LEAF:
        return min(1.0, leaf_cardinality(query, index) / total)
    if query.kind == AND:
        selectivity = 1.0
        for child in query.children:
            selectivity *= estimate_selectivity(child, index)
        return selectivity
    if query.kind == OR:
        miss = 1.0
        for child in query.children:
            miss *= 1.0 - estimate_selectivity(child, index)
        return 1.0 - miss
    raise ValueError(f"unknown query node kind {query.kind!r}")


def order_for_leapfrog(query: Query, index: InvertedIndex) -> Query:
    """Physical rewrite: order AND children rarest-first, recursively.

    Boolean/scoring semantics are untouched (AND is commutative and scores
    sum over leaves); only the intersection driver changes, which lets the
    leapfrog skip through the big lists guided by the small ones.
    """
    if query.kind == LEAF:
        return query
    children = [order_for_leapfrog(child, index) for child in query.children]
    if query.kind == AND:
        children.sort(key=lambda child: estimate_cardinality(child, index))
        return Query.conjunction(*children)
    return Query.disjunction(*children)
