"""Selection predicates (Section II-A).

The paper's queries combine two predicate kinds:

* **scalar**:  ``att = value``          (:class:`ScalarPredicate`)
* **keyword**: ``att CONTAINS keywords`` (:class:`KeywordPredicate`)

Each predicate knows how to test a row directly (the reference semantics used
by the naive evaluator and the test oracles); the index layer compiles the
same predicates to posting-list cursors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..index.tokenize import contains_all, tokens


@dataclass(frozen=True)
class Predicate:
    """Base class; a predicate targets one attribute."""

    attribute: str

    def matches(self, row: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ScalarPredicate(Predicate):
    """``attribute = value`` with exact equality after string/num coercion."""

    value: Any = None

    def matches(self, row: Mapping[str, Any]) -> bool:
        return row[self.attribute] == self.value

    def describe(self) -> str:
        return f"{self.attribute} = {self.value!r}"


@dataclass(frozen=True)
class KeywordPredicate(Predicate):
    """``attribute CONTAINS keywords``: every keyword token occurs in the
    attribute's text."""

    keywords: str = ""
    _tokens: tuple[str, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self):
        parsed = tuple(dict.fromkeys(tokens(self.keywords)))
        if not parsed:
            raise ValueError(
                f"keyword predicate on {self.attribute!r} has no tokens "
                f"({self.keywords!r})"
            )
        object.__setattr__(self, "_tokens", parsed)

    @property
    def terms(self) -> tuple[str, ...]:
        """Distinct normalised tokens, in query order."""
        return self._tokens

    def matches(self, row: Mapping[str, Any]) -> bool:
        return contains_all(str(row[self.attribute]), self.keywords)

    def describe(self) -> str:
        return f"{self.attribute} CONTAINS {self.keywords!r}"
