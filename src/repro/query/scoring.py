"""Scoring models: assigning leaf weights from corpus statistics.

The paper's data model says scores arise naturally "in the presence of
keyword search queries, e.g., using scoring techniques such as TF-IDF"
(Section II-A).  This module turns a plain query into a weighted one:

* :func:`idf_weights` — each keyword leaf is weighted by its (smoothed)
  inverse document frequency in the indexed relation: rare terms dominate,
  exactly as in classical ranked retrieval.  Scalar leaves keep their
  weights (form fields are hard preferences, not ranking signals) unless
  ``include_scalars`` is set, in which case rare values also score higher.
* :func:`scale_weights` — multiply every leaf weight (tuning knob for the
  score/diversity balance: the paper notes "we can also achieve greater
  diversity by choosing a coarse scoring function").
* :func:`coarsen_weights` — round weights to a fixed number of buckets, the
  coarse-scoring trick made concrete: fewer distinct scores mean bigger tie
  tiers, hence more room for diversity.
"""

from __future__ import annotations

import math

from ..index.inverted import InvertedIndex
from .predicates import KeywordPredicate, ScalarPredicate
from .query import LEAF, Query


def idf(term_documents: int, total_documents: int) -> float:
    """Smoothed inverse document frequency (BM25-style, always > 0)."""
    if total_documents <= 0:
        return 0.0
    return math.log(
        1.0 + (total_documents - term_documents + 0.5) / (term_documents + 0.5)
    )


def idf_weights(
    query: Query,
    index: InvertedIndex,
    include_scalars: bool = False,
) -> Query:
    """A copy of ``query`` with keyword leaves weighted by IDF.

    Multi-token keyword predicates use the *sum* of their tokens' IDFs
    (matching a tuple means matching every token).
    """
    total = len(index)

    def rewrite(node: Query) -> Query:
        if node.kind != LEAF:
            children = tuple(rewrite(child) for child in node.children)
            return Query(node.kind, children=children)
        predicate = node.predicate
        if isinstance(predicate, KeywordPredicate):
            weight = sum(
                idf(len(index.token_postings(predicate.attribute, token)), total)
                for token in predicate.terms
            )
            return Query(LEAF, predicate, weight=weight)
        if include_scalars and isinstance(predicate, ScalarPredicate):
            matches = len(
                index.scalar_postings(predicate.attribute, predicate.value)
            )
            return Query(LEAF, predicate, weight=idf(matches, total))
        return node

    return rewrite(query)


def scale_weights(query: Query, factor: float) -> Query:
    """Multiply every leaf weight by ``factor`` (must be non-negative)."""
    if factor < 0:
        raise ValueError("factor must be non-negative")
    if query.kind == LEAF:
        return Query(LEAF, query.predicate, weight=query.weight * factor)
    return Query(
        query.kind,
        children=tuple(scale_weights(child, factor) for child in query.children),
    )


def coarsen_weights(query: Query, buckets: int, maximum: float | None = None) -> Query:
    """Quantise leaf weights into ``buckets`` equal-width levels.

    Coarser scores -> larger tied tiers -> more diversity (Section II-B's
    "we can also achieve greater diversity by choosing a coarse scoring
    function").  ``maximum`` defaults to the query's largest leaf weight.
    """
    if buckets < 1:
        raise ValueError("need at least one bucket")
    leaves = list(query.leaves())
    top = maximum if maximum is not None else max(
        (leaf.weight for leaf in leaves), default=0.0
    )
    if top <= 0:
        return query

    def quantise(weight: float) -> float:
        level = min(buckets, max(1, math.ceil(buckets * weight / top)))
        return level * top / buckets

    def rewrite(node: Query) -> Query:
        if node.kind == LEAF:
            return Query(LEAF, node.predicate, weight=quantise(node.weight))
        return Query(
            node.kind, children=tuple(rewrite(child) for child in node.children)
        )

    return rewrite(query)
