"""repro — a reproduction of "Efficient Computation of Diverse Query Results"
(Vee, Srivastava, Shanmugasundaram, Bhat, Amer-Yahia; ICDE 2008).

Diverse top-k query answering over structured listings: given a relation, a
domain-expert *diversity ordering* of its attributes and a (possibly scored)
selection query, return k answers that are maximally diverse — e.g. five
different Honda models rather than five identical Civics.

Public entry points::

    from repro import (
        Schema, Relation, DiversityOrdering, DiversityEngine, Query,
        parse_query,
    )

    engine = DiversityEngine.from_relation(cars, ["Make", "Model", "Color"])
    result = engine.search("Make = 'Honda'", k=5)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of the paper's figures.
"""

from .core.dewey import DeweyId, LEFT, MIDDLE, RIGHT
from .core.diversify import diverse_subset, scored_diverse_subset, waterfill
from .core.engine import ALGORITHMS, AUTO, DiversityEngine
from .core.incremental import DiverseView
from .core.mmr import mmr_select, retrieve_ck_diverse
from .core.pagination import DiversePaginator
from .core.onepass import one_pass_scored, one_pass_unscored
from .core.ordering import DiversityOrdering
from .core.probing import probe_scored, probe_unscored
from .core.relaxation import RelaxedResult, relax_query, relaxed_search
from .core.result import DiverseResult, ResultItem
from .core.similarity import balance_violations, is_diverse, is_scored_diverse
from .core.symmetric import SymmetricObjective, greedy_symmetric_select, symmetric_search
from .core.trace import TracingMergedList
from .core.weighted import WeightedDiversifier, weighted_waterfill
from .index.bptree import BPlusTree
from .index.inverted import InvertedIndex
from .index.merged import MergedList
from .index.snapshot import load_index, save_index
from .index.wand import wand_topk
from .query.estimate import estimate_cardinality, estimate_selectivity, order_for_leapfrog
from .query.parser import parse_query
from .query.predicates import KeywordPredicate, ScalarPredicate
from .query.query import Query
from .query.rewrite import normalise, to_query_string
from .planner import (
    CostConstants,
    PlanDecision,
    PlanFeatures,
    RegretReport,
    choose as choose_algorithm,
    estimate_costs,
    measure_regret,
    render_explain,
)
from .query.scoring import coarsen_weights, idf_weights, scale_weights
from .resilience import (
    ChaosPolicy,
    CircuitBreaker,
    DeadlineExceededError,
    ResilienceError,
    ResiliencePolicy,
    ShardFaultSpec,
    ShardUnavailableError,
    TransientShardError,
)
from .durability import (
    CrashInjector,
    DurabilityError,
    DurableIndex,
    RecoveryError,
    SimulatedCrash,
    WALCorruptionError,
    WriteAheadLog,
    create_sharded_store,
    create_store,
    recover,
)
from .serving import BatchReport, CacheStats, ServingCache, ServingEngine
from .sharding import (
    HashRouter,
    RangeRouter,
    ShardedEngine,
    ShardedIndex,
    diverse_merge,
    scored_diverse_merge,
)
from .storage.catalog import Catalog
from .storage.relation import Relation
from .storage.schema import Attribute, AttributeKind, Schema

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AUTO",
    "Attribute",
    "AttributeKind",
    "BPlusTree",
    "BatchReport",
    "CacheStats",
    "Catalog",
    "ChaosPolicy",
    "CircuitBreaker",
    "CostConstants",
    "CrashInjector",
    "DeadlineExceededError",
    "DeweyId",
    "DurabilityError",
    "DurableIndex",
    "RecoveryError",
    "SimulatedCrash",
    "WALCorruptionError",
    "WriteAheadLog",
    "DiverseResult",
    "DiversityEngine",
    "DiversityOrdering",
    "InvertedIndex",
    "KeywordPredicate",
    "LEFT",
    "MIDDLE",
    "MergedList",
    "PlanDecision",
    "PlanFeatures",
    "Query",
    "RegretReport",
    "Relation",
    "ResultItem",
    "RIGHT",
    "ScalarPredicate",
    "Schema",
    "ResilienceError",
    "ResiliencePolicy",
    "ServingCache",
    "ServingEngine",
    "HashRouter",
    "RangeRouter",
    "ShardFaultSpec",
    "ShardUnavailableError",
    "ShardedEngine",
    "ShardedIndex",
    "TransientShardError",
    "DiversePaginator",
    "DiverseView",
    "RelaxedResult",
    "SymmetricObjective",
    "TracingMergedList",
    "WeightedDiversifier",
    "balance_violations",
    "choose_algorithm",
    "coarsen_weights",
    "create_sharded_store",
    "create_store",
    "diverse_merge",
    "diverse_subset",
    "estimate_cardinality",
    "estimate_costs",
    "estimate_selectivity",
    "greedy_symmetric_select",
    "load_index",
    "measure_regret",
    "mmr_select",
    "normalise",
    "idf_weights",
    "is_diverse",
    "is_scored_diverse",
    "one_pass_scored",
    "order_for_leapfrog",
    "one_pass_unscored",
    "parse_query",
    "probe_scored",
    "recover",
    "relax_query",
    "relaxed_search",
    "render_explain",
    "retrieve_ck_diverse",
    "save_index",
    "scale_weights",
    "symmetric_search",
    "to_query_string",
    "probe_unscored",
    "scored_diverse_merge",
    "scored_diverse_subset",
    "wand_topk",
    "waterfill",
    "weighted_waterfill",
]
