"""Inverted-List Based IR Systems, as formalised in Section II-C.

The impossibility result (Theorem 1) quantifies over a precise class of
engines: each attribute value / keyword owns an inverted list; every item in
a list carries a value-dependent score ``SCORE_A(i)``; a query picks lists
``A_1..A_l`` and per-query weights ``w_{A_1}..w_{A_l}``; the engine returns
the k items maximising the *monotone* aggregate
``f(w_{A_1} SCORE_{A_1}(i), ..., w_{A_l} SCORE_{A_l}(i))``.

This module implements exactly that machine, so the impossibility theorem
can be demonstrated executable-ly (see :mod:`repro.ir.impossibility`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..index.tokenize import token_set
from ..storage.relation import Relation
from ..storage.schema import AttributeKind

#: A list key: ("scalar", attribute, value) or ("token", attribute, token).
ListKey = Tuple[str, str, object]

#: ``SCORE_A(i)``: maps (list key, rid) -> float.
ScoreAssignment = Mapping[Tuple[ListKey, int], float]


def scalar_key(attribute: str, value: object) -> ListKey:
    return ("scalar", attribute, value)


def token_key(attribute: str, token: str) -> ListKey:
    return ("token", attribute, token.lower())


def sum_aggregator(scores: Sequence[float]) -> float:
    """The canonical monotone aggregation (weighted sum once weights are
    folded in)."""
    return sum(scores)


def max_aggregator(scores: Sequence[float]) -> float:
    return max(scores) if scores else 0.0


def min_aggregator(scores: Sequence[float]) -> float:
    return min(scores) if scores else 0.0


class InvertedListIRSystem:
    """A faithful instance of the paper's IR-system class.

    ``scores`` assigns each (list, item) pair its static, value-dependent
    score; items missing from a queried list contribute score 0 (they are
    not in that list).  ``aggregator`` must be monotone in each argument.
    """

    def __init__(
        self,
        relation: Relation,
        scores: ScoreAssignment,
        aggregator: Callable[[Sequence[float]], float] = sum_aggregator,
    ):
        self.relation = relation
        self.aggregator = aggregator
        self._lists: Dict[ListKey, List[int]] = {}
        self._scores = dict(scores)
        names = relation.schema.names
        text_attributes = [
            attribute.name
            for attribute in relation.schema
            if attribute.kind is AttributeKind.TEXT
        ]
        for rid, row in relation.iter_live():
            for name, value in zip(names, row):
                self._lists.setdefault(scalar_key(name, value), []).append(rid)
            for name in text_attributes:
                text = relation.value(rid, name)
                for token in token_set(text):
                    self._lists.setdefault(token_key(name, token), []).append(rid)

    def postings(self, key: ListKey) -> List[int]:
        """Items of one inverted list, ordered by their list score (desc)."""
        rids = self._lists.get(key, [])
        return sorted(
            rids, key=lambda rid: (-self._scores.get((key, rid), 0.0), rid)
        )

    def list_keys(self) -> List[ListKey]:
        return list(self._lists)

    def top_k(
        self,
        query: Sequence[Tuple[ListKey, float]],
        k: int,
        allowed: Optional[set] = None,
    ) -> List[int]:
        """The engine's answer: k items maximising the aggregated score.

        ``query`` is a list of (list key, per-query weight) pairs.  Exactly
        the Section II-C machine: items appearing in at least one queried
        list are candidates; each candidate aggregates its weighted per-list
        scores (0 for lists it is absent from); ties broken by rid so the
        engine is deterministic (any deterministic tie-break suffices for
        the theorem).

        ``allowed`` optionally restricts candidates (used to grant the
        engine perfect boolean filtering for conjunctive queries, which only
        strengthens the impossibility demonstration).
        """
        candidates: Dict[int, List[float]] = {}
        for position, (key, weight) in enumerate(query):
            for rid in self._lists.get(key, []):
                if allowed is not None and rid not in allowed:
                    continue
                entry = candidates.setdefault(rid, [0.0] * len(query))
                entry[position] = weight * self._scores.get((key, rid), 0.0)
        ranked = sorted(
            candidates.items(),
            key=lambda pair: (-self.aggregator(pair[1]), pair[0]),
        )
        return [rid for rid, _ in ranked[:k]]
