"""Executable demonstration of Theorem 1.

Theorem 1: on the Figure 1(a) database, *no* Inverted-List Based IR System
(per-list value-dependent scores + per-query weights + monotone aggregation)
returns an unscored diverse result set for every query.

The proof pits three queries against each other:

* ``Q1``: Year = 2007, k = 8 — diversity forces all four Toyotas plus
  exactly one Honda Civic into the answer;
* ``Q2``: Description CONTAINS 'miles', k = 8 — same forcing;
* ``Q3``: Year = 2007 AND Description CONTAINS 'miles', k = 6 — by
  monotonicity at most two tuples (the Civics surfacing in Q1/Q2) can beat
  the Toyotas, so the top-6 contains >= 4 Toyotas and <= 2 Hondas, which is
  not diverse (a diverse 6-answer of Q3 needs 3 of each make... in fact it
  needs >= 3 Hondas).

:func:`find_violation` evaluates any concrete score assignment against the
three queries and reports the first one whose top-k is not diverse;
:func:`demonstrate` sweeps many assignments (random and adversarially
hand-tuned) and reports that every single one violates diversity somewhere,
plus a direct check of the proof's counting argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.similarity import is_diverse
from ..data.paper_example import figure1_ordering, figure1_relation
from ..index.dewey_index import DeweyIndex
from ..query.evaluate import res
from ..query.parser import parse_query
from ..query.query import Query
from .irsystem import (
    InvertedListIRSystem,
    ListKey,
    ScoreAssignment,
    scalar_key,
    sum_aggregator,
    token_key,
)

#: The three queries of the proof, with their k and the IR lists they touch.
THEOREM_QUERIES: List[Tuple[str, int, Tuple[ListKey, ...]]] = [
    ("Year = 2007", 8, (scalar_key("Year", 2007),)),
    ("Description CONTAINS 'miles'", 8, (token_key("Description", "miles"),)),
    (
        "Year = 2007 AND Description CONTAINS 'miles'",
        6,
        (scalar_key("Year", 2007), token_key("Description", "miles")),
    ),
]


@dataclass(frozen=True)
class Violation:
    """One diversity failure of an IR system."""

    query_text: str
    k: int
    returned_rids: Tuple[int, ...]
    reason: str


def find_violation(
    scores: ScoreAssignment,
    weights: Optional[Sequence[Sequence[float]]] = None,
    aggregator: Callable[[Sequence[float]], float] = sum_aggregator,
) -> Optional[Violation]:
    """Check one IR configuration against the theorem's three queries.

    ``weights[i]`` are the per-query weights for query i (defaults to all
    ones).  Returns the first query whose engine answer is not a diverse
    result set, or ``None`` if the configuration survives (Theorem 1 says it
    never will — asserted over large sweeps in the tests).
    """
    relation = figure1_relation()
    system = InvertedListIRSystem(relation, scores, aggregator)
    dewey = DeweyIndex.build(relation, figure1_ordering())
    for index, (text, k, keys) in enumerate(THEOREM_QUERIES):
        query = parse_query(text)
        query_weights = (
            weights[index] if weights is not None else [1.0] * len(keys)
        )
        if len(query_weights) != len(keys):
            raise ValueError("weights must align with the query's lists")
        # Grant the engine perfect boolean filtering (only matching tuples
        # are ranked) — strictly more generous than the paper's machine, so
        # a violation here is an even stronger demonstration.
        matches = set(res(relation, query))
        answer = system.top_k(list(zip(keys, query_weights)), k, allowed=matches)
        answer_deweys = [dewey.dewey_of(rid) for rid in answer]
        all_deweys = [dewey.dewey_of(rid) for rid in sorted(matches)]
        if not is_diverse(answer_deweys, all_deweys, k):
            return Violation(text, k, tuple(answer), "top-k is not diverse")
    return None


def random_assignment(rng: random.Random) -> Dict[Tuple[ListKey, int], float]:
    """A random score assignment over every list of the Figure 1 database."""
    relation = figure1_relation()
    system = InvertedListIRSystem(relation, {})
    scores: Dict[Tuple[ListKey, int], float] = {}
    for key in system.list_keys():
        for rid in system.postings(key):
            scores[(key, rid)] = rng.random()
    return scores


def adversarial_assignments() -> List[Dict[Tuple[ListKey, int], float]]:
    """Hand-tuned assignments that try hardest to satisfy Q1 and Q2.

    Each places the four Toyotas and one chosen Civic at the top of both the
    ``Year=2007`` and ``'miles'`` lists — the best any assignment can do per
    the proof — so the conjunctive query Q3 is the one that must break.
    """
    relation = figure1_relation()
    year_list = scalar_key("Year", 2007)
    miles_list = token_key("Description", "miles")
    toyotas = [11, 12, 13, 14]
    assignments = []
    for civic_year in range(4):          # which Civic tops the Year list
        for civic_miles in range(4):     # which Civic tops the miles list
            scores: Dict[Tuple[ListKey, int], float] = {}
            for rid in range(len(relation)):
                scores[(year_list, rid)] = 1.0
                scores[(miles_list, rid)] = 1.0
            for rid in toyotas:
                scores[(year_list, rid)] = 10.0
                scores[(miles_list, rid)] = 10.0
            scores[(year_list, civic_year)] = 9.0
            scores[(miles_list, civic_miles)] = 9.0
            # Push the Accord/Odyssey/CRV 2007 rows just below, the other
            # civics to the bottom (they would break Q1/Q2 diversity).
            for rid in (5, 7, 9):
                scores[(year_list, rid)] = 8.0
            for rid in range(4):
                if rid != civic_year:
                    scores[(year_list, rid)] = 0.1
                if rid != civic_miles:
                    scores[(miles_list, rid)] = 0.1
            assignments.append(scores)
    return assignments


def demonstrate(random_trials: int = 200, seed: int = 13) -> Dict[str, object]:
    """Sweep assignments; every one must violate diversity somewhere.

    Returns a report dict with violation counts per query, consumed by the
    ``impossibility_demo`` example and the tests.
    """
    rng = random.Random(seed)
    per_query: Dict[str, int] = {text: 0 for text, _, _ in THEOREM_QUERIES}
    survivors = 0
    total = 0
    for scores in adversarial_assignments():
        total += 1
        violation = find_violation(scores)
        if violation is None:
            survivors += 1
        else:
            per_query[violation.query_text] += 1
    for _ in range(random_trials):
        total += 1
        violation = find_violation(random_assignment(rng))
        if violation is None:
            survivors += 1
        else:
            per_query[violation.query_text] += 1
    return {
        "assignments_checked": total,
        "survivors": survivors,
        "violations_per_query": per_query,
    }
