"""Per-query probe accounting: the paper's access bounds as live metrics.

:mod:`repro.core.trace` can record every probe of one run for inspection;
this module is its always-on generalisation: cheap counters the engine
updates once per query, exported through the metrics registry so the
paper's efficiency claims are *continuously checked* under real traffic:

* **Probe bound (Theorem 2)** — the unscored probing driver makes at most
  ``2k`` ``next()`` calls beyond the initial positioning probe (the repo's
  own property tests pin ``next_calls <= 2k + 1``).  Every probe query
  exports its driver probe count; a query exceeding the bound increments
  ``repro_probe_bound_violations_total`` — a metric that must stay 0.
* **One-pass single-scan property (Section III)** — OnePass's ``next``
  bounds are monotonically non-decreasing, i.e. every posting list is
  scanned at most once.  :class:`~repro.index.merged.MergedList` counts
  backward restarts; ``scan_passes = 1 + restarts`` is exported and must
  stay 1.  Skip jumps (the Section III skip argument) are counted too,
  so a regression that silently stops skipping shows up as a collapsing
  ``repro_onepass_skips_total``.

:func:`annotate_query_stats` runs inside ``run_algorithm`` (pure dict
work, no registry); :func:`record_query_metrics` publishes one query's
stats to a registry — the split keeps the core engine loop free of any
metrics dependency beyond a single call.
"""

from __future__ import annotations

from typing import Dict, Optional

from .metrics import MetricsRegistry, get_registry

#: Histogram buckets for per-query probe counts (calls, not latency).
PROBE_COUNT_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 4096.0, float("inf"),
)


def probe_bound(k: int) -> int:
    """Theorem 2's ceiling on the unscored probing driver's ``next`` calls,
    plus the one initial positioning probe the implementation spends."""
    return 2 * k + 1


def annotate_query_stats(
    stats: Dict[str, int],
    merged,
    algorithm: str,
    scored: bool,
    k: int,
) -> Dict[str, int]:
    """Fold one run's merged-list counters into its stats dict.

    Called by ``run_algorithm`` after the algorithm finished with
    ``merged`` (a :class:`~repro.index.merged.MergedList` or compatible).
    Adds the generic access counters plus the per-algorithm bound checks;
    everything here is plain integer work.
    """
    stats["rows_touched"] = merged.rows_touched
    if algorithm == "probe":
        probes = merged.next_calls + merged.scored_next_calls
        stats["probe_calls"] = probes
        if not scored:
            # Theorem 2 covers the unscored driver; the scored one pays an
            # extra WAND top-k pass whose cost Section IV-B bounds separately.
            stats["probe_bound"] = probe_bound(k)
            stats["probe_bound_exceeded"] = int(probes > probe_bound(k))
    elif algorithm == "onepass":
        stats["skips"] = merged.skip_jumps
        stats["scan_passes"] = 1 + merged.scan_restarts
    return stats


def _query_instruments(registry: MetricsRegistry, algorithm: str, mode: str):
    """The per-(algorithm, mode) instrument bundle, memoised per registry.

    ``record_query_metrics`` runs once per query; resolving eight labelled
    instruments through the factory methods each time (label-key build +
    dict lookup apiece) is the dominant cost of the whole seam.  The
    bundle is resolved once and parked in the registry's ``hot_cache``,
    which ``reset()`` clears together with the instruments themselves.
    """
    key = ("query", algorithm, mode)
    bundle = registry.hot_cache.get(key)
    if bundle is not None:
        return bundle
    scored = mode == "scored"
    bundle = {
        "queries": registry.counter(
            "repro_queries_total",
            help="Queries executed, by algorithm and scoring mode",
            algorithm=algorithm, mode=mode),
        "next_calls": registry.counter(
            "repro_index_next_calls_total",
            help="merged-list next() probes spent, by algorithm",
            algorithm=algorithm),
        "scored_next_calls": registry.counter(
            "repro_index_scored_next_calls_total",
            help="merged-list scored next() probes spent, by algorithm",
            algorithm=algorithm),
        "rows_touched": registry.counter(
            "repro_rows_touched_total",
            help="matches materialised from next() probes, by algorithm",
            algorithm=algorithm),
    }
    if algorithm == "probe":
        bundle["probe_calls"] = registry.histogram(
            "repro_probe_calls",
            help="per-query probe count of the probing algorithm",
            buckets=PROBE_COUNT_BUCKETS, mode=mode)
        if not scored:
            bundle["probe_max"] = registry.gauge(
                "repro_probe_max_calls",
                help="largest unscored-probe probe count seen (bound: 2k+1)")
            bundle["probe_max_bound"] = registry.gauge(
                "repro_probe_max_bound",
                help="2k+1 bound matching repro_probe_max_calls traffic")
    elif algorithm == "onepass":
        bundle["skips"] = registry.counter(
            "repro_onepass_skips_total",
            help="one-pass skip jumps taken (Section III skip argument)",
            mode=mode)
        bundle["onepass_queries"] = registry.counter(
            "repro_onepass_queries_total",
            help="one-pass queries executed", mode=mode)
    registry.hot_cache[key] = bundle
    return bundle


def record_query_metrics(
    registry: Optional[MetricsRegistry],
    algorithm: str,
    scored: bool,
    k: int,
    stats: Dict[str, int],
) -> None:
    """Publish one executed query's stats dict to ``registry``.

    The single per-query seam between the engine and the metrics layer:
    one counter bump per stat of interest, nothing per probe.
    """
    if registry is None:
        registry = get_registry()
    if not registry.enabled:
        return
    mode = "scored" if scored else "unscored"
    bundle = _query_instruments(registry, algorithm, mode)
    bundle["queries"].inc()
    bundle["next_calls"].inc(stats.get("next_calls", 0))
    bundle["scored_next_calls"].inc(stats.get("scored_next_calls", 0))
    bundle["rows_touched"].inc(stats.get("rows_touched", 0))
    if algorithm == "probe" and "probe_calls" in stats:
        bundle["probe_calls"].observe(stats["probe_calls"])
        if not scored:
            bundle["probe_max"].set_max(stats["probe_calls"])
            bundle["probe_max_bound"].set_max(stats.get("probe_bound", 0))
            if stats.get("probe_bound_exceeded"):
                # Violations are the exception path: resolved on demand so
                # a clean run exports no misleading zero-valued series.
                registry.counter(
                    "repro_probe_bound_violations_total",
                    help="unscored probe queries exceeding the Theorem 2 "
                         "bound of 2k (+1 positioning probe); must stay 0",
                ).inc()
    elif algorithm == "onepass":
        bundle["skips"].inc(stats.get("skips", 0))
        bundle["onepass_queries"].inc()
        if stats.get("scan_passes", 1) > 1:
            registry.counter(
                "repro_onepass_scan_violations_total",
                help="one-pass queries whose scan restarted (single-scan "
                     "property broken); must stay 0",
                mode=mode,
            ).inc()
