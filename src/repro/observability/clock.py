"""One injectable clock for the whole stack.

Before this module, the serving layer timed batches with
``time.perf_counter()`` while resilience deadlines and circuit-breaker
cooldowns counted ``time.monotonic()`` — two timelines that can disagree,
and neither fakeable without monkeypatching.  Everything now defaults to
:data:`MONOTONIC` (``time.monotonic``: deadlines and latencies are wall
intervals, and a single timeline keeps "time spent" and "time left"
commensurable) and accepts a ``clock`` argument, so chaos tests drive a
:class:`FakeClock` end to end — through ``Deadline``, ``CircuitBreaker``
cooldowns, backoff sleeps and batch timings — without sleeping for real.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

Clock = Callable[[], float]

#: The stack-wide default timeline.
MONOTONIC: Clock = time.monotonic


class FakeClock:
    """A manually advanced clock (seconds) whose ``sleep`` costs no time.

    Pass ``fake`` as the ``clock=`` of engines/deadlines/breakers and
    ``fake.sleep`` wherever a sleeper is injectable: backoff waits then
    advance the fake timeline instead of blocking the test.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time only moves forward")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_ms(self, milliseconds: float) -> float:
        return self.advance(milliseconds / 1000.0)

    def sleep(self, seconds: float) -> None:
        """Drop-in for ``time.sleep`` that advances the fake timeline."""
        if seconds > 0:
            self.advance(seconds)
