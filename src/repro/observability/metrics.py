"""Process-wide metrics: counters, gauges, fixed-bucket latency histograms.

The paper's efficiency claims are *access-count* claims — Probe makes at
most ``2k`` bidirectional ``next()`` calls (Theorem 2), OnePass scans each
posting list exactly once with provable skips.  The serving stack built on
top (caches, shards, retries, WAL) adds its own per-call stats dicts, but
none of that is visible as a whole under real traffic.  This module is the
one place every layer reports into:

* :class:`Counter` — monotone, exact under threads (per-instrument lock;
  a bare ``+=`` on an attribute can lose increments between bytecodes).
* :class:`Gauge` — a set-to-current-value instrument (queue depths,
  breaker states, cache sizes).
* :class:`Histogram` — fixed upper-bound buckets with a running sum and
  count; p50/p95/p99 are estimated by linear interpolation inside the
  landing bucket, so no samples are retained and no numpy is needed.
* :class:`MetricsRegistry` — named, labelled instruments plus registered
  *collectors* (callbacks that refresh gauges from live objects — health
  boards, cache stats — right before export).

Exports: :meth:`MetricsRegistry.snapshot` (a JSON-able dict, schema
``repro-metrics`` v1) and :meth:`MetricsRegistry.render_prometheus`
(the Prometheus text exposition format).

A process-wide default registry (:func:`get_registry`) keeps the
instrumentation seams zero-config; tests swap it with
:func:`set_registry` or :func:`use_registry`.  Disabling a registry
(``enabled=False``) turns every instrument call into a cheap no-op — the
observability benchmark measures the enabled-vs-disabled delta.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

SNAPSHOT_FORMAT = "repro-metrics"
SNAPSHOT_VERSION = 1

#: Default histogram bucket upper bounds, in milliseconds: tuned for
#: sub-millisecond index probes up to multi-second batch workloads.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, math.inf,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelSet:
    """Canonical, hashable form of a label dict (values stringified)."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + body + "}"


class Counter:
    """A monotone counter; ``inc`` is exact under concurrent callers."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (or be set outright)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is below (running maximum)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    Buckets are cumulative-style upper bounds (the last must be ``inf``).
    ``quantile(p)`` walks the buckets to the one containing the p-th
    sample and interpolates linearly inside it — an estimate whose error
    is bounded by the bucket width, which is the standard trade for not
    keeping samples.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count",
                 "_min", "_max", "_lock")

    def __init__(self, name: str, labels: LabelSet,
                 buckets: Sequence[float] = DEFAULT_BUCKETS_MS):
        buckets = tuple(float(b) for b in buckets)
        if not buckets or sorted(buckets) != list(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        if buckets[-1] != math.inf:
            buckets = buckets + (math.inf,)
        self.name = name
        self.labels = labels
        self.buckets = buckets
        self._counts = [0] * len(buckets)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            # Linear scan beats bisect for the short (≤17) bucket lists here.
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    break
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, p: float) -> float:
        """Interpolated p-quantile (``p`` in [0, 1]); NaN when empty."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("quantile p must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return math.nan
            target = p * self._count
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if seen + bucket_count >= target:
                    upper = self.buckets[index]
                    lower = self.buckets[index - 1] if index > 0 else 0.0
                    if math.isinf(upper):
                        # Everything in the overflow bucket: best estimate
                        # is the largest value actually observed.
                        return self._max
                    fraction = (target - seen) / bucket_count
                    return lower + (upper - lower) * min(1.0, max(0.0, fraction))
                seen += bucket_count
            return self._max

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self._min,
            "max": self._max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _NullInstrument:
    """Absorbs every instrument call when a registry is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None: ...
    def dec(self, amount: float = 1.0) -> None: ...
    def set(self, value: float) -> None: ...
    def set_max(self, value: float) -> None: ...
    def observe(self, value: float) -> None: ...

    @property
    def value(self) -> float:
        return 0.0


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named, labelled instruments plus snapshot/Prometheus export.

    Instruments are created on first use and cached by ``(name, labels)``
    — repeated ``registry.counter("x", shard=0)`` calls return the same
    :class:`Counter`, so hot paths can (and should) hold the instrument
    once instead of re-resolving it per event.
    """

    def __init__(self, enabled: bool = True, span_capacity: int = 256):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}
        self._help: Dict[str, str] = {}
        self._collectors: List[Callable[[], None]] = []
        self.spans = deque(maxlen=span_capacity)
        #: Free-form memo for hot callers that want to skip even the
        #: label-key build of the factory methods (the per-query metric
        #: seams keep resolved instrument bundles here, keyed however they
        #: like).  Cleared by :meth:`reset` alongside the instruments, so
        #: a memo can never outlive what it points at.  Plain-dict races
        #: are benign: the worst case is a duplicate resolution.
        self.hot_cache: Dict = {}

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels):
        if not self.enabled:
            return _NULL
        key = (name, _label_key(labels))
        # Lock-free fast path: dict reads are atomic, and an instrument,
        # once created, is never replaced.
        instrument = self._counters.get(key)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter(name, key[1])
                self._counters[key] = instrument
                if help:
                    self._help.setdefault(name, help)
        return instrument

    def gauge(self, name: str, help: str = "", **labels):
        if not self.enabled:
            return _NULL
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge(name, key[1])
                self._gauges[key] = instrument
                if help:
                    self._help.setdefault(name, help)
        return instrument

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS_MS, **labels):
        if not self.enabled:
            return _NULL
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = Histogram(name, key[1], buckets)
                self._histograms[key] = instrument
                if help:
                    self._help.setdefault(name, help)
        return instrument

    # ------------------------------------------------------------------
    # Collectors (refresh gauges from live objects at export time)
    # ------------------------------------------------------------------
    def register_collector(self, collect: Callable[[], None]) -> Callable[[], None]:
        with self._lock:
            self._collectors.append(collect)
        return collect

    def unregister_collector(self, collect: Callable[[], None]) -> None:
        with self._lock:
            try:
                self._collectors.remove(collect)
            except ValueError:
                pass

    def run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect()

    def record_span(self, record) -> None:
        if self.enabled:
            self.spans.append(record)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self, spans: bool = True) -> Dict:
        """Everything the registry knows, as one JSON-able document."""
        self.run_collectors()
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        document: Dict = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "enabled": self.enabled,
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in counters
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in gauges
            ],
            "histograms": [
                {"name": h.name, "labels": dict(h.labels), **h.summary()}
                for h in histograms
            ],
        }
        if spans:
            document["spans"] = [record.as_dict() for record in list(self.spans)]
        return document

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (0.0.4)."""
        self.run_collectors()
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
            helps = dict(self._help)
        lines: List[str] = []
        seen_header = set()

        def header(name: str, kind: str) -> None:
            if name in seen_header:
                return
            seen_header.add(name)
            if name in helps:
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} {kind}")

        for (name, _), counter in counters:
            header(name, "counter")
            lines.append(
                f"{name}{_render_labels(counter.labels)} {counter.value:g}"
            )
        for (name, _), gauge in gauges:
            header(name, "gauge")
            lines.append(f"{name}{_render_labels(gauge.labels)} {gauge.value:g}")
        for (name, _), histogram in histograms:
            header(name, "histogram")
            base = dict(histogram.labels)
            cumulative = 0
            with histogram._lock:
                counts = list(histogram._counts)
                total = histogram._count
                total_sum = histogram._sum
            for bound, count in zip(histogram.buckets, counts):
                cumulative += count
                le = "+Inf" if math.isinf(bound) else f"{bound:g}"
                labels = _render_labels(_label_key({**base, "le": le}))
                lines.append(f"{name}_bucket{labels} {cumulative}")
            suffix = _render_labels(histogram.labels)
            lines.append(f"{name}_sum{suffix} {total_sum:g}")
            lines.append(f"{name}_count{suffix} {total}")
        return "\n".join(lines) + "\n"

    def find(self, name: str, **labels):
        """Look an instrument up without creating it (None when absent)."""
        key = (name, _label_key(labels))
        with self._lock:
            return (
                self._counters.get(key)
                or self._gauges.get(key)
                or self._histograms.get(key)
            )

    def value(self, name: str, **labels) -> float:
        """Convenience: the current value of a counter/gauge (0.0 if absent)."""
        instrument = self.find(name, **labels)
        return instrument.value if instrument is not None else 0.0

    def reset(self) -> None:
        """Drop every instrument, collector and span (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._collectors.clear()
            self._help.clear()
            self.hot_cache.clear()
        self.spans.clear()


#: The process-wide default registry every instrumentation seam reports to
#: unless given an explicit one.
_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous, _default_registry = _default_registry, registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None):
    """Temporarily install ``registry`` (a fresh one by default) as the
    process default; yields it.  The previous registry is restored on
    exit — the idiom tests and benchmarks use for isolation."""
    if registry is None:
        registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
