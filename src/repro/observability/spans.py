"""Lightweight structured spans: named, timed, nested sections of work.

A span brackets one unit of serving work — ``serve.execute``,
``shard.scatter``, ``wal.append`` — records its wall duration into the
registry's ``repro_span_duration_ms`` histogram (labelled by span name),
and keeps a bounded ring of recent finished spans for ``snapshot()``.
Nesting is tracked with a :mod:`contextvars` stack, so a span started
inside another (same thread/context) records its parent name — enough to
reconstruct the serving pipeline's shape without a tracing backend.

Usage::

    with span("serve.execute", algorithm="probe", k=10):
        ...work...

Overhead is a clock read, a dict, and one histogram observe per span —
and near zero when the active registry is disabled.  Spans deliberately
time whole pipeline stages, never per-probe index calls; probe-level
visibility comes from the always-on counters in
:mod:`repro.observability.probes`.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass, field
from typing import Dict, Optional

from .clock import MONOTONIC, Clock
from .metrics import MetricsRegistry, get_registry

SPAN_DURATION_METRIC = "repro_span_duration_ms"

_active_span: contextvars.ContextVar[Optional["span"]] = contextvars.ContextVar(
    "repro_active_span", default=None
)


@dataclass
class SpanRecord:
    """One finished span, as kept in the registry's ring buffer."""

    name: str
    duration_ms: float
    parent: Optional[str] = None
    status: str = "ok"              # "ok" | "error"
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
            "status": self.status,
        }
        if self.parent:
            document["parent"] = self.parent
        if self.fields:
            document["fields"] = dict(self.fields)
        return document


class span:
    """Context manager timing one named section of work.

    ``fields`` are free-form structured attributes (query text, k,
    algorithm, shard id, ...) carried on the finished record.  An
    exception inside the span marks it ``status="error"`` (and adds the
    error type) but is never swallowed.
    """

    __slots__ = ("name", "fields", "registry", "_clock", "_started",
                 "_token", "parent", "record")

    def __init__(
        self,
        name: str,
        registry: Optional[MetricsRegistry] = None,
        clock: Clock = MONOTONIC,
        **fields,
    ):
        self.name = name
        self.fields = fields
        self.registry = registry
        self._clock = clock
        self._started = 0.0
        self._token = None
        self.parent: Optional[str] = None
        self.record: Optional[SpanRecord] = None

    def __enter__(self) -> "span":
        if self.registry is None:
            self.registry = get_registry()
        if not self.registry.enabled:
            return self
        enclosing = _active_span.get()
        self.parent = enclosing.name if enclosing is not None else None
        self._token = _active_span.set(self)
        self._started = self._clock()
        return self

    def __exit__(self, exc_type, exc, exc_tb) -> bool:
        registry = self.registry
        if registry is None or not registry.enabled:
            return False
        duration_ms = (self._clock() - self._started) * 1000.0
        if self._token is not None:
            _active_span.reset(self._token)
        # The fields dict is shared with the record on the happy path (no
        # caller mutates it after exit); only the error path copies.
        fields = self.fields
        status = "ok"
        if exc_type is not None:
            status = "error"
            fields = {**fields, "error": exc_type.__name__}
        self.record = SpanRecord(
            name=self.name,
            duration_ms=duration_ms,
            parent=self.parent,
            status=status,
            fields=fields,
        )
        registry.record_span(self.record)
        # Per-name duration histogram, memoised in the registry's hot
        # cache (spans close once per pipeline stage, but the engine's
        # execute span is per-query — worth skipping the re-resolution).
        hist = registry.hot_cache.get(("span", self.name))
        if hist is None:
            hist = registry.histogram(
                SPAN_DURATION_METRIC,
                help="Wall duration of instrumented pipeline spans",
                span=self.name,
            )
            registry.hot_cache[("span", self.name)] = hist
        hist.observe(duration_ms)
        if status == "error":
            registry.counter(
                "repro_span_errors_total",
                help="Spans that exited with an exception",
                span=self.name,
            ).inc()
        return False

    def annotate(self, **fields) -> None:
        """Attach extra fields to the eventual record (inside the span)."""
        self.fields.update(fields)


def current_span() -> Optional[span]:
    """The innermost active span of this context, or ``None``."""
    return _active_span.get()
