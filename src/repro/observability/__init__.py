"""Observability: metrics, spans, and probe accounting for the whole stack.

The paper's efficiency results are access-count theorems; this package
makes them (and everything the serving stack added around them — caches,
shards, retries, WAL) continuously visible:

* :mod:`~repro.observability.metrics` — a process-wide
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket latency
  histograms (p50/p95/p99 without numpy), exported as a JSON snapshot or
  Prometheus text.
* :mod:`~repro.observability.spans` — ``with span("serve.execute", ...)``
  structured timing, threaded through serving, sharding, resilience and
  durability.
* :mod:`~repro.observability.probes` — always-on per-query probe
  accounting asserting Theorem 2's ``2k`` probe bound and the one-pass
  single-scan property at runtime.
* :mod:`~repro.observability.clock` — the one injectable monotonic clock
  (and :class:`FakeClock`) the whole stack times against.
"""

from .clock import MONOTONIC, Clock, FakeClock
from .metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .postings import register_postings_collector
from .probes import annotate_query_stats, probe_bound, record_query_metrics
from .spans import SpanRecord, current_span, span

__all__ = [
    "MONOTONIC",
    "Clock",
    "FakeClock",
    "DEFAULT_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "annotate_query_stats",
    "register_postings_collector",
    "probe_bound",
    "record_query_metrics",
    "SpanRecord",
    "current_span",
    "span",
]
