"""Posting-list memory accounting as lazily refreshed gauges.

The compressed backend exists to shrink resident posting storage; these
gauges make the claim continuously checkable in production instead of
only in benchmark tables.  ``repro_postings_bytes`` /
``repro_postings_count`` / ``repro_postings_lists`` are refreshed at
export time (snapshot or Prometheus scrape) by walking the index's
posting lists — a collector callback, not a hot-path counter, so query
serving never pays for the accounting.
"""

from __future__ import annotations

import weakref


def register_postings_collector(registry, index):
    """Publish ``index``'s posting-list memory stats at export time.

    ``index`` is anything with a ``memory_stats()`` returning the
    ``{backend, lists, postings, bytes, bytes_per_posting}`` dict
    (:class:`~repro.index.inverted.InvertedIndex` and
    :class:`~repro.sharding.sharded_index.ShardedIndex` both qualify).
    The collector holds the index through a weakref and unregisters
    itself once the index is garbage-collected, mirroring the serving
    cache collector.  Returns ``(registry, collect)`` so callers can pin
    the callback, or ``None`` when metrics are disabled.
    """
    if registry is None or not registry.enabled:
        return None
    ref = weakref.ref(index)

    def collect() -> None:
        target = ref()
        if target is None:
            registry.unregister_collector(collect)
            return
        stats = target.memory_stats()
        backend = stats["backend"]
        gauge = registry.gauge
        gauge(
            "repro_postings_bytes",
            "Resident bytes across all posting lists",
            backend=backend,
        ).set(stats["bytes"])
        gauge(
            "repro_postings_count",
            "Stored postings across all posting lists (with multiplicity)",
            backend=backend,
        ).set(stats["postings"])
        gauge(
            "repro_postings_lists",
            "Number of posting lists in the index",
            backend=backend,
        ).set(stats["lists"])

    registry.register_collector(collect)
    return (registry, collect)
