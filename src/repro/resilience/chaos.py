"""Deterministic fault injection for shard reads.

:class:`ChaosPolicy` decides, per shard replica and per read, whether to
inject latency, a transient error, or a hard crash — from a seeded RNG, so
every chaos run is exactly reproducible (the chaos differential suite
relies on this: same seed, same faults, same retries, same answers).

:class:`FaultyShard` wraps one per-shard :class:`~repro.index.inverted
.InvertedIndex` behind the same read protocol and consults the policy on
every *read* entry point (posting-list lookups and vocabulary scans — the
operations that would be RPCs in a real deployment).  Mutations and
control-plane reads (``epoch``, ``len``) pass through untouched: chaos
models a flaky data path, not a corrupted one, and the serving caches must
keep observing true epochs while shards misbehave.

Fault plans address either a whole logical shard (an ``int`` key: every
replica of that shard suffers) or one specific copy (a ``(shard,
replica)`` key, which takes precedence) — that is how the replication
suite kills a minority of replicas and asserts answers stay exact.

Injected latency sleeps through an *injectable* sleep (the PR 5
``observability.clock`` idiom): unset, it wall-sleeps; the sharded engine
binds its own ``sleep`` on injection, so chaos latency on a
:class:`~repro.observability.FakeClock` advances the fake timeline —
consuming deadline budget exactly like retry backoff — without ever
blocking the test process.

Wiring: ``ShardedIndex.inject_chaos(policy)`` wraps every shard in place,
``clear_chaos()`` unwraps; the CLI exposes the same via ``--chaos-*``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple, Union

from .errors import ShardCrashedError, TransientShardError

#: A fault-plan key: a logical shard (all replicas) or one specific copy.
ChaosAddress = Union[int, Tuple[int, int]]


@dataclass(frozen=True)
class ShardFaultSpec:
    """What one shard's reads suffer: latency, flakes, or a hard crash."""

    latency_ms: float = 0.0       # added to every read
    transient_rate: float = 0.0   # probability a read raises TransientShardError
    crashed: bool = False         # every read raises ShardCrashedError

    def __post_init__(self):
        if self.latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")
        if not 0.0 <= self.transient_rate <= 1.0:
            raise ValueError("transient_rate must be in [0, 1]")


def _normalise_address(address: ChaosAddress) -> ChaosAddress:
    if isinstance(address, tuple):
        shard, replica = address
        return (int(shard), int(replica))
    return int(address)


class ChaosPolicy:
    """Seeded per-replica fault plan, consulted on every shard read.

    ``default`` applies to every address not named in ``per_shard``, whose
    keys are shard ids (``int`` — the fault hits every replica of that
    shard) or ``(shard, replica)`` pairs (one copy only; the more specific
    key wins).  The policy is mutable at runtime — :meth:`crash`/
    :meth:`revive` flip a shard or a single replica mid-workload, which is
    how the tests kill copies under a warm cache — and keeps exact
    injection counters.
    """

    def __init__(
        self,
        seed: int = 0,
        default: Optional[ShardFaultSpec] = None,
        per_shard: Optional[Dict[ChaosAddress, ShardFaultSpec]] = None,
        sleep=None,
    ):
        self._seed = seed
        self._default = default if default is not None else ShardFaultSpec()
        self._per_shard: Dict[ChaosAddress, ShardFaultSpec] = {
            _normalise_address(address): spec
            for address, spec in (per_shard or {}).items()
        }
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rngs: Dict[Tuple[int, Optional[int]], random.Random] = {}
        self.injected: Dict[str, int] = {"latency": 0, "transient": 0, "crash": 0}

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def transient(cls, rate: float, seed: int = 0) -> "ChaosPolicy":
        """Every shard flakes independently at ``rate`` per read."""
        return cls(seed=seed, default=ShardFaultSpec(transient_rate=rate))

    @classmethod
    def crash_shards(cls, *addresses: ChaosAddress, seed: int = 0) -> "ChaosPolicy":
        """Hard-kill the named shards (ints) or single replicas (``(shard,
        replica)`` pairs); everything else is healthy."""
        return cls(
            seed=seed,
            per_shard={
                address: ShardFaultSpec(crashed=True) for address in addresses
            },
        )

    @classmethod
    def slow_shards(cls, latency_ms: float, *addresses: ChaosAddress,
                    seed: int = 0) -> "ChaosPolicy":
        """Add fixed latency to the named addresses (everywhere when none
        given)."""
        spec = ShardFaultSpec(latency_ms=latency_ms)
        if not addresses:
            return cls(seed=seed, default=spec)
        return cls(seed=seed, per_shard={address: spec for address in addresses})

    # ------------------------------------------------------------------
    # Runtime control
    # ------------------------------------------------------------------
    def bind_sleep(self, sleep) -> None:
        """Adopt an injectable sleep unless one was set at construction.

        The engine calls this on injection so chaos latency runs on the
        same (possibly fake) timeline as its deadlines and backoff.
        """
        if self._sleep is None:
            self._sleep = sleep

    def spec_for(self, shard_id: int,
                 replica_id: Optional[int] = None) -> ShardFaultSpec:
        """The effective fault spec for one copy: ``(shard, replica)`` key
        first, then the whole-shard key, then the default."""
        with self._lock:
            if replica_id is not None:
                spec = self._per_shard.get((shard_id, replica_id))
                if spec is not None:
                    return spec
            return self._per_shard.get(shard_id, self._default)

    def set_spec(self, address: ChaosAddress, spec: ShardFaultSpec) -> None:
        with self._lock:
            self._per_shard[_normalise_address(address)] = spec

    def _address(self, shard_id: int,
                 replica_id: Optional[int]) -> ChaosAddress:
        if replica_id is None:
            return int(shard_id)
        return (int(shard_id), int(replica_id))

    def crash(self, shard_id: int, replica_id: Optional[int] = None) -> None:
        """Hard-kill one shard — or just one replica of it — from now on
        (other configured faults at that address are kept)."""
        address = self._address(shard_id, replica_id)
        with self._lock:
            spec = self._per_shard.get(address)
            if spec is None and replica_id is not None:
                spec = self._per_shard.get(int(shard_id))
            if spec is None:
                spec = self._default
            self._per_shard[address] = replace(spec, crashed=True)

    def revive(self, shard_id: int, replica_id: Optional[int] = None) -> None:
        """Bring a killed shard (or single replica) back."""
        address = self._address(shard_id, replica_id)
        with self._lock:
            spec = self._per_shard.get(address)
            if spec is None and replica_id is not None:
                spec = self._per_shard.get(int(shard_id))
            if spec is None:
                spec = self._default
            self._per_shard[address] = replace(spec, crashed=False)

    # ------------------------------------------------------------------
    # Injection (called by FaultyShard on every read)
    # ------------------------------------------------------------------
    def _rng(self, shard_id: int,
             replica_id: Optional[int] = None) -> random.Random:
        key = (shard_id, replica_id)
        rng = self._rngs.get(key)
        if rng is None:
            # Independent deterministic stream per copy: the fault pattern
            # one replica sees never depends on traffic to another.  The
            # replica-less stream keeps the pre-replication seeds, so the
            # original chaos differential runs are bit-for-bit unchanged.
            stream = self._seed * 2654435761 + shard_id
            if replica_id is not None:
                stream = stream * 1000003 + replica_id + 1
            rng = self._rngs[key] = random.Random(stream)
        return rng

    def before_read(self, shard_id: int, operation: str,
                    replica_id: Optional[int] = None) -> None:
        spec = self.spec_for(shard_id, replica_id)
        if spec.crashed:
            with self._lock:
                self.injected["crash"] += 1
            raise ShardCrashedError(shard_id, operation)
        if spec.latency_ms > 0.0:
            with self._lock:
                self.injected["latency"] += 1
                sleep = self._sleep if self._sleep is not None else time.sleep
            sleep(spec.latency_ms / 1000.0)
        if spec.transient_rate > 0.0:
            with self._lock:
                flake = self._rng(shard_id, replica_id).random() < spec.transient_rate
                if flake:
                    self.injected["transient"] += 1
            if flake:
                raise TransientShardError(shard_id, operation)

    def __repr__(self) -> str:
        return (
            f"ChaosPolicy(seed={self._seed}, default={self._default}, "
            f"per_shard={self._per_shard}, injected={self.injected})"
        )


class FaultyShard:
    """An :class:`InvertedIndex` read-protocol proxy that injects faults.

    Only the data-path reads go through :meth:`ChaosPolicy.before_read`;
    mutations (``insert``/``remove``) and control-plane attributes
    (``epoch``, ``len``, ``relation`` …) delegate untouched.  ``replica_id``
    names which copy of the shard this proxy fronts (``None`` outside a
    replicated deployment) so the policy can target single replicas.
    """

    __slots__ = ("_inner", "shard_id", "replica_id", "chaos")

    def __init__(self, inner, shard_id: int, chaos: ChaosPolicy,
                 replica_id: Optional[int] = None):
        self._inner = inner
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.chaos = chaos

    @property
    def inner(self):
        """The wrapped shard index (unwrapping handle)."""
        return self._inner

    # ---- control plane: no injection -------------------------------
    @property
    def relation(self):
        return self._inner.relation

    @property
    def ordering(self):
        return self._inner.ordering

    @property
    def backend(self):
        return self._inner.backend

    @property
    def dewey(self):
        return self._inner.dewey

    @property
    def depth(self):
        return self._inner.depth

    @property
    def epoch(self):
        return self._inner.epoch

    def __len__(self) -> int:
        return len(self._inner)

    def memory_stats(self) -> dict:
        return self._inner.memory_stats()

    def __repr__(self) -> str:
        if self.replica_id is None:
            return f"FaultyShard({self.shard_id}, {self._inner!r})"
        return (
            f"FaultyShard({self.shard_id}/r{self.replica_id}, {self._inner!r})"
        )

    # ---- data-path reads: injected ---------------------------------
    def scalar_postings(self, attribute: str, value: Any):
        self.chaos.before_read(self.shard_id, "scalar_postings", self.replica_id)
        return self._inner.scalar_postings(attribute, value)

    def token_postings(self, attribute: str, token: str):
        self.chaos.before_read(self.shard_id, "token_postings", self.replica_id)
        return self._inner.token_postings(attribute, token)

    def all_postings(self):
        self.chaos.before_read(self.shard_id, "all_postings", self.replica_id)
        return self._inner.all_postings()

    def vocabulary(self, attribute: str) -> list:
        self.chaos.before_read(self.shard_id, "vocabulary", self.replica_id)
        return self._inner.vocabulary(attribute)

    # ---- mutations: no injection (routing must stay reliable) ------
    def insert(self, rid: int):
        return self._inner.insert(rid)

    def remove(self, rid: int):
        return self._inner.remove(rid)
