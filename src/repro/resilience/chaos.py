"""Deterministic fault injection for shard reads.

:class:`ChaosPolicy` decides, per shard and per read, whether to inject
latency, a transient error, or a hard crash — from a seeded RNG, so every
chaos run is exactly reproducible (the chaos differential suite relies on
this: same seed, same faults, same retries, same answers).

:class:`FaultyShard` wraps one per-shard :class:`~repro.index.inverted
.InvertedIndex` behind the same read protocol and consults the policy on
every *read* entry point (posting-list lookups and vocabulary scans — the
operations that would be RPCs in a real deployment).  Mutations and
control-plane reads (``epoch``, ``len``) pass through untouched: chaos
models a flaky data path, not a corrupted one, and the serving caches must
keep observing true epochs while shards misbehave.

Wiring: ``ShardedIndex.inject_chaos(policy)`` wraps every shard in place,
``clear_chaos()`` unwraps; the CLI exposes the same via ``--chaos-*``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from .errors import ShardCrashedError, TransientShardError


@dataclass(frozen=True)
class ShardFaultSpec:
    """What one shard's reads suffer: latency, flakes, or a hard crash."""

    latency_ms: float = 0.0       # added to every read
    transient_rate: float = 0.0   # probability a read raises TransientShardError
    crashed: bool = False         # every read raises ShardCrashedError

    def __post_init__(self):
        if self.latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")
        if not 0.0 <= self.transient_rate <= 1.0:
            raise ValueError("transient_rate must be in [0, 1]")


class ChaosPolicy:
    """Seeded per-shard fault plan, consulted on every shard read.

    ``default`` applies to every shard not named in ``per_shard``.  The
    policy is mutable at runtime — :meth:`crash`/:meth:`revive` flip a
    shard mid-workload, which is how the tests kill a shard under a warm
    cache — and keeps exact injection counters per shard.
    """

    def __init__(
        self,
        seed: int = 0,
        default: Optional[ShardFaultSpec] = None,
        per_shard: Optional[Dict[int, ShardFaultSpec]] = None,
        sleep=time.sleep,
    ):
        self._seed = seed
        self._default = default if default is not None else ShardFaultSpec()
        self._per_shard: Dict[int, ShardFaultSpec] = dict(per_shard or {})
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rngs: Dict[int, random.Random] = {}
        self.injected: Dict[str, int] = {"latency": 0, "transient": 0, "crash": 0}

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def transient(cls, rate: float, seed: int = 0) -> "ChaosPolicy":
        """Every shard flakes independently at ``rate`` per read."""
        return cls(seed=seed, default=ShardFaultSpec(transient_rate=rate))

    @classmethod
    def crash_shards(cls, *shard_ids: int, seed: int = 0) -> "ChaosPolicy":
        """Hard-kill the named shards; everything else is healthy."""
        return cls(
            seed=seed,
            per_shard={shard: ShardFaultSpec(crashed=True) for shard in shard_ids},
        )

    @classmethod
    def slow_shards(cls, latency_ms: float, *shard_ids: int,
                    seed: int = 0) -> "ChaosPolicy":
        """Add fixed latency to the named shards (all shards when none given)."""
        spec = ShardFaultSpec(latency_ms=latency_ms)
        if not shard_ids:
            return cls(seed=seed, default=spec)
        return cls(seed=seed, per_shard={shard: spec for shard in shard_ids})

    # ------------------------------------------------------------------
    # Runtime control
    # ------------------------------------------------------------------
    def spec_for(self, shard_id: int) -> ShardFaultSpec:
        with self._lock:
            return self._per_shard.get(shard_id, self._default)

    def set_spec(self, shard_id: int, spec: ShardFaultSpec) -> None:
        with self._lock:
            self._per_shard[shard_id] = spec

    def crash(self, shard_id: int) -> None:
        """Hard-kill one shard from now on (its other faults are kept)."""
        with self._lock:
            spec = self._per_shard.get(shard_id, self._default)
            self._per_shard[shard_id] = replace(spec, crashed=True)

    def revive(self, shard_id: int) -> None:
        """Bring a killed shard back."""
        with self._lock:
            spec = self._per_shard.get(shard_id, self._default)
            self._per_shard[shard_id] = replace(spec, crashed=False)

    # ------------------------------------------------------------------
    # Injection (called by FaultyShard on every read)
    # ------------------------------------------------------------------
    def _rng(self, shard_id: int) -> random.Random:
        rng = self._rngs.get(shard_id)
        if rng is None:
            # Independent deterministic stream per shard: the fault pattern
            # one shard sees never depends on traffic to another.
            rng = self._rngs[shard_id] = random.Random(
                self._seed * 2654435761 + shard_id
            )
        return rng

    def before_read(self, shard_id: int, operation: str) -> None:
        spec = self.spec_for(shard_id)
        if spec.crashed:
            with self._lock:
                self.injected["crash"] += 1
            raise ShardCrashedError(shard_id, operation)
        if spec.latency_ms > 0.0:
            with self._lock:
                self.injected["latency"] += 1
            self._sleep(spec.latency_ms / 1000.0)
        if spec.transient_rate > 0.0:
            with self._lock:
                flake = self._rng(shard_id).random() < spec.transient_rate
                if flake:
                    self.injected["transient"] += 1
            if flake:
                raise TransientShardError(shard_id, operation)

    def __repr__(self) -> str:
        return (
            f"ChaosPolicy(seed={self._seed}, default={self._default}, "
            f"per_shard={self._per_shard}, injected={self.injected})"
        )


class FaultyShard:
    """An :class:`InvertedIndex` read-protocol proxy that injects faults.

    Only the data-path reads go through :meth:`ChaosPolicy.before_read`;
    mutations (``insert``/``remove``) and control-plane attributes
    (``epoch``, ``len``, ``relation`` …) delegate untouched.
    """

    __slots__ = ("_inner", "shard_id", "chaos")

    def __init__(self, inner, shard_id: int, chaos: ChaosPolicy):
        self._inner = inner
        self.shard_id = shard_id
        self.chaos = chaos

    @property
    def inner(self):
        """The wrapped shard index (unwrapping handle)."""
        return self._inner

    # ---- control plane: no injection -------------------------------
    @property
    def relation(self):
        return self._inner.relation

    @property
    def ordering(self):
        return self._inner.ordering

    @property
    def backend(self):
        return self._inner.backend

    @property
    def dewey(self):
        return self._inner.dewey

    @property
    def depth(self):
        return self._inner.depth

    @property
    def epoch(self):
        return self._inner.epoch

    def __len__(self) -> int:
        return len(self._inner)

    def memory_stats(self) -> dict:
        return self._inner.memory_stats()

    def __repr__(self) -> str:
        return f"FaultyShard({self.shard_id}, {self._inner!r})"

    # ---- data-path reads: injected ---------------------------------
    def scalar_postings(self, attribute: str, value: Any):
        self.chaos.before_read(self.shard_id, "scalar_postings")
        return self._inner.scalar_postings(attribute, value)

    def token_postings(self, attribute: str, token: str):
        self.chaos.before_read(self.shard_id, "token_postings")
        return self._inner.token_postings(attribute, token)

    def all_postings(self):
        self.chaos.before_read(self.shard_id, "all_postings")
        return self._inner.all_postings()

    def vocabulary(self, attribute: str) -> list:
        self.chaos.before_read(self.shard_id, "vocabulary")
        return self._inner.vocabulary(attribute)

    # ---- mutations: no injection (routing must stay reliable) ------
    def insert(self, rid: int):
        return self._inner.insert(rid)

    def remove(self, rid: int):
        return self._inner.remove(rid)
