"""Structured error taxonomy for the sharded fan-out path.

Every failure the resilience layer can surface is a :class:`ResilienceError`
subclass carrying machine-readable context (which shard, why, how long),
replacing the bare exceptions a crashing shard read would otherwise leak
through the coordinator:

* :class:`TransientShardError` — one shard read failed in a *retryable* way
  (timeout, dropped connection, throttling).  The policy layer retries
  these with backoff; they only escape when retries are exhausted.
* :class:`ShardCrashedError` — a shard is hard-down; retrying is pointless.
* :class:`ShardUnavailableError` — the *coordinator* could not produce an
  answer because one or more shards were lost (crashed, open-circuit, or
  out of retries) and the execution strategy cannot degrade around them.
  Carries exactly which shards were lost and why.
* :class:`DeadlineExceededError` — the per-query deadline budget ran out
  before an answer (even a degraded one) was available.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class ResilienceError(RuntimeError):
    """Base class for every failure raised by the resilience layer."""


class TransientShardError(ResilienceError):
    """A retryable failure of one shard read (timeout, flake, throttle)."""

    def __init__(self, shard_id: int, operation: str = "read",
                 message: Optional[str] = None):
        self.shard_id = shard_id
        self.operation = operation
        super().__init__(
            message
            or f"transient failure on shard {shard_id} during {operation!r}"
        )


class ShardCrashedError(ResilienceError):
    """A shard is hard-down: every read fails and retries cannot help."""

    def __init__(self, shard_id: int, operation: str = "read",
                 message: Optional[str] = None):
        self.shard_id = shard_id
        self.operation = operation
        super().__init__(
            message or f"shard {shard_id} is down (failed during {operation!r})"
        )


class ShardUnavailableError(ResilienceError):
    """The coordinator lost shards it could not answer without.

    ``failures`` maps each lost shard id to a human-readable reason
    (``"crashed"``, ``"circuit open"``, ``"retries exhausted"``,
    ``"deadline"``); ``shards_total`` is the deployment size, so callers
    can tell a single-shard loss from a total outage.
    """

    def __init__(self, failures: Dict[int, str], shards_total: int,
                 message: Optional[str] = None):
        self.failures = dict(failures)
        self.shards_total = shards_total
        lost = ", ".join(
            f"{shard}: {reason}" for shard, reason in sorted(self.failures.items())
        )
        super().__init__(
            message
            or f"{len(self.failures)}/{shards_total} shard(s) unavailable ({lost})"
        )

    @property
    def shards_lost(self) -> List[int]:
        """The lost shard ids, ascending."""
        return sorted(self.failures)


class ReplicaDivergenceError(ResilienceError):
    """Replicas of one shard disagree after a forwarded mutation.

    Replication (:mod:`repro.replication`) keeps every copy bit-identical
    by forwarding mutations to all replicas and checking epoch/Dewey
    agreement afterwards; any disagreement means a copy silently dropped
    or corrupted a write and must not keep serving reads as if exact.
    """

    def __init__(self, shard_id: int, detail: str,
                 message: Optional[str] = None):
        self.shard_id = shard_id
        self.detail = detail
        super().__init__(
            message or f"replicas of shard {shard_id} diverged: {detail}"
        )


class DeadlineExceededError(ResilienceError):
    """The per-query deadline budget expired before any answer was ready."""

    def __init__(self, deadline_ms: float, elapsed_ms: float,
                 message: Optional[str] = None):
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms
        super().__init__(
            message
            or f"deadline of {deadline_ms:g} ms exceeded ({elapsed_ms:.1f} ms elapsed)"
        )
