"""The query resilience policy: deadlines, retries, backoff, breaker knobs.

A :class:`ResiliencePolicy` is a frozen bundle of budgets the sharded
engine applies to every query: how long a query may take end to end
(``deadline_ms``), how often a transient shard failure is retried
(``max_retries``) and at what exponentially growing, jittered pace
(``backoff_*``, ``jitter``), and when a persistently failing shard trips
its circuit breaker (``breaker_*``).  The policy itself is stateless and
shareable; per-shard state (breakers, health counters) lives in
:mod:`repro.resilience.health`.

:class:`Deadline` is the running countdown for one query — created at
admission, consulted before every shard call and between retries.
"""

from __future__ import annotations

import contextvars
import math
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class ResiliencePolicy:
    """Per-query failure-handling budgets for the sharded fan-out."""

    deadline_ms: Optional[float] = None   # end-to-end budget; None = unbounded
    max_retries: int = 2                  # retries per task on transient faults
    backoff_base_ms: float = 1.0          # first retry delay
    backoff_multiplier: float = 2.0       # growth per retry
    backoff_cap_ms: float = 50.0          # delay ceiling
    jitter: float = 0.5                   # fraction of the delay randomised
    breaker_threshold: float = 0.5        # failure rate that opens the circuit
    breaker_window: int = 8               # outcomes in the sliding window
    breaker_min_calls: int = 4            # calls before the rate is trusted
    breaker_cooldown_ms: float = 1000.0   # open -> half-open delay
    seed: int = 0                         # jitter RNG seed (determinism)

    def __post_init__(self):
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError("breaker_threshold must be in (0, 1]")
        if self.breaker_window < 1 or self.breaker_min_calls < 1:
            raise ValueError("breaker window/min_calls must be positive")
        if self.breaker_cooldown_ms < 0:
            raise ValueError("breaker_cooldown_ms must be non-negative")

    def backoff_ms(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay before retry ``attempt`` (1-based), jittered when ``rng`` given.

        Exponential with a cap: ``base * multiplier**(attempt-1)``, then up
        to ``jitter`` of it replaced by a uniform draw so synchronized
        retries from many queries spread out instead of thundering.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(
            self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1),
            self.backoff_cap_ms,
        )
        if rng is not None and self.jitter > 0.0:
            delay = delay * (1.0 - self.jitter) + delay * self.jitter * rng.random()
        return delay


#: The engine's default when no policy is supplied: no deadline, a couple of
#: fast retries, standard breaker. Chosen so a fault-free deployment behaves
#: exactly like pre-resilience code, just with typed errors.
DEFAULT_POLICY = ResiliencePolicy()


class Deadline:
    """A monotonic countdown for one query's time budget."""

    __slots__ = ("deadline_ms", "_clock", "_started")

    def __init__(self, deadline_ms: Optional[float],
                 clock: Callable[[], float] = time.monotonic):
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")
        self.deadline_ms = deadline_ms
        self._clock = clock
        self._started = clock()

    @classmethod
    def unbounded(cls) -> "Deadline":
        return cls(None)

    def elapsed_ms(self) -> float:
        return (self._clock() - self._started) * 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds left (``inf`` when unbounded, clamped at 0)."""
        if self.deadline_ms is None:
            return math.inf
        return max(0.0, self.deadline_ms - self.elapsed_ms())

    def expired(self) -> bool:
        return self.remaining_ms() <= 0.0

    def __repr__(self) -> str:
        if self.deadline_ms is None:
            return "Deadline(unbounded)"
        return f"Deadline({self.remaining_ms():.1f} of {self.deadline_ms:g} ms left)"


#: The query deadline active on this thread of execution, if any.  The
#: engine scopes every shard call with :func:`deadline_scope`; layers that
#: cannot receive the deadline as an argument — a ReplicaSet sitting behind
#: the index read protocol, deciding whether a hedged backup read still
#: fits the budget — read it from here instead of growing the protocol.
_CURRENT_DEADLINE: contextvars.ContextVar[Optional[Deadline]] = \
    contextvars.ContextVar("repro_deadline", default=None)


def current_deadline() -> Optional[Deadline]:
    """The :class:`Deadline` governing the current shard call (or None)."""
    return _CURRENT_DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]):
    """Make ``deadline`` visible to everything below the index protocol."""
    token = _CURRENT_DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT_DEADLINE.reset(token)
