"""repro.resilience — failure handling for the sharded serving path.

The sharding layer (PR 2) made a partitioned deployment answer-identical
to one big index; this package makes it survive the partitions failing.
Four pieces, layered:

* :mod:`~repro.resilience.errors` — the structured error taxonomy every
  fan-out failure is expressed in (transient vs crashed vs unavailable vs
  deadline), replacing bare exceptions.
* :mod:`~repro.resilience.chaos` — deterministic, seeded fault injection
  (:class:`ChaosPolicy` + :class:`FaultyShard`) so tests, benchmarks, and
  the CLI can make shards slow, flaky, or dead on demand.
* :mod:`~repro.resilience.policy` — per-query budgets
  (:class:`ResiliencePolicy`: deadline, bounded retries with exponential
  backoff + jitter) and the :class:`Deadline` countdown.
* :mod:`~repro.resilience.breaker` / :mod:`~repro.resilience.health` —
  per-shard circuit breakers (closed/open/half-open) and health counters.

Degradation contract (argued in docs/paper_mapping.md): for the
scatter-gather algorithms a lost shard is dropped and the diverse-merge
over the *survivors* is still a valid Definitions 1-2 diverse top-k over
the reachable rows (``DiverseResult.stats["degraded"]`` says so); the
coordinator-driven scan algorithms need every shard and fail fast with
:class:`ShardUnavailableError`.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import ChaosPolicy, FaultyShard, ShardFaultSpec
from .errors import (
    DeadlineExceededError,
    ReplicaDivergenceError,
    ResilienceError,
    ShardCrashedError,
    ShardUnavailableError,
    TransientShardError,
)
from .health import HealthBoard, ShardHealth
from .policy import (
    DEFAULT_POLICY,
    Deadline,
    ResiliencePolicy,
    current_deadline,
    deadline_scope,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "ChaosPolicy",
    "CircuitBreaker",
    "DEFAULT_POLICY",
    "Deadline",
    "DeadlineExceededError",
    "FaultyShard",
    "HealthBoard",
    "ReplicaDivergenceError",
    "ResilienceError",
    "ResiliencePolicy",
    "ShardCrashedError",
    "ShardFaultSpec",
    "ShardHealth",
    "ShardUnavailableError",
    "TransientShardError",
    "current_deadline",
    "deadline_scope",
]
