"""Per-shard health tracking: counters plus circuit breakers.

One :class:`HealthBoard` lives inside each :class:`~repro.sharding.engine
.ShardedEngine`.  Every shard call reports its outcome here; the board
keeps exact per-shard counters (requests, failures by kind, retries,
open-circuit skips) and one :class:`~repro.resilience.breaker
.CircuitBreaker` per shard, configured from the engine's
:class:`~repro.resilience.policy.ResiliencePolicy`.  The fan-out consults
:meth:`HealthBoard.allow` before dispatching to a shard, which is how a
persistently failing shard stops costing deadline budget.

With replication (:mod:`repro.replication`) each logical shard row is the
*coordinator's* view — what the fan-out observed after replica failover —
while every physical copy keeps its own counters, breaker and latency
estimate inside its :class:`~repro.replication.ReplicaSet`.
:meth:`HealthBoard.snapshot` surfaces both: logical rows carry
``replica_id=None``, per-replica rows carry the ``(shard, replica)``
address, so failover decisions are observable per copy instead of being
flattened into one shard counter.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional

from .breaker import CircuitBreaker
from .policy import ResiliencePolicy


@dataclass
class ShardHealth:
    """Cumulative outcome counters for one shard."""

    shard_id: int
    requests: int = 0             # calls admitted to the shard
    successes: int = 0
    transient_failures: int = 0   # individual transient faults observed
    hard_failures: int = 0        # crashes / non-retryable errors
    retries: int = 0              # re-attempts spent on this shard
    skipped_open: int = 0         # calls rejected by an open circuit
    deadline_drops: int = 0       # calls abandoned for deadline reasons


class HealthBoard:
    """Counters + breakers for every shard of one engine."""

    def __init__(
        self,
        num_shards: int,
        policy: ResiliencePolicy,
        clock: Callable[[], float] = time.monotonic,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        self._policy = policy
        self._shards: List[ShardHealth] = [
            ShardHealth(shard_id=shard) for shard in range(num_shards)
        ]
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                threshold=policy.breaker_threshold,
                window=policy.breaker_window,
                min_calls=policy.breaker_min_calls,
                cooldown_ms=policy.breaker_cooldown_ms,
                clock=clock,
            )
            for _ in range(num_shards)
        ]
        self._replica_source: Optional[Callable[[], list]] = None

    def __len__(self) -> int:
        return len(self._shards)

    def __getitem__(self, shard_id: int) -> ShardHealth:
        return self._shards[shard_id]

    # ------------------------------------------------------------------
    # Admission + outcome recording
    # ------------------------------------------------------------------
    def allow(self, shard_id: int) -> bool:
        """May the fan-out call this shard now?  (Breaker-gated.)"""
        return self.breakers[shard_id].allow()

    def record_admitted(self, shard_id: int) -> None:
        self._shards[shard_id].requests += 1

    def record_success(self, shard_id: int) -> None:
        self._shards[shard_id].successes += 1
        self.breakers[shard_id].record_success()

    def record_transient(self, shard_id: int) -> None:
        self._shards[shard_id].transient_failures += 1
        self.breakers[shard_id].record_failure()

    def record_hard(self, shard_id: int) -> None:
        self._shards[shard_id].hard_failures += 1
        self.breakers[shard_id].record_failure()

    def record_retry(self, shard_id: int) -> None:
        self._shards[shard_id].retries += 1

    def record_skip(self, shard_id: int) -> None:
        self._shards[shard_id].skipped_open += 1

    def record_deadline_drop(self, shard_id: int) -> None:
        self._shards[shard_id].deadline_drops += 1

    # ------------------------------------------------------------------
    # Replica visibility
    # ------------------------------------------------------------------
    def bind_replica_source(self, source: Callable[[], list]) -> None:
        """Attach a provider of the current shard objects (the engine binds
        its index's ``shards`` list).  Evaluated lazily at snapshot time, so
        replication attached *after* engine construction — the serving
        layer replicates post-durability — is still observed."""
        self._replica_source = source

    def replica_rows(self) -> List[Dict]:
        """Per-replica health rows from every attached ReplicaSet."""
        if self._replica_source is None:
            return []
        rows: List[Dict] = []
        for shard in self._replica_source():
            health_rows = getattr(shard, "health_rows", None)
            if callable(health_rows):
                rows.extend(health_rows())
        return rows

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def open_shards(self) -> List[int]:
        """Shards whose breaker currently rejects calls (open, or half-open
        with the single trial slot taken — i.e. ``allow`` would fail)."""
        return [
            shard for shard, breaker in enumerate(self.breakers)
            if breaker.state == "open"
        ]

    def snapshot(self) -> List[Dict]:
        """Per-shard and per-replica health as plain dicts.

        Logical rows (the coordinator's post-failover view) carry
        ``replica_id=None``; replicated deployments append one row per
        physical copy with its ``(shard_id, replica_id)`` address, its own
        breaker state and its EWMA read latency.
        """
        rows = [
            {
                **asdict(health),
                "replica_id": None,
                "breaker": self.breakers[shard].state,
            }
            for shard, health in enumerate(self._shards)
        ]
        rows.extend(self.replica_rows())
        return rows

    def __repr__(self) -> str:
        states = ",".join(breaker.state for breaker in self.breakers)
        return f"HealthBoard({len(self._shards)} shards, breakers=[{states}])"
