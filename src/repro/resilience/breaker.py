"""A per-shard circuit breaker: closed -> open -> half-open -> closed.

Classic three-state breaker over a sliding window of recent call outcomes:

* **closed** — calls flow; outcomes are recorded.  When the window holds at
  least ``min_calls`` outcomes and the failure rate reaches ``threshold``,
  the breaker *opens*.
* **open** — calls are rejected outright (the shard is presumed down, so
  the fan-out skips it instead of burning its deadline).  After
  ``cooldown_ms`` the breaker moves to *half-open*.
* **half-open** — exactly one trial call is admitted.  Success closes the
  breaker (window cleared); failure re-opens it for another cooldown.

The clock is injectable so tests drive state transitions without sleeping.
Thread-safe: the sharded fan-out consults breakers from pool threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque

from ..observability import get_registry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


def _count_transition(to_state: str) -> None:
    get_registry().counter(
        "repro_breaker_transitions_total",
        "Circuit breaker state transitions, by destination state",
        to=to_state,
    ).inc()


class CircuitBreaker:
    """Failure-rate breaker over a sliding outcome window."""

    def __init__(
        self,
        threshold: float = 0.5,
        window: int = 8,
        min_calls: int = 4,
        cooldown_ms: float = 1000.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if window < 1 or min_calls < 1:
            raise ValueError("window and min_calls must be positive")
        if cooldown_ms < 0:
            raise ValueError("cooldown_ms must be non-negative")
        self._threshold = threshold
        self._window = window
        self._min_calls = min_calls
        self._cooldown_ms = cooldown_ms
        self._clock = clock
        self._lock = threading.Lock()
        self._outcomes: Deque[bool] = deque(maxlen=window)  # True = success
        self._state = CLOSED
        self._opened_at = 0.0
        self._probing = False       # a half-open trial is in flight
        self.opens = 0              # cumulative open transitions

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == OPEN:
            elapsed_ms = (self._clock() - self._opened_at) * 1000.0
            if elapsed_ms >= self._cooldown_ms:
                self._state = HALF_OPEN
                self._probing = False
                _count_transition(HALF_OPEN)
        return self._state

    @property
    def failure_rate(self) -> float:
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open admits one trial.)"""
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    # ------------------------------------------------------------------
    # Outcome recording
    # ------------------------------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                # The trial call came back healthy: fully close.
                self._state = CLOSED
                self._outcomes.clear()
                self._probing = False
                _count_transition(CLOSED)
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == OPEN:
                # A stale outcome (the call was admitted before the trip, or
                # reached the shard through a path that bypassed ``allow``).
                # Re-tripping here would reset the cooldown and bump
                # ``opens`` once per caller — a steadily failing shard with
                # a steady query stream would then stay open forever and
                # never reach its half-open trial.  Open already presumes
                # failure; drop the observation.
                return
            if state == HALF_OPEN:
                self._trip_locked()
                return
            self._outcomes.append(False)
            if len(self._outcomes) >= self._min_calls:
                failures = sum(1 for ok in self._outcomes if not ok)
                if failures / len(self._outcomes) >= self._threshold:
                    self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probing = False
        self._outcomes.clear()
        self.opens += 1
        _count_transition(OPEN)

    def reset(self) -> None:
        """Force-close (administrative reset; counters are kept)."""
        with self._lock:
            self._state = CLOSED
            self._outcomes.clear()
            self._probing = False

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, rate={self.failure_rate:.2f}, "
            f"opens={self.opens})"
        )
