"""repro.replication — shard replicas, automatic failover, hedged reads.

The sharding layer (PR 2) made a partitioned deployment answer-identical
to one big index; the resilience layer (PR 3) made it degrade predictably
when shards die.  This package removes the degradation for any *minority*
replica loss: each logical shard becomes a :class:`ReplicaSet` of R
bit-identical copies (same rid subset, same shared global Dewey
assignment, verified by payload sha256 at bootstrap), and reads fail over
between copies transparently.  A query returns a degraded or failed
answer only when **every** replica of some shard is down — otherwise the
answer is exactly the fault-free one, for all five algorithms, because
every copy serves identical postings (docs/paper_mapping.md argues why
this preserves the paper's Definitions 1-2 exactly).

Pieces:

* :class:`ReplicaSet` — the shard-slot wrapper: per-replica circuit
  breakers and EWMA-latency health, preference ordering, sequential
  failover, convergent mutation forwarding, optional hedged reads.
* :class:`HedgePolicy` — when to fire the one allowed backup read
  (observed latency percentile with a cold-start floor, bounded by the
  query deadline).
* :mod:`~repro.replication.bootstrap` — growing verified copies from a
  live shard (re-index) or a durable one (snapshot + WAL replay, the PR 4
  recovery discipline applied to a live primary).
"""

from .bootstrap import (
    ReplicaBootstrapError,
    bootstrap_replicas,
    clone_from_index,
    clone_from_store,
    live_rids,
    replica_digest,
)
from .hedging import HedgePolicy
from .replica_set import ReplicaHealth, ReplicaSet

__all__ = [
    "HedgePolicy",
    "ReplicaBootstrapError",
    "ReplicaHealth",
    "ReplicaSet",
    "bootstrap_replicas",
    "clone_from_index",
    "clone_from_store",
    "live_rids",
    "replica_digest",
]
