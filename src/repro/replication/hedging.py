"""Hedged-read policy: when to fire the backup read, and at whom.

A hedged read races a second replica against a primary that is taking
suspiciously long: after a delay — the configured percentile of recently
observed read latencies, floored by ``delay_ms`` while the sample window
warms up — one backup read goes to the next-best replica, the first
response wins, and the loser is cancelled (best-effort: an already-running
pure-python read completes in the background and only its health outcome
is kept).  At most one backup per shard read, always bounded by the
query's remaining deadline budget.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HedgePolicy:
    """Knobs for hedged reads on one :class:`~repro.replication.ReplicaSet`."""

    delay_ms: float = 20.0     # floor / cold-start hedge delay
    percentile: float = 0.95   # observed-latency quantile that sets the delay
    window: int = 128          # latency samples retained per replica set
    min_samples: int = 16      # below this, delay_ms alone drives hedging

    def __post_init__(self):
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")
        if not 0.0 < self.percentile < 1.0:
            raise ValueError("percentile must be in (0, 1)")
        if self.window < 1:
            raise ValueError("window must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be positive")

    def delay_seconds(self, samples) -> float:
        """The hedge trigger delay given the recent latency samples (ms)."""
        if len(samples) >= self.min_samples:
            ranked = sorted(samples)
            index = min(len(ranked) - 1, int(len(ranked) * self.percentile))
            return max(self.delay_ms, ranked[index]) / 1000.0
        return self.delay_ms / 1000.0
