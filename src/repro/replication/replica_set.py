"""R bit-identical copies of one logical shard behind one read protocol.

A :class:`ReplicaSet` stands where a single shard index used to stand in
``ShardedIndex._shards`` (the same in-place wrapping idiom chaos and
durability use), so both engine strategies — scatter-gather and the
coordinator-driven union-cursor scan — read through it without knowing
replication exists.  Guarantees:

* **Bit-identical reads from any copy.**  Every replica serves the same
  rid subset over the *same shared global Dewey assignment* at the same
  epoch (verified by payload sha256 at bootstrap,
  :mod:`repro.replication.bootstrap`), so failing over mid-query cannot
  change an answer — the paper's Definitions 1-2 are preserved exactly
  through any partial replica loss.
* **Transparent failover.**  Reads prefer the healthiest copy (closed
  breaker first, lowest EWMA latency, replica id as the deterministic
  tiebreak) and on :class:`TransientShardError` / :class:`ShardCrashedError`
  / an open per-replica breaker move to the next.  Only when *every*
  copy fails does the set surface a shard-level error — transient if any
  copy failed transiently (the engine's retry machinery may yet succeed),
  crashed otherwise — so the engine degrades or fails exactly as if the
  whole logical shard were lost.
* **Optional hedged reads.**  With a :class:`~repro.replication.hedging
  .HedgePolicy`, the first attempt of a read races a backup on the
  next-best replica after the configured latency percentile; first
  response wins, the loser is cancelled (best-effort), never more than
  one backup per read, and both the trigger delay and the wait are
  bounded by the query's remaining deadline budget
  (:func:`~repro.resilience.policy.current_deadline`).  Unhedged sets
  are fully sequential and deterministic — the chaos differential suite
  runs that way.
* **Converged mutations.**  ``insert``/``remove`` forward to every copy
  (primary first — a durable primary WALs the record before any copy
  changes) and then assert epoch + Dewey agreement, raising
  :class:`~repro.resilience.errors.ReplicaDivergenceError` on any
  disagreement rather than serving from a silently forked copy.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..observability import MONOTONIC, Clock, get_registry
from ..resilience.breaker import CircuitBreaker, OPEN
from ..resilience.errors import (
    ReplicaDivergenceError,
    ShardCrashedError,
    TransientShardError,
)
from ..resilience.policy import DEFAULT_POLICY, ResiliencePolicy, current_deadline
from .bootstrap import bootstrap_replicas
from .hedging import HedgePolicy

#: EWMA smoothing for per-replica read latency (weight of the new sample).
_EWMA_ALPHA = 0.2


def _remaining_seconds(deadline) -> Optional[float]:
    """Deadline budget as a future/wait timeout (None when unbounded)."""
    if deadline is None:
        return None
    remaining_ms = deadline.remaining_ms()
    if math.isinf(remaining_ms):
        return None
    return max(0.0, remaining_ms / 1000.0)


@dataclass
class ReplicaHealth:
    """Cumulative outcome counters for one physical copy of a shard."""

    shard_id: int
    replica_id: int
    requests: int = 0
    successes: int = 0
    transient_failures: int = 0
    hard_failures: int = 0
    skipped_open: int = 0      # attempts rejected by this copy's open breaker
    ewma_ms: float = 0.0       # smoothed read latency (0 until first success)


class _HedgedFailure(Exception):
    """Internal: both legs of a hedged read failed; carries per-replica reasons."""

    def __init__(self, reasons: Dict[int, str]):
        self.reasons = reasons
        super().__init__(f"hedged read failed on replicas {sorted(reasons)}")


class ReplicaSet:
    """R replicas of one logical shard, speaking the shard read protocol."""

    def __init__(
        self,
        replicas: List,
        shard_id: int,
        policy: Optional[ResiliencePolicy] = None,
        clock: Clock = MONOTONIC,
        hedge: Optional[HedgePolicy] = None,
        registry=None,
    ):
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self._replicas = list(replicas)
        self.shard_id = shard_id
        self._policy = policy if policy is not None else DEFAULT_POLICY
        self._clock = clock
        self._hedge = hedge
        self._registry = registry
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_budget: Optional[int] = None
        self._pool_width = 0
        self._health = [
            ReplicaHealth(shard_id=shard_id, replica_id=replica_id)
            for replica_id in range(len(self._replicas))
        ]
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                threshold=self._policy.breaker_threshold,
                window=self._policy.breaker_window,
                min_calls=self._policy.breaker_min_calls,
                cooldown_ms=self._policy.breaker_cooldown_ms,
                clock=clock,
            )
            for _ in self._replicas
        ]
        self.failovers = 0
        self.hedges_fired = 0
        self.hedges_won = 0
        self.hedges_wasted = 0
        self._samples: deque = deque(
            maxlen=hedge.window if hedge is not None else 128
        )

    @classmethod
    def grow(
        cls,
        primary,
        count: int,
        shard_id: int,
        policy: Optional[ResiliencePolicy] = None,
        clock: Clock = MONOTONIC,
        hedge: Optional[HedgePolicy] = None,
        registry=None,
    ) -> "ReplicaSet":
        """Bootstrap ``count - 1`` verified copies of ``primary`` and wrap
        all ``count`` behind one set (see :mod:`repro.replication.bootstrap`)."""
        copies = bootstrap_replicas(primary, count)
        return cls([primary, *copies], shard_id, policy=policy, clock=clock,
                   hedge=hedge, registry=registry)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def replicas(self) -> List:
        """The physical copies, replica order (0 is the primary)."""
        return self._replicas

    @property
    def num_replicas(self) -> int:
        return len(self._replicas)

    @property
    def hedge_policy(self) -> Optional[HedgePolicy]:
        return self._hedge

    def health_rows(self) -> List[Dict]:
        """Per-replica health dicts (the HealthBoard snapshot contract)."""
        with self._lock:
            rows = []
            for replica_id, health in enumerate(self._health):
                rows.append({
                    "shard_id": self.shard_id,
                    "replica_id": replica_id,
                    "requests": health.requests,
                    "successes": health.successes,
                    "transient_failures": health.transient_failures,
                    "hard_failures": health.hard_failures,
                    "retries": 0,
                    "skipped_open": health.skipped_open,
                    "deadline_drops": 0,
                    "breaker": self.breakers[replica_id].state,
                    "ewma_ms": health.ewma_ms,
                })
            return rows

    def __repr__(self) -> str:
        states = ",".join(breaker.state for breaker in self.breakers)
        return (
            f"ReplicaSet(shard={self.shard_id}, replicas={self.num_replicas}, "
            f"breakers=[{states}], failovers={self.failovers}, "
            f"hedges={self.hedges_fired})"
        )

    def __getattr__(self, name: str):
        # Control-plane pass-through to the raw primary copy: keeps the
        # durability CLI (``wal``/``recovery``/``snapshot_path``) and other
        # shard-introspection callers working through the wrapper.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._raw(self._replicas[0]), name)

    @staticmethod
    def _raw(replica):
        """Unwrap a chaos proxy (mutations and control reads skip chaos)."""
        return getattr(replica, "inner", replica)

    # ------------------------------------------------------------------
    # Control plane (no failover — identical on every copy by invariant)
    # ------------------------------------------------------------------
    @property
    def relation(self):
        return self._raw(self._replicas[0]).relation

    @property
    def ordering(self):
        return self._raw(self._replicas[0]).ordering

    @property
    def backend(self) -> str:
        return self._raw(self._replicas[0]).backend

    @property
    def dewey(self):
        return self._raw(self._replicas[0]).dewey

    @property
    def depth(self) -> int:
        return self._raw(self._replicas[0]).depth

    @property
    def epoch(self) -> int:
        return self._raw(self._replicas[0]).epoch

    def __len__(self) -> int:
        return len(self._raw(self._replicas[0]))

    def memory_stats(self) -> dict:
        """Deployment-truthful accounting: every copy is resident memory."""
        lists = postings = total_bytes = 0
        for replica in self._replicas:
            stats = self._raw(replica).memory_stats()
            lists += stats["lists"]
            postings += stats["postings"]
            total_bytes += stats["bytes"]
        return {
            "backend": self.backend,
            "lists": lists,
            "postings": postings,
            "bytes": total_bytes,
            "bytes_per_posting": (total_bytes / postings) if postings else 0.0,
            "replicas": self.num_replicas,
        }

    # ------------------------------------------------------------------
    # Data-path reads: failover (+ optional hedging)
    # ------------------------------------------------------------------
    def scalar_postings(self, attribute: str, value: Any):
        return self._read(
            "scalar_postings",
            lambda replica: replica.scalar_postings(attribute, value),
        )

    def token_postings(self, attribute: str, token: str):
        return self._read(
            "token_postings",
            lambda replica: replica.token_postings(attribute, token),
        )

    def all_postings(self):
        return self._read("all_postings", lambda replica: replica.all_postings())

    def vocabulary(self, attribute: str) -> list:
        return self._read(
            "vocabulary", lambda replica: replica.vocabulary(attribute)
        )

    def _selection_order(self) -> List[int]:
        """Preference order: closed breakers before open ones, then lowest
        EWMA latency, then replica id (the deterministic tiebreak that keeps
        unhedged fault-free runs pinned to the primary)."""
        with self._lock:
            latencies = [health.ewma_ms for health in self._health]
        return sorted(
            range(len(self._replicas)),
            key=lambda rid: (self.breakers[rid].state == OPEN, latencies[rid], rid),
        )

    def _read(self, operation: str, call: Callable):
        candidates = deque(self._selection_order())
        reasons: Dict[int, str] = {}
        hedged = False
        while candidates:
            replica_id = candidates.popleft()
            if not self.breakers[replica_id].allow():
                with self._lock:
                    self._health[replica_id].skipped_open += 1
                reasons[replica_id] = "circuit open"
                continue
            use_hedge = (
                self._hedge is not None and not hedged and bool(candidates)
            )
            try:
                if use_hedge:
                    hedged = True  # at most one backup per shard read
                    return self._call_hedged(operation, replica_id, call,
                                             candidates)
                return self._call(operation, replica_id, call)
            except TransientShardError:
                reasons[replica_id] = "transient"
            except ShardCrashedError:
                reasons[replica_id] = "crashed"
            except _HedgedFailure as failure:
                reasons.update(failure.reasons)
                for rid in failure.reasons:
                    if rid in candidates:
                        candidates.remove(rid)
            self._count_failovers(1)
        return self._raise_exhausted(operation, reasons)

    def _raise_exhausted(self, operation: str, reasons: Dict[int, str]):
        detail = ", ".join(
            f"replica {rid}: {reason}" for rid, reason in sorted(reasons.items())
        )
        message = (
            f"all {self.num_replicas} replicas of shard {self.shard_id} "
            f"failed during {operation!r} ({detail})"
        )
        if any(reason == "transient" for reason in reasons.values()):
            # A transient-anywhere loss is worth the engine's retry budget:
            # the next attempt re-enters the failover loop from the top.
            raise TransientShardError(self.shard_id, operation, message=message)
        raise ShardCrashedError(self.shard_id, operation, message=message)

    def _call(self, operation: str, replica_id: int, call: Callable):
        """One timed, health-recorded read against one copy."""
        health = self._health[replica_id]
        breaker = self.breakers[replica_id]
        with self._lock:
            health.requests += 1
        started = self._clock()
        try:
            value = call(self._replicas[replica_id])
        except TransientShardError:
            with self._lock:
                health.transient_failures += 1
            breaker.record_failure()
            raise
        except ShardCrashedError:
            with self._lock:
                health.hard_failures += 1
            breaker.record_failure()
            raise
        elapsed_ms = (self._clock() - started) * 1000.0
        with self._lock:
            health.successes += 1
            if health.successes == 1:
                health.ewma_ms = elapsed_ms
            else:
                health.ewma_ms += _EWMA_ALPHA * (elapsed_ms - health.ewma_ms)
            self._samples.append(elapsed_ms)
        breaker.record_success()
        return value

    # ------------------------------------------------------------------
    # Hedged reads
    # ------------------------------------------------------------------
    @staticmethod
    def derive_pool_width(num_replicas: int, num_shards: int,
                          worker_budget: int) -> int:
        """Hedge-pool width for one shard's replica set under an engine-wide
        worker budget.

        Without a budget (standalone sets, ``workers=0`` engines) this is
        the historical ``min(4, R + 1)``.  With one, each of the
        ``num_shards`` sets gets its per-shard share of the budget plus the
        hedge slot, floored at 2 (a hedge needs two legs to race) and
        capped at ``R + 1`` (more threads than legs is pure oversubscription
        — with an engine fanning out to every shard at once, S sets of
        hardcoded width 4 could stack 4·S threads on a budget of W).
        """
        legacy = min(4, num_replicas + 1)
        if not worker_budget:
            return legacy
        share = max(1, worker_budget // max(1, num_shards))
        return max(2, min(num_replicas + 1, share + 1))

    def set_pool_budget(self, width: int) -> None:
        """Pin the hedge pool's width (from the owning engine's budget).

        An existing pool at another width is retired — it drains its
        in-flight legs and exits; the next hedge builds at the new width.
        """
        if width < 1:
            raise ValueError("pool width must be >= 1")
        with self._lock:
            self._pool_budget = width
            if self._pool is not None and self._pool_width != width:
                pool, self._pool = self._pool, None
                # wait=False: a leg may be blocked on this very lock for
                # its bookkeeping; joining it here would deadlock.
                pool.shutdown(wait=False)

    @property
    def pool_width(self) -> int:
        """The width the next hedge pool will be built at."""
        if self._pool_budget is not None:
            return self._pool_budget
        return min(4, self.num_replicas + 1)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            width = (
                self._pool_budget
                if self._pool_budget is not None
                else min(4, self.num_replicas + 1)
            )
            if self._pool is not None and self._pool_width != width:
                pool, self._pool = self._pool, None
                pool.shutdown(wait=False)
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=width,
                    thread_name_prefix=f"repro-hedge-{self.shard_id}",
                )
                self._pool_width = width
            return self._pool

    def _call_hedged(self, operation: str, primary_id: int, call: Callable,
                     candidates) -> Any:
        """First attempt with a backup racer: primary now, next-best replica
        after the hedge delay, first response wins, loser cancelled."""
        deadline = current_deadline()
        remaining_s = _remaining_seconds(deadline)
        delay_s = self._hedge.delay_seconds(list(self._samples))
        if remaining_s is not None:
            delay_s = min(delay_s, remaining_s)
        pool = self._ensure_pool()
        primary_future = pool.submit(self._call, operation, primary_id, call)
        try:
            return primary_future.result(timeout=delay_s)
        except FutureTimeoutError:
            pass  # primary is slow: hedge
        except TransientShardError:
            raise _HedgedFailure({primary_id: "transient"}) from None
        except ShardCrashedError:
            raise _HedgedFailure({primary_id: "crashed"}) from None
        backup_id = next(
            (rid for rid in candidates if self.breakers[rid].allow()), None
        )
        if backup_id is None:
            # Nowhere to hedge to: just wait the primary out.
            return self._await_leg(primary_future, primary_id, deadline)
        with self._lock:
            self.hedges_fired += 1
        self._count_hedge("fired")
        backup_future = pool.submit(self._call, operation, backup_id, call)
        futures = {primary_future: primary_id, backup_future: backup_id}
        reasons: Dict[int, str] = {}
        while futures:
            timeout = _remaining_seconds(deadline)
            done, _ = wait(set(futures), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            if not done:
                # Deadline expired with both legs in flight: abandon them
                # (their health outcomes land when they finish) and let the
                # engine's deadline machinery classify the loss.
                for future in futures:
                    future.cancel()
                reasons.update(
                    (rid, "transient") for rid in futures.values()
                )
                raise _HedgedFailure(reasons)
            for future in done:
                replica_id = futures.pop(future)
                try:
                    value = future.result()
                except TransientShardError:
                    reasons[replica_id] = "transient"
                except ShardCrashedError:
                    reasons[replica_id] = "crashed"
                else:
                    if replica_id == backup_id:
                        with self._lock:
                            self.hedges_won += 1
                        self._count_hedge("won")
                    else:
                        with self._lock:
                            self.hedges_wasted += 1
                        self._count_hedge("wasted")
                    for loser in futures:
                        loser.cancel()  # best-effort; a running leg drains
                    return value
        raise _HedgedFailure(reasons)

    def _await_leg(self, future, replica_id: int, deadline) -> Any:
        timeout = _remaining_seconds(deadline)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            raise _HedgedFailure({replica_id: "transient"}) from None
        except TransientShardError:
            raise _HedgedFailure({replica_id: "transient"}) from None
        except ShardCrashedError:
            raise _HedgedFailure({replica_id: "crashed"}) from None

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _metrics(self):
        return self._registry if self._registry is not None else get_registry()

    def _count_failovers(self, count: int) -> None:
        with self._lock:
            self.failovers += count
        self._metrics().counter(
            "repro_replica_failovers_total",
            "Reads that moved past a failed/skipped replica, by shard",
            shard=str(self.shard_id),
        ).inc(count)

    def _count_hedge(self, outcome: str) -> None:
        self._metrics().counter(
            "repro_replica_hedges_total",
            "Hedged backup reads by outcome (fired / won / wasted)",
            outcome=outcome,
        ).inc()

    # ------------------------------------------------------------------
    # Mutations: forward to every copy, assert convergence
    # ------------------------------------------------------------------
    def insert(self, rid: int):
        primary = self._raw(self._replicas[0])
        dewey = primary.insert(rid)
        for replica_id in range(1, self.num_replicas):
            follower = self._raw(self._replicas[replica_id])
            mirrored = follower.insert(rid)
            if mirrored != dewey:
                raise ReplicaDivergenceError(
                    self.shard_id,
                    f"replica {replica_id} assigned rid {rid} Dewey "
                    f"{list(mirrored)} != primary's {list(dewey)}",
                )
        self._check_converged("insert", rid)
        return dewey

    def remove(self, rid: int):
        primary = self._raw(self._replicas[0])
        shared = primary.dewey
        if rid not in shared:
            return None
        dewey = shared.dewey_of(rid)
        if dewey not in primary.all_postings():
            return None  # not this shard's row (shared global Dewey space)
        removed = primary.remove(rid)
        if removed is None:
            return None
        for replica_id in range(1, self.num_replicas):
            # The primary's remove retired the shared Dewey assignment;
            # followers mirror only the posting-list effect.
            self._raw(self._replicas[replica_id]).remove_mirrored(rid, dewey)
        self._check_converged("remove", rid)
        return removed

    def _check_converged(self, operation: str, rid: int) -> None:
        epochs = [
            self._raw(replica).epoch for replica in self._replicas
        ]
        if len(set(epochs)) != 1:
            raise ReplicaDivergenceError(
                self.shard_id,
                f"epochs {epochs} disagree after {operation}(rid={rid})",
            )
        lengths = [len(self._raw(replica)) for replica in self._replicas]
        if len(set(lengths)) != 1:
            raise ReplicaDivergenceError(
                self.shard_id,
                f"posting counts {lengths} disagree after {operation}(rid={rid})",
            )

    # ------------------------------------------------------------------
    # Chaos (per-replica addressing) and lifecycle
    # ------------------------------------------------------------------
    def inject_chaos(self, chaos) -> None:
        """Wrap every copy in a replica-addressed chaos proxy."""
        from ..resilience.chaos import FaultyShard

        self.clear_chaos()
        self._replicas = [
            FaultyShard(replica, self.shard_id, chaos, replica_id=replica_id)
            for replica_id, replica in enumerate(self._replicas)
        ]

    def clear_chaos(self) -> None:
        self._replicas = [self._raw(replica) for replica in self._replicas]

    @property
    def chaos(self):
        """The active :class:`ChaosPolicy`, or ``None`` when uninjected."""
        return getattr(self._replicas[0], "chaos", None)

    def close(self) -> None:
        """Release the hedge pool and close closeable replicas (durable
        primaries sync + release their WAL handles)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        for replica in self._replicas:
            raw = self._raw(replica)
            closer = getattr(raw, "close", None)
            if callable(closer):
                closer()

    def close_pool(self) -> None:
        """Release only the hedge thread pool (engine shutdown path; the
        serving layer closes the replicas themselves via :meth:`close`)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
