"""Replica bootstrap: grow bit-identical copies of a logical shard.

Two sources, one contract — the new copy serves exactly the rows the
primary serves, addressed by the *same* shared global Dewey assignment,
at the *same* mutation epoch:

* **From a durable store** (:class:`~repro.durability.store.DurableIndex`
  primary): read the shard's snapshot (its sha256 payload digest is
  verified by :func:`~repro.index.snapshot.read_snapshot`), then replay
  the WAL records past the snapshot epoch — the exact recovery discipline
  of :func:`~repro.durability.sharded.recover_sharded_store`, applied to
  a *live* primary to birth a peer instead of resurrecting a corpse.
* **From a live in-memory shard**: re-index the primary's live rid set
  over the shared Dewey assignment (the ``InvertedIndex.build``
  subset idiom the sharded build itself uses).

Either way the result is cross-checked end-to-end: primary and replica
must produce the same canonical snapshot-payload sha256 over the same
rid scope (rows, Dewey postings, epoch) before the copy may serve reads.
"""

from __future__ import annotations

from typing import List

from ..index.inverted import InvertedIndex
from ..index.snapshot import build_payload, payload_digest, read_snapshot


class ReplicaBootstrapError(RuntimeError):
    """A freshly grown replica failed verification against its primary."""


def _raw(shard):
    """Unwrap a chaos proxy (bootstrap reads must see the true index)."""
    return getattr(shard, "inner", shard)


def live_rids(shard) -> List[int]:
    """The rids this shard serves, derived from its live postings."""
    dewey = shard.dewey
    return sorted(dewey.rid_of(dewey_id) for dewey_id in shard.all_postings())


def replica_digest(shard) -> str:
    """Canonical sha256 of what this copy serves (rows, postings, epoch).

    Scoped to the copy's live rids so the digest covers exactly the served
    content — two bit-identical copies of one shard agree byte-for-byte,
    and any divergence in rows, Dewey assignment, or epoch changes it.
    """
    shard = _raw(shard)
    return payload_digest(build_payload(shard, rids=live_rids(shard)))


def clone_from_index(shard) -> InvertedIndex:
    """Rebuild a copy of a live in-memory shard over the shared Dewey space."""
    shard = _raw(shard)
    replica = InvertedIndex(
        shard.relation, shard.ordering, backend=shard.backend, dewey=shard.dewey
    )
    for rid in live_rids(shard):
        replica.index_restored_row(rid)
    replica.restore_epoch(shard.epoch)
    return replica


def clone_from_store(store) -> InvertedIndex:
    """Bootstrap a copy from a durable primary: snapshot + WAL replay.

    The snapshot envelope's sha256 digest is verified on read; every
    restored or replayed Dewey assignment is cross-checked against the
    live shared assignment (a replica must never invent coordinates); the
    replay lands on the primary's exact epoch via the WAL seq chain.
    """
    from ..durability.errors import RecoveryError
    from ..durability.store import _scan_wal_for_recovery, parse_record

    store = _raw(store)
    label = store.snapshot_path.parent
    payload = read_snapshot(store.snapshot_path)  # digest-verified envelope
    dewey = store.dewey
    live = set()
    for rid, components in payload["deweys"]:
        rid = int(rid)
        assigned = tuple(int(component) for component in components)
        if rid not in dewey or dewey.dewey_of(rid) != assigned:
            raise ReplicaBootstrapError(
                f"{label}: snapshot assigns rid {rid} Dewey {list(assigned)} "
                f"but the live global assignment disagrees"
            )
        live.add(rid)
    snapshot_epoch = int(payload.get("epoch", 0))
    expected = snapshot_epoch
    store.wal.sync()  # flush buffered tail records so the scan sees them
    try:
        scan = _scan_wal_for_recovery(store.wal.path, label)
    except RecoveryError as error:
        raise ReplicaBootstrapError(str(error)) from error
    for record in scan.records:
        try:
            seq, op, rid, record_dewey, _row = parse_record(record, label)
        except RecoveryError as error:
            raise ReplicaBootstrapError(str(error)) from error
        if seq <= snapshot_epoch:
            continue
        expected += 1
        if seq != expected:
            raise ReplicaBootstrapError(
                f"{label}: WAL sequence gap during replica bootstrap "
                f"(expected seq {expected}, found {seq})"
            )
        if op == "insert":
            if rid not in dewey or dewey.dewey_of(rid) != record_dewey:
                raise ReplicaBootstrapError(
                    f"{label}: WAL insert {seq} assigns rid {rid} a Dewey "
                    f"the live global assignment disagrees with"
                )
            live.add(rid)
        else:  # remove
            live.discard(rid)
    replica = InvertedIndex(
        store.relation, store.ordering, backend=store.backend, dewey=dewey
    )
    for rid in sorted(live):
        replica.index_restored_row(rid)
    replica.restore_epoch(expected)
    return replica


def bootstrap_replicas(primary, count: int) -> List[InvertedIndex]:
    """Grow ``count - 1`` verified copies of ``primary``.

    Durable primaries bootstrap through their snapshot + WAL (the copy is
    exactly what a crash recovery would serve); in-memory primaries
    rebuild directly.  Every copy's payload sha256 must equal the
    primary's before it is returned.
    """
    if count < 1:
        raise ValueError("replica count must be >= 1")
    primary = _raw(primary)
    durable = hasattr(primary, "snapshot_path") and hasattr(primary, "wal")
    expected = replica_digest(primary)
    copies: List[InvertedIndex] = []
    for _ in range(count - 1):
        replica = clone_from_store(primary) if durable else clone_from_index(primary)
        actual = replica_digest(replica)
        if actual != expected:
            raise ReplicaBootstrapError(
                f"replica bootstrap diverged from its primary: payload "
                f"sha256 {actual[:12]}… != {expected[:12]}…"
            )
        copies.append(replica)
    return copies
