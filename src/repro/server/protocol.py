"""A minimal HTTP/1.1 request parser and response writer over asyncio streams.

The serving front-end deliberately carries no web-framework dependency (the
project has none at all): the protocol surface the engine needs is one
request shape — a method, a target with a query string, a handful of
headers, an optional small body — and two response shapes, a buffered JSON
document and a chunked stream of result pages.  Everything here is plain
``asyncio`` stream reading with hard limits on every dimension an abusive
client controls (request-line length, header count and size, body size),
because the admission-control story upstairs is only as good as the
parser's refusal to buffer unbounded input downstairs.

Errors raise :class:`ProtocolError` carrying the HTTP status the connection
handler should answer with before closing; a clean EOF between requests
returns ``None`` from :func:`read_request` (the keep-alive loop's exit).
"""

from __future__ import annotations

import json
from typing import AsyncIterator, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Hard parser limits; a request exceeding any of them is answered with a
#: 4xx and the connection is closed (never buffered past the limit).
MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 64
MAX_HEADER_LINE = 8192
MAX_BODY_BYTES = 1 << 20

#: Stream limit for ``asyncio.start_server`` — one line never exceeds this.
STREAM_LIMIT = max(MAX_REQUEST_LINE, MAX_HEADER_LINE) + 2

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

SERVER_NAME = "repro-serve"


class ProtocolError(Exception):
    """A malformed/abusive request; ``status`` is the answer to send."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "target", "path", "params", "headers", "body",
                 "version")

    def __init__(self, method: str, target: str, version: str,
                 headers: Dict[str, str], body: bytes):
        self.method = method
        self.target = target
        self.version = version
        self.headers = headers
        self.body = body
        split = urlsplit(target)
        self.path = split.path or "/"
        # Last value wins on duplicates — the handlers only use scalars.
        self.params = dict(parse_qsl(split.query, keep_blank_values=True))

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.params.get(name, default)

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 persists by default; 1.0 only on explicit keep-alive."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def __repr__(self) -> str:
        return f"Request({self.method} {self.target})"


async def _read_line(reader, limit: int, what: str) -> bytes:
    try:
        line = await reader.readline()
    except ValueError:
        # StreamReader raises ValueError when a line exceeds its limit.
        raise ProtocolError(431, f"{what} exceeds {limit} bytes") from None
    if len(line) > limit:
        raise ProtocolError(431, f"{what} exceeds {limit} bytes")
    return line


async def read_request(reader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` on malformed input or exceeded limits.
    Only identity bodies sized by ``Content-Length`` are accepted (chunked
    *request* bodies answer 501 — no endpoint needs them).
    """
    line = await _read_line(reader, MAX_REQUEST_LINE, "request line")
    if not line:
        return None
    try:
        text = line.decode("ascii").strip()
    except UnicodeDecodeError:
        raise ProtocolError(400, "request line is not ASCII") from None
    if not text:
        # Tolerate a stray CRLF between pipelined requests.
        line = await _read_line(reader, MAX_REQUEST_LINE, "request line")
        if not line:
            return None
        try:
            text = line.decode("ascii").strip()
        except UnicodeDecodeError:
            raise ProtocolError(400, "request line is not ASCII") from None
    parts = text.split()
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line {text!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise ProtocolError(400, f"unsupported protocol version {version!r}")
    headers: Dict[str, str] = {}
    while True:
        raw = await _read_line(reader, MAX_HEADER_LINE, "header line")
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError(431, f"more than {MAX_HEADER_COUNT} headers")
        try:
            decoded = raw.decode("latin-1").rstrip("\r\n")
        except UnicodeDecodeError:
            raise ProtocolError(400, "undecodable header") from None
        name, separator, value = decoded.partition(":")
        if not separator or not name.strip():
            raise ProtocolError(400, f"malformed header {decoded!r}")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding", "").lower() not in ("", "identity"):
        raise ProtocolError(501, "chunked request bodies are not supported")
    body = b""
    length_raw = headers.get("content-length")
    if length_raw is not None:
        try:
            length = int(length_raw)
        except ValueError:
            raise ProtocolError(400, f"bad Content-Length {length_raw!r}") from None
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)
    return Request(method, target, version, headers, body)


def json_bytes(document: object) -> bytes:
    """Compact JSON encoding used for every response body."""
    return json.dumps(
        document, separators=(",", ":"), sort_keys=True, default=str
    ).encode("utf-8")


HeaderList = Sequence[Tuple[str, str]]


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: HeaderList = (),
    keep_alive: bool = True,
) -> bytes:
    """One buffered response, Content-Length framed."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Server: {SERVER_NAME}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def error_body(status: int, error: str, message: str, **fields) -> bytes:
    """The uniform JSON error document every non-200 answer carries."""
    document = {"status": status, "error": error, "message": message}
    document.update(fields)
    return json_bytes(document)


async def write_response(
    writer,
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: HeaderList = (),
    keep_alive: bool = True,
) -> None:
    writer.write(render_response(
        status, body, content_type=content_type,
        extra_headers=extra_headers, keep_alive=keep_alive,
    ))
    await writer.drain()


class ChunkedWriter:
    """A chunked-transfer response: headers up front, one chunk per page.

    Used by the streaming search path — each diverse result page is one
    chunk holding one NDJSON line, so clients render pages as they are
    computed instead of waiting for the last one.
    """

    def __init__(self, writer, status: int = 200,
                 content_type: str = "application/x-ndjson",
                 extra_headers: HeaderList = ()):
        self._writer = writer
        self._status = status
        self._content_type = content_type
        self._extra_headers = extra_headers
        self._started = False
        self._finished = False

    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        reason = REASONS.get(self._status, "Unknown")
        lines = [
            f"HTTP/1.1 {self._status} {reason}",
            f"Server: {SERVER_NAME}",
            f"Content-Type: {self._content_type}",
            "Transfer-Encoding: chunked",
            "Connection: keep-alive",
        ]
        for name, value in self._extra_headers:
            lines.append(f"{name}: {value}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await self._writer.drain()

    async def write_chunk(self, payload: bytes) -> None:
        if not payload:
            return
        await self.start()
        self._writer.write(b"%x\r\n" % len(payload) + payload + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        if self._finished:
            return
        await self.start()
        self._finished = True
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
