"""repro.server — the stdlib-only HTTP/1.1 serving front-end.

Turns the library into a service: a minimal asyncio HTTP layer
(:mod:`.protocol`) over :class:`~repro.serving.engine.ServingEngine`,
with deadline-aware admission control and cheapest-to-reject load
shedding (:mod:`.admission`), per-tenant token-bucket quotas
(:mod:`.quotas`), the engine/wire mapping (:mod:`.routes`), and
graceful SIGTERM drain (:mod:`.lifecycle`).  See the README's
"Serving over HTTP" section for the endpoint contract.
"""

from .admission import (
    REASON_DEADLINE,
    REASON_DRAINING,
    REASON_OVERLOAD,
    REASON_SHED,
    AdmissionController,
    Rejection,
    Ticket,
)
from .lifecycle import ReproServer, ServerConfig, run_server
from .protocol import ProtocolError, Request, read_request
from .quotas import ANONYMOUS_TENANT, TenantQuotas, TokenBucket
from .routes import DEADLINE_HEADER, TENANT_HEADER, Router
from .testing import ServerThread

__all__ = [
    "ANONYMOUS_TENANT",
    "AdmissionController",
    "DEADLINE_HEADER",
    "ProtocolError",
    "REASON_DEADLINE",
    "REASON_DRAINING",
    "REASON_OVERLOAD",
    "REASON_SHED",
    "Rejection",
    "ReproServer",
    "Request",
    "Router",
    "ServerConfig",
    "ServerThread",
    "TENANT_HEADER",
    "TenantQuotas",
    "Ticket",
    "TokenBucket",
    "read_request",
    "run_server",
]
