"""Test/benchmark helper: run a :class:`ReproServer` on a daemon thread.

Tests and the load harness are synchronous; the server is asyncio.  This
bridges the two: :class:`ServerThread` spins up a private event loop on a
daemon thread, starts the server on an ephemeral port, and exposes the
bound address.  ``stop()`` (or leaving the ``with`` block) performs a
full graceful drain on the server's own loop, so even the test path
exercises exactly the shutdown sequence SIGTERM would.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from .lifecycle import ReproServer, ServerConfig


class ServerThread:
    """Context manager running one server on its own thread + event loop."""

    def __init__(self, serving, config: Optional[ServerConfig] = None,
                 registry=None):
        self._serving = serving
        self._config = config or ServerConfig()
        self._registry = registry
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server-thread", daemon=True)
        self.server: Optional[ReproServer] = None
        self.address: Optional[Tuple[str, int]] = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.server = ReproServer(self._serving, self._config,
                                      registry=self._registry)
            self.address = await self.server.start()
        except BaseException as exc:  # startup failed — report to caller
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.server.drain()

    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server failed to start within 30 s")
        if self._error is not None:
            raise RuntimeError("server startup failed") from self._error
        return self

    def stop(self, timeout_s: float = 30.0) -> None:
        """Drain and join; idempotent."""
        if self._loop is None or self._stop is None:
            return
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout_s)

    @property
    def base_url(self) -> str:
        if self.address is None:
            raise RuntimeError("server not started")
        host, port = self.address
        return f"http://{host}:{port}"

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
