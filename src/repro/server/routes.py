"""HTTP route handling: params → engine calls → wire status/headers.

One :class:`Router` serves four endpoints over a
:class:`~repro.serving.engine.ServingEngine`:

* ``GET /search`` — the admitted, priced, deadline-bounded query path.
  Plain mode returns one JSON document; ``page=`` returns one diverse
  result page (:mod:`repro.core.pagination` semantics: every page is
  maximally diverse over the inventory not yet shown); ``pages=N``
  streams N pages as chunked NDJSON, each page written as soon as the
  engine computes it.
* ``GET /metrics`` — the process metrics registry
  (``?format=json`` for the repro-metrics snapshot, Prometheus text
  exposition otherwise).  Control plane: never queued, never priced.
* ``GET /healthz`` — liveness + drain state.
* ``GET /`` — endpoint discovery document.

The resilience taxonomy maps onto the wire exactly once, here
(mirrored in docs/paper_mapping.md):

=============================  ======  =========================
outcome                        status  extras
=============================  ======  =========================
answered (possibly degraded)   200     ``X-Repro-Degraded: shards=f/t``
parse / bad parameter          400
quota exhausted                429     ``Retry-After``
admission: deadline unmeetable 429     ``Retry-After``
queue full / shed / draining   503     ``Retry-After``
shards lost (scan path)        503     ``Retry-After``
deadline exceeded              504
=============================  ======  =========================

Degraded answers ride a 200 — they are still valid Definitions 1–2
diverse top-k over the reachable rows — but are flagged in the header and
are **never cached** (the serving cache refuses them; the flag survives
the process boundary so clients can tell, too).
"""

from __future__ import annotations

import asyncio
import math
from typing import Dict, List, Optional, Tuple

from ..core.engine import ALGORITHMS, AUTO
from ..core.result import DiverseResult
from ..observability import MONOTONIC, Clock
from ..query.parser import QueryParseError
from ..resilience.errors import (
    DeadlineExceededError,
    ResilienceError,
    ShardUnavailableError,
)
from .admission import Rejection
from .protocol import (
    ChunkedWriter,
    ProtocolError,
    Request,
    error_body,
    json_bytes,
    write_response,
)

TENANT_HEADER = "x-repro-tenant"
DEADLINE_HEADER = "x-repro-deadline-ms"

#: Pagination runs the probing/one-pass drivers over an exclusion view;
#: other algorithms fall back to probe (documented in the README).
PAGEABLE_ALGORITHMS = ("probe", "onepass")

#: Safety net when the cost model cannot price a query (statistics behind
#: a crashed shard): assume a moderately expensive request rather than
#: letting unpriceable traffic bypass admission maths.
FALLBACK_COST_UNITS = 200.0


class BadRequest(Exception):
    """A 400: the client sent something the route cannot interpret."""


def _positive_int(raw: str, name: str, maximum: int) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise BadRequest(f"{name} must be an integer, got {raw!r}") from None
    if value < 1 or value > maximum:
        raise BadRequest(f"{name} must be in [1, {maximum}], got {value}")
    return value


def _flag(raw: Optional[str]) -> bool:
    return raw is not None and raw.lower() in ("1", "true", "yes", "on")


def result_payload(result: DiverseResult, **extra) -> Dict:
    """The JSON document one :class:`DiverseResult` serialises to."""
    stats = result.stats
    payload = {
        "k": result.k,
        "algorithm": stats.get("algorithm_selected", result.algorithm),
        "scored": result.scored,
        "count": len(result),
        "degraded": bool(stats.get("degraded")),
        "cache_hit": bool(stats.get("cache_hit")),
        "items": [
            {
                "rid": item.rid,
                "dewey": list(item.dewey),
                "score": item.score,
                "values": item.values,
            }
            for item in result.items
        ],
    }
    if payload["degraded"]:
        payload["shards_failed"] = stats.get("shards_failed")
        payload["shards_total"] = stats.get("shards_total")
    payload.update(extra)
    return payload


def price_query(engine, prepared, k: int, scored: bool, algorithm: str) -> float:
    """Seek-unit price of one prepared query (the admission currency).

    Reuses the PR 7 cost model: for ``auto`` the admission price is the
    cheapest candidate (what the planner will actually run); a fixed
    algorithm is priced as itself when the model knows it.  Unpriceable
    queries (statistics unreachable mid-outage) fall back to a fixed
    conservative constant — pricing must never take the serving path down.
    """
    from ..planner import DEFAULT_CANDIDATES, estimate_costs
    from ..planner.cost import PRICEABLE

    if algorithm in PRICEABLE:
        candidates: Tuple[str, ...] = (algorithm,)
    else:
        candidates = DEFAULT_CANDIDATES
    try:
        costs = estimate_costs(
            engine.index, prepared, k, scored, algorithms=candidates
        )
        price = min(costs.values())
    except Exception:
        return FALLBACK_COST_UNITS
    if not math.isfinite(price) or price <= 0.0:
        return FALLBACK_COST_UNITS
    return price


class Router:
    """Dispatches parsed requests against the serving engine.

    ``submit`` is the server's admission seam
    (``submit(cost, deadline_ms, work, label) -> Ticket``): the router
    prices and parameterises, the lifecycle layer queues and executes.
    """

    def __init__(self, serving, config, admission, quotas, registry,
                 clock: Clock = MONOTONIC):
        self._serving = serving
        self._config = config
        self._admission = admission
        self._quotas = quotas
        self._registry = registry
        self._clock = clock
        self._draining = False
        enabled = registry is not None and registry.enabled
        self._requests_total = (lambda route, status: registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and status",
            route=route, status=str(status),
        )) if enabled else (lambda route, status: None)
        if enabled:
            self._admitted_total = registry.counter(
                "repro_http_admitted_total",
                "Search requests admitted past admission control")
            self._shed_total = (lambda reason: registry.counter(
                "repro_http_shed_total",
                "Search requests rejected or shed by admission control",
                reason=reason))
            self._quota_total = registry.counter(
                "repro_http_quota_rejected_total",
                "Search requests rejected by per-tenant quotas")
            self._degraded_total = registry.counter(
                "repro_http_degraded_total",
                "Search answers served degraded (survivor shards only)")
            self._latency = {
                outcome: registry.histogram(
                    "repro_http_request_ms",
                    "End-to-end request latency, by outcome",
                    outcome=outcome)
                for outcome in ("admitted", "rejected")
            }
            self._queue_wait = registry.histogram(
                "repro_http_queue_wait_ms",
                "Time admitted requests spent queued before execution")
        else:
            self._admitted_total = None
            self._shed_total = lambda reason: None
            self._quota_total = None
            self._degraded_total = None
            self._latency = {}
            self._queue_wait = None

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def set_draining(self) -> None:
        self._draining = True

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def dispatch(self, request: Request, writer) -> bool:
        """Serve one request; returns whether to keep the connection."""
        started = self._clock()
        route = request.path
        try:
            if request.method not in ("GET", "HEAD"):
                await self._error(writer, request, 405, "method_not_allowed",
                                  f"{request.method} is not supported")
                return request.keep_alive
            if route == "/healthz":
                return await self._healthz(request, writer)
            if route == "/metrics":
                return await self._metrics(request, writer)
            if route == "/":
                return await self._index(request, writer)
            if route == "/search":
                return await self._search(request, writer, started)
            await self._error(writer, request, 404, "not_found",
                              f"no route {route!r}")
            return request.keep_alive
        except (ConnectionResetError, BrokenPipeError):
            return False

    def _observe(self, request: Request, status: int,
                 started: Optional[float] = None,
                 outcome: Optional[str] = None) -> None:
        counter = self._requests_total(request.path, status)
        if counter is not None:
            counter.inc()
        if outcome is not None and started is not None:
            hist = self._latency.get(outcome)
            if hist is not None:
                hist.observe((self._clock() - started) * 1000.0)

    async def _error(self, writer, request: Request, status: int, error: str,
                     message: str, retry_after_ms: Optional[float] = None,
                     started: Optional[float] = None,
                     outcome: Optional[str] = None) -> None:
        headers: List[Tuple[str, str]] = []
        if retry_after_ms is not None and math.isfinite(retry_after_ms):
            headers.append(
                ("Retry-After", str(max(1, math.ceil(retry_after_ms / 1000.0))))
            )
        self._observe(request, status, started, outcome)
        await write_response(
            writer, status, error_body(status, error, message),
            extra_headers=headers, keep_alive=request.keep_alive,
        )

    # ------------------------------------------------------------------
    # Control-plane routes
    # ------------------------------------------------------------------
    async def _healthz(self, request: Request, writer) -> bool:
        body = json_bytes({
            "status": "draining" if self._draining else "ok",
            "epoch": self._serving.epoch,
            "queued": self._admission.queued,
            "inflight": self._admission.inflight,
        })
        self._observe(request, 200)
        await write_response(writer, 200, body, keep_alive=request.keep_alive)
        return request.keep_alive

    async def _metrics(self, request: Request, writer) -> bool:
        from ..observability import get_registry

        registry = self._registry if self._registry is not None else get_registry()
        if request.param("format", "prometheus") == "json":
            import json as _json

            body = (_json.dumps(registry.snapshot(), indent=2, sort_keys=True,
                                default=str) + "\n").encode("utf-8")
            content_type = "application/json"
        else:
            body = registry.render_prometheus().encode("utf-8")
            content_type = "text/plain; version=0.0.4"
        self._observe(request, 200)
        await write_response(writer, 200, body, content_type=content_type,
                             keep_alive=request.keep_alive)
        return request.keep_alive

    async def _index(self, request: Request, writer) -> bool:
        body = json_bytes({
            "service": "repro-serve",
            "endpoints": {
                "/search": "q, k, algorithm, scored, page, pages, page_size, "
                           "deadline_ms; headers X-Repro-Tenant, "
                           "X-Repro-Deadline-Ms",
                "/metrics": "format=prometheus|json",
                "/healthz": "liveness + drain state",
            },
        })
        self._observe(request, 200)
        await write_response(writer, 200, body, keep_alive=request.keep_alive)
        return request.keep_alive

    # ------------------------------------------------------------------
    # The search path
    # ------------------------------------------------------------------
    def _search_params(self, request: Request):
        text = request.param("q")
        if not text:
            raise BadRequest("missing required parameter 'q'")
        config = self._config
        k = _positive_int(request.param("k", str(config.default_k)), "k",
                          config.max_k)
        algorithm = request.param("algorithm", config.default_algorithm)
        if algorithm not in ALGORITHMS and algorithm != AUTO:
            raise BadRequest(
                f"unknown algorithm {algorithm!r}; choose from "
                f"{ALGORITHMS + (AUTO,)}"
            )
        scored = _flag(request.param("scored"))
        page = request.param("page")
        pages = request.param("pages")
        page_size = request.param("page_size")
        if page is not None and pages is not None:
            raise BadRequest("pass either page= (one page) or pages= "
                             "(a stream), not both")
        if page is not None:
            page = _positive_int(page, "page", config.max_pages)
        if pages is not None:
            pages = _positive_int(pages, "pages", config.max_pages)
        if page_size is not None:
            page_size = _positive_int(page_size, "page_size", config.max_k)
        deadline_raw = request.param(
            "deadline_ms", request.header(DEADLINE_HEADER))
        if deadline_raw is None:
            deadline_ms: Optional[float] = config.default_deadline_ms
        else:
            try:
                deadline_ms = float(deadline_raw)
            except ValueError:
                raise BadRequest(
                    f"deadline_ms must be a number, got {deadline_raw!r}"
                ) from None
            if deadline_ms <= 0.0:
                deadline_ms = None  # explicit 0/negative = unbounded
        if (page is not None or pages is not None):
            if scored:
                raise BadRequest("pagination serves unscored queries only")
            if algorithm not in PAGEABLE_ALGORITHMS:
                algorithm = "probe"
        return text, k, algorithm, scored, page, pages, page_size, deadline_ms

    async def _search(self, request: Request, writer, started: float) -> bool:
        if self._draining:
            await self._error(
                writer, request, 503, "draining",
                "server is draining; retry against another instance",
                retry_after_ms=1000.0, started=started, outcome="rejected")
            return False
        try:
            (text, k, algorithm, scored, page, pages, page_size,
             deadline_ms) = self._search_params(request)
        except BadRequest as exc:
            await self._error(writer, request, 400, "bad_request", str(exc),
                              started=started, outcome="rejected")
            return request.keep_alive

        tenant = request.header(TENANT_HEADER)
        retry_after_ms = self._quotas.check(tenant)
        if retry_after_ms > 0.0:
            if self._quota_total is not None:
                self._quota_total.inc()
            await self._error(
                writer, request, 429, "quota_exceeded",
                f"tenant {tenant or 'anonymous'!r} is over its request quota",
                retry_after_ms=retry_after_ms, started=started,
                outcome="rejected")
            return request.keep_alive

        engine = self._serving.engine
        try:
            parsed = engine.prepare(text, scored, optimize=False)
        except QueryParseError as exc:
            await self._error(writer, request, 400, "parse_error", str(exc),
                              started=started, outcome="rejected")
            return request.keep_alive

        cost = price_query(engine, engine.prepare(parsed, scored), k, scored,
                           algorithm)
        page_count = pages if pages is not None else (page or 0)
        if page_count:
            cost *= page_count

        serving = self._serving
        if pages is not None:
            return await self._stream_pages(
                request, writer, started, parsed, pages,
                page_size or k, algorithm, cost, deadline_ms)

        if page is not None:
            def work():
                return serving.search_page(
                    parsed, k, page=page, page_size=page_size,
                    algorithm=algorithm)
        else:
            def work():
                return serving.search(parsed, k, algorithm=algorithm,
                                      scored=scored)

        try:
            ticket = self._admission.submit(cost, deadline_ms, work,
                                            label=request.path)
        except Rejection as exc:
            self._shed_total(exc.reason)
            await self._error(writer, request, exc.status, exc.reason,
                              str(exc), retry_after_ms=exc.retry_after_ms,
                              started=started, outcome="rejected")
            return request.keep_alive
        if self._admitted_total is not None:
            self._admitted_total.inc()

        try:
            result = await asyncio.shield(ticket.future)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            status, error, message, retry_after = self._map_failure(exc)
            if isinstance(exc, Rejection):
                self._shed_total(exc.reason)
                outcome = "rejected"
            else:
                outcome = "admitted"
            await self._error(writer, request, status, error, message,
                              retry_after_ms=retry_after, started=started,
                              outcome=outcome)
            return request.keep_alive

        if ticket.started_at is not None and self._queue_wait is not None:
            self._queue_wait.observe(
                (ticket.started_at - ticket.enqueued_at) * 1000.0)
        headers = self._result_headers(result, ticket)
        body = json_bytes(result_payload(
            result, query=text,
            **({"page": page, "page_size": page_size or k} if page else {})))
        self._observe(request, 200, started, "admitted")
        await write_response(writer, 200, body, extra_headers=headers,
                             keep_alive=request.keep_alive)
        return request.keep_alive

    def _result_headers(self, result: DiverseResult, ticket) -> List[Tuple[str, str]]:
        stats = result.stats
        headers = [
            ("X-Repro-Algorithm",
             str(stats.get("algorithm_selected", result.algorithm))),
            ("X-Repro-Cache", "hit" if stats.get("cache_hit") else "miss"),
        ]
        if ticket.started_at is not None:
            headers.append((
                "X-Repro-Queue-Ms",
                f"{(ticket.started_at - ticket.enqueued_at) * 1000.0:.2f}",
            ))
        if stats.get("degraded"):
            if self._degraded_total is not None:
                self._degraded_total.inc()
            headers.append((
                "X-Repro-Degraded",
                f"shards={stats.get('shards_failed', '?')}"
                f"/{stats.get('shards_total', '?')}",
            ))
        return headers

    def _map_failure(self, exc: BaseException):
        """(status, error, message, retry_after_ms) for one failed search."""
        if isinstance(exc, Rejection):
            return exc.status, exc.reason, str(exc), exc.retry_after_ms
        if isinstance(exc, DeadlineExceededError):
            return 504, "deadline_exceeded", str(exc), None
        if isinstance(exc, ShardUnavailableError):
            return 503, "shards_unavailable", str(exc), 1000.0
        if isinstance(exc, ResilienceError):
            return 503, "unavailable", str(exc), 1000.0
        if isinstance(exc, (ValueError, QueryParseError)):
            return 400, "bad_request", str(exc), None
        return 500, "internal_error", f"{type(exc).__name__}: {exc}", None

    # ------------------------------------------------------------------
    # Streaming pagination
    # ------------------------------------------------------------------
    async def _stream_pages(self, request: Request, writer, started: float,
                            parsed, pages: int, page_size: int,
                            algorithm: str, cost: float,
                            deadline_ms: Optional[float]) -> bool:
        """Chunked NDJSON: one diverse page per chunk, as computed.

        The whole stream is one admission ticket (priced for all pages):
        the executor thread computes pages and hands each to the event
        loop, which writes it while the next page is being computed.
        Admission never truncates a started stream — a failure mid-stream
        surfaces as a final NDJSON error line, not a silent cut.
        """
        loop = asyncio.get_running_loop()
        page_queue: asyncio.Queue = asyncio.Queue()
        serving = self._serving

        def work():
            produced = 0
            for number in range(1, pages + 1):
                result = serving.search_page(
                    parsed, page_size, page=number, page_size=page_size,
                    algorithm=algorithm)
                payload = result_payload(result, page=number,
                                         page_size=page_size)
                loop.call_soon_threadsafe(page_queue.put_nowait, payload)
                produced += 1
                if len(result) < page_size:
                    break  # results ran out; later pages are empty
            return produced

        try:
            ticket = self._admission.submit(cost, deadline_ms, work,
                                            label="/search:stream")
        except Rejection as exc:
            self._shed_total(exc.reason)
            await self._error(writer, request, exc.status, exc.reason,
                              str(exc), retry_after_ms=exc.retry_after_ms,
                              started=started, outcome="rejected")
            return request.keep_alive
        if self._admitted_total is not None:
            self._admitted_total.inc()

        chunked = ChunkedWriter(writer, extra_headers=[
            ("X-Repro-Algorithm", algorithm),
            ("X-Repro-Page-Size", str(page_size)),
        ])
        future = ticket.future
        failure: Optional[BaseException] = None
        try:
            while True:
                getter = asyncio.ensure_future(page_queue.get())
                done, _ = await asyncio.wait(
                    {getter, future}, return_when=asyncio.FIRST_COMPLETED)
                if getter in done:
                    await chunked.write_chunk(
                        json_bytes(getter.result()) + b"\n")
                    continue
                getter.cancel()
                # Work finished (or failed): flush anything still queued.
                while not page_queue.empty():
                    await chunked.write_chunk(
                        json_bytes(page_queue.get_nowait()) + b"\n")
                if not future.cancelled() and future.exception() is not None:
                    failure = future.exception()
                break
        except (ConnectionResetError, BrokenPipeError):
            return False
        if failure is not None:
            status, error, message, _ = self._map_failure(failure)
            await chunked.write_chunk(json_bytes(
                {"error": error, "status": status, "message": message}
            ) + b"\n")
            self._observe(request, 200, started, "admitted")
            await chunked.finish()
            return False  # a truncated stream must not be reused
        self._observe(request, 200, started, "admitted")
        await chunked.finish()
        return request.keep_alive
