"""Server lifecycle: configuration, connection handling, workers, drain.

:class:`ReproServer` owns the asyncio plumbing around one
:class:`~repro.serving.engine.ServingEngine`:

* ``asyncio.start_server`` accepts connections; each connection runs a
  keep-alive loop of ``read_request`` → ``Router.dispatch``.
* A fixed pool of worker tasks pulls admitted tickets off the
  :class:`~repro.server.admission.AdmissionController` and runs the
  engine work on a :class:`~concurrent.futures.ThreadPoolExecutor`
  (the engine is synchronous pure Python; the event loop must never
  block on it).
* :meth:`drain` implements graceful shutdown: stop accepting, refuse new
  work, finish every admitted request, then close connections — nothing
  is ever cut off mid-answer.  ``run_server`` wires SIGTERM/SIGINT to it
  for the CLI ``serve`` subcommand.

Everything here is standard library only, like the rest of the project.
"""

from __future__ import annotations

import asyncio
import signal
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Set, Tuple

from ..observability import MONOTONIC, Clock, get_registry
from .admission import AdmissionController, Ticket
from .protocol import (
    STREAM_LIMIT,
    ProtocolError,
    error_body,
    read_request,
    write_response,
)
from .quotas import TenantQuotas
from .routes import Router

from ..resilience.errors import DeadlineExceededError


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one server instance (all have serving-safe defaults)."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = pick a free port (tests)
    workers: int = 1                   # engine executor threads
    queue_depth: int = 64              # admission queue bound
    default_deadline_ms: float = 1000.0
    default_k: int = 10
    default_algorithm: str = "auto"
    max_k: int = 1000
    max_pages: int = 100
    quota_rate_per_s: float = 0.0      # <= 0 disables tenant quotas
    quota_burst: float = 10.0
    initial_ms_per_unit: float = 0.02  # admission EWMA seed
    rate_alpha: float = 0.2
    idle_timeout_s: float = 30.0       # keep-alive read timeout


class ReproServer:
    """The asyncio HTTP front-end over one serving engine.

    Use as::

        server = ReproServer(serving, ServerConfig(port=8080))
        await server.start()
        ...
        await server.drain()

    ``start`` and ``drain`` must be called on the same event loop; the
    engine itself runs on executor threads and is closed by the caller
    (the server borrows it, it does not own it).
    """

    def __init__(self, serving, config: Optional[ServerConfig] = None,
                 registry=None, clock: Clock = MONOTONIC):
        self._serving = serving
        self.config = config or ServerConfig()
        self._registry = registry if registry is not None else get_registry()
        self._clock = clock
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._workers: list = []
        self._connections: Set[asyncio.StreamWriter] = set()
        self._drained = asyncio.Event()
        self._drain_started = False
        self.admission = AdmissionController(
            queue_depth=self.config.queue_depth,
            workers=self.config.workers,
            initial_ms_per_unit=self.config.initial_ms_per_unit,
            rate_alpha=self.config.rate_alpha,
            clock=clock,
            registry=self._registry,
        )
        self.quotas = TenantQuotas(
            rate_per_s=self.config.quota_rate_per_s,
            burst=self.config.quota_burst,
            clock=clock,
        )
        self.router = Router(serving, self.config, self.admission,
                             self.quotas, self._registry, clock)

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind, spawn workers, start accepting; returns (host, port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-http")
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker(), name=f"repro-http-worker-{i}")
            for i in range(self.config.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=STREAM_LIMIT)
        sock = self._server.sockets[0]
        self.address: Tuple[str, int] = sock.getsockname()[:2]
        return self.address

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), self.config.idle_timeout_s)
                except asyncio.TimeoutError:
                    break
                except ProtocolError as exc:
                    await write_response(
                        writer, exc.status,
                        error_body(exc.status, "protocol_error", str(exc)),
                        keep_alive=False)
                    break
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                if request is None:
                    break  # clean EOF between requests
                try:
                    keep_alive = await self.router.dispatch(request, writer)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # last-resort 500; never hang up mute
                    try:
                        await write_response(
                            writer, 500,
                            error_body(500, "internal_error",
                                       f"{type(exc).__name__}: {exc}"),
                            keep_alive=False)
                    except Exception:
                        pass
                    break
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        """Pull admitted tickets and run them on the engine executor."""
        loop = asyncio.get_running_loop()
        while True:
            ticket = await self.admission.next_ticket()
            try:
                await self._execute(loop, ticket)
            except asyncio.CancelledError:
                # Worker cancelled mid-ticket (forced shutdown): answer the
                # caller rather than leaving the future forever pending.
                if not ticket.future.done():
                    ticket.future.set_exception(
                        DeadlineExceededError("server shut down mid-request"))
                raise

    async def _execute(self, loop, ticket: Ticket) -> None:
        now = self._clock()
        if ticket.deadline_expired(now):
            # Expired while queued: refuse without touching the engine and
            # without polluting the EWMA (no service happened).
            if not ticket.future.done():
                ticket.future.set_exception(DeadlineExceededError(
                    f"deadline ({ticket.deadline_ms:g} ms) expired after "
                    f"{ticket.queue_ms(now):.1f} ms in queue"))
            self.admission.finish(ticket, -1.0)
            return
        started = self._clock()
        try:
            result = await loop.run_in_executor(self._executor, ticket.work)
        except BaseException as exc:  # noqa: BLE001 — forwarded to caller
            if not ticket.future.done():
                ticket.future.set_exception(exc)
            else:
                _ = exc  # future already answered (client gone)
            self.admission.finish(ticket, (self._clock() - started) * 1000.0)
            return
        if not ticket.future.done():
            ticket.future.set_result(result)
        self.admission.finish(ticket, (self._clock() - started) * 1000.0)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    async def drain(self, timeout_s: Optional[float] = None) -> None:
        """Graceful shutdown: refuse new work, finish admitted requests.

        Idempotent and safe to call concurrently (second caller awaits the
        first drain).  Order matters: stop accepting sockets, flip
        admission/router to draining (new /search answers 503), wait for
        the queue and in-flight work to empty, then tear down workers,
        executor, and any idle keep-alive connections.
        """
        if self._drain_started:
            await self._drained.wait()
            return
        self._drain_started = True
        self.admission.start_draining()
        self.router.set_draining()
        if self._server is not None:
            self._server.close()
            # Deliberately no wait_closed(): on newer asyncio it waits for
            # every connection handler, and idle keep-alive connections
            # would stall drain; we close them explicitly below.
        try:
            if timeout_s is not None:
                await asyncio.wait_for(self.admission.wait_idle(), timeout_s)
            else:
                await self.admission.wait_idle()
        except asyncio.TimeoutError:
            pass  # forced drain — workers are cancelled below
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:
                pass
        self._connections.clear()
        self._drained.set()


def run_server(serving, config: Optional[ServerConfig] = None,
               registry=None, announce=print) -> int:
    """Run a server until SIGTERM/SIGINT, then drain; returns exit code 0.

    The blocking entry point behind ``python -m repro serve``.  The engine
    is borrowed: the caller closes it after this returns (by then drain
    has finished every admitted request, so close is safe).
    """

    async def main() -> int:
        server = ReproServer(serving, config, registry=registry)
        host, port = await server.start()
        announce(f"repro-serve listening on http://{host}:{port}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover — non-Unix
                pass
        await stop.wait()
        announce("repro-serve draining (finishing admitted requests)")
        await server.drain()
        announce("repro-serve drained; bye")
        return 0

    return asyncio.run(main())
