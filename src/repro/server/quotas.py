"""Per-tenant token-bucket quotas for the HTTP front-end.

Admission control (:mod:`repro.server.admission`) protects the *engine*
from aggregate overload; quotas protect *tenants from each other* — one
chatty caller must not starve the rest of the queue.  Each tenant (the
``X-Repro-Tenant`` header; unnamed callers share one bucket) gets a token
bucket refilled at ``rate_per_s`` with a ``burst`` ceiling.  A request
costs one token; an empty bucket answers ``429`` with a ``Retry-After``
telling the caller exactly when the next token lands.

The board is sized: least-recently-seen tenants are evicted once
``max_tenants`` distinct keys have been seen, so a tenant-id-spraying
client cannot grow memory without bound (an evicted tenant simply starts
from a full bucket again — strictly more permissive, never less).

Quota checks happen on the event loop only, so there is no locking; the
clock is injectable (:class:`repro.observability.clock.FakeClock` in
tests) like every other time source in the project.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..observability import MONOTONIC, Clock

DEFAULT_MAX_TENANTS = 1024

#: The bucket every request without an ``X-Repro-Tenant`` header draws from.
ANONYMOUS_TENANT = "anonymous"


class TokenBucket:
    """One tenant's budget: ``burst`` capacity refilled at ``rate_per_s``."""

    __slots__ = ("rate_per_s", "burst", "tokens", "stamp")

    def __init__(self, rate_per_s: float, burst: float, now: float):
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def take(self, now: float) -> float:
        """Spend one token; 0.0 when granted, else milliseconds until one
        would be available (the ``Retry-After`` hint)."""
        elapsed = max(0.0, now - self.stamp)
        self.stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate_per_s)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        if self.rate_per_s <= 0.0:
            return math.inf
        return (1.0 - self.tokens) / self.rate_per_s * 1000.0


class TenantQuotas:
    """The per-tenant bucket board (LRU-bounded, event-loop confined).

    ``rate_per_s <= 0`` disables quotas entirely: :meth:`check` always
    grants, and no per-tenant state is kept.
    """

    def __init__(
        self,
        rate_per_s: float = 0.0,
        burst: float = 10.0,
        clock: Clock = MONOTONIC,
        max_tenants: int = DEFAULT_MAX_TENANTS,
    ):
        if burst < 1.0 and rate_per_s > 0.0:
            raise ValueError("burst must be >= 1 (a request costs one token)")
        if max_tenants < 1:
            raise ValueError("max_tenants must be positive")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._max_tenants = max_tenants
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return self.rate_per_s > 0.0

    def check(self, tenant: Optional[str]) -> float:
        """Charge one request to ``tenant``; 0.0 when admitted, else the
        retry-after hint in milliseconds."""
        if not self.enabled:
            return 0.0
        key = tenant or ANONYMOUS_TENANT
        now = self._clock()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(self.rate_per_s, self.burst, now)
            self._buckets[key] = bucket
            while len(self._buckets) > self._max_tenants:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(key)
        retry_after_ms = bucket.take(now)
        if retry_after_ms > 0.0:
            self.rejected += 1
        return retry_after_ms

    def snapshot(self) -> Dict[str, float]:
        """Current token levels by tenant (diagnostics/tests)."""
        now = self._clock()
        levels = {}
        for tenant, bucket in self._buckets.items():
            elapsed = max(0.0, now - bucket.stamp)
            levels[tenant] = min(
                bucket.burst, bucket.tokens + elapsed * bucket.rate_per_s
            )
        return levels

    def __len__(self) -> int:
        return len(self._buckets)
