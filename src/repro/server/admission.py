"""Deadline-aware admission control and load shedding for the HTTP front-end.

The serving engine is CPU-bound pure Python: under overload, an unbounded
queue turns every request into a deadline miss (queue collapse — everyone
waits, everyone times out, throughput goes to zero useful work).  The
controller here keeps the queue *short and honest* instead:

* **Pricing.**  Every request is priced *before* admission with the
  planner's cost model (PR 7): the same seek-unit estimate that picks the
  cheapest algorithm also tells the queue how much work it is being asked
  to hold.  Theorem 2 is what makes this workable — probe answers any
  admitted query in at most ``2k+1`` probes regardless of how many rows
  match, so per-query cost is predictable enough to schedule against.
* **Deadline-aware admission.**  The controller tracks an EWMA of observed
  milliseconds per seek unit.  At arrival, the projected wait (work queued
  and in flight, over the worker count) plus the request's own estimated
  service time is compared against the request's deadline: a request that
  cannot finish in time is rejected *on arrival* with ``429`` and a
  ``Retry-After`` — in O(1), before it costs the engine anything.
* **Load shedding.**  When the queue is full, the controller sheds
  **cheapest-to-reject first**: a queued request whose deadline has already
  expired is shed before anything else (rejecting it costs nothing — it
  can no longer succeed), otherwise the single most expensive request in
  ``queued ∪ {newcomer}`` is shed (one rejection frees the most queue
  capacity, so sustained overload is absorbed with the fewest rejections).
  A request that has *started executing* is never shed — answers are never
  truncated mid-execution, so every admitted query still gets the full
  Definitions 1–2 answer (docs/paper_mapping.md).

The controller is event-loop confined: every method is called from the
server's asyncio loop (handlers, workers, drain), so there are no locks —
the engine executor threads never touch it.
"""

from __future__ import annotations

import asyncio
import math
from collections import deque
from typing import Callable, Deque, Optional, Union

from ..observability import MONOTONIC, Clock

#: Admission rejection reasons (the ``reason`` label on the shed counter).
REASON_DEADLINE = "deadline_unmeetable"
REASON_OVERLOAD = "overload"
REASON_SHED = "shed_overload"
REASON_DRAINING = "draining"


class Rejection(Exception):
    """A request the front-end refused (before any execution).

    Carries the wire mapping: ``status`` (429 for per-request reasons the
    caller can fix by retrying later or relaxing the deadline, 503 for
    server-wide overload/drain) plus the ``Retry-After`` hint.
    """

    def __init__(self, status: int, reason: str, retry_after_ms: float,
                 message: Optional[str] = None):
        self.status = status
        self.reason = reason
        self.retry_after_ms = retry_after_ms
        super().__init__(
            message or f"request rejected ({reason}); "
                       f"retry after {retry_after_ms:.0f} ms"
        )


class Ticket:
    """One admitted request's place in line.

    ``work`` runs on an executor thread once a worker picks the ticket up;
    ``future`` resolves with the work's outcome (or a :class:`Rejection`
    if the ticket is shed while still queued).
    """

    __slots__ = ("cost", "deadline_ms", "enqueued_at", "started_at",
                 "state", "work", "future", "label")

    def __init__(self, cost: float, deadline_ms: Optional[float],
                 enqueued_at: float, work: Callable, label: str):
        self.cost = cost
        self.deadline_ms = deadline_ms
        self.enqueued_at = enqueued_at
        self.started_at: Optional[float] = None
        self.state = "queued"          # queued -> running | shed
        self.work = work
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.label = label

    def queue_ms(self, now: float) -> float:
        return (now - self.enqueued_at) * 1000.0

    def deadline_expired(self, now: float) -> bool:
        return (self.deadline_ms is not None
                and self.queue_ms(now) >= self.deadline_ms)


class AdmissionController:
    """Bounded request queue with deadline-aware admission (see module doc).

    The **seek unit** is the planner's currency (one positioned posting
    lookup); ``ms_per_unit`` is learned online from completed requests via
    EWMA, seeded with ``initial_ms_per_unit`` so the very first requests
    have a sane projection.
    """

    def __init__(
        self,
        queue_depth: int = 64,
        workers: int = 1,
        initial_ms_per_unit: float = 0.02,
        rate_alpha: float = 0.2,
        clock: Clock = MONOTONIC,
        registry=None,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        if not 0.0 < rate_alpha <= 1.0:
            raise ValueError("rate_alpha must be in (0, 1]")
        if initial_ms_per_unit <= 0.0:
            raise ValueError("initial_ms_per_unit must be positive")
        self.queue_depth = queue_depth
        self.workers = workers
        self.ms_per_unit = initial_ms_per_unit
        self._alpha = rate_alpha
        self._clock = clock
        self._queue: Deque[Ticket] = deque()
        self._queued_units = 0.0
        self._inflight = 0
        self._inflight_units = 0.0
        self._available = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        # Lifetime tallies (exact; the registry gauges mirror them).
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.completed = 0
        self._registry = registry
        self._depth_gauge = None
        self._inflight_gauge = None
        if registry is not None and registry.enabled:
            self._depth_gauge = registry.gauge(
                "repro_http_queue_depth", "Requests waiting for a worker")
            self._inflight_gauge = registry.gauge(
                "repro_http_inflight", "Requests executing on the engine")

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def projected_wait_ms(self, extra_units: float = 0.0) -> float:
        """Estimated queue wait for work arriving now, in milliseconds."""
        pending = self._inflight_units + self._queued_units + extra_units
        return pending * self.ms_per_unit / self.workers

    def estimated_service_ms(self, cost: float) -> float:
        return cost * self.ms_per_unit

    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def inflight(self) -> int:
        return self._inflight

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, cost: float, deadline_ms: Optional[float],
               work: Callable, label: str = "") -> Ticket:
        """Admit one priced request, or raise :class:`Rejection`.

        Admission order of battle: drain check, deadline feasibility,
        queue capacity (with cheapest-to-reject shedding).  All O(queue)
        worst case, no engine work — the fast-reject property the
        overload benchmark measures.
        """
        if self._draining:
            self.rejected += 1
            raise Rejection(503, REASON_DRAINING, 1000.0,
                            "server is draining; connection will close")
        wait_ms = self.projected_wait_ms()
        service_ms = self.estimated_service_ms(cost)
        if deadline_ms is not None and wait_ms + service_ms > deadline_ms:
            self.rejected += 1
            raise Rejection(
                429, REASON_DEADLINE,
                max(1.0, wait_ms + service_ms - deadline_ms),
                f"projected wait {wait_ms:.1f} ms + service "
                f"{service_ms:.1f} ms exceeds deadline {deadline_ms:g} ms",
            )
        now = self._clock()
        if len(self._queue) >= self.queue_depth:
            victim = self._pick_victim(cost)
            if victim is None:
                # The newcomer is the cheapest to reject.
                self.rejected += 1
                raise Rejection(503, REASON_OVERLOAD, max(1.0, wait_ms),
                                f"queue full ({self.queue_depth} deep)")
            self._shed(victim, now)
        ticket = Ticket(cost, deadline_ms, now, work, label)
        self._queue.append(ticket)
        self._queued_units += cost
        self.admitted += 1
        self._idle.clear()
        self._available.set()
        self._publish_depth()
        return ticket

    def _pick_victim(self, newcomer_cost: float) -> Optional[Ticket]:
        """The queued ticket to shed, or ``None`` to reject the newcomer.

        Cheapest-to-reject first: a queued request whose deadline already
        expired is a free rejection (it cannot succeed); otherwise the
        most expensive request across ``queued ∪ {newcomer}`` goes —
        fewest rejections per unit of load shed.  Running tickets are
        never candidates.
        """
        now = self._clock()
        costliest: Optional[Ticket] = None
        for ticket in self._queue:
            if ticket.state != "queued":
                continue
            if ticket.deadline_expired(now):
                return ticket
            if costliest is None or ticket.cost > costliest.cost:
                costliest = ticket
        if costliest is not None and costliest.cost > newcomer_cost:
            return costliest
        return None

    def _shed(self, ticket: Ticket, now: float) -> None:
        ticket.state = "shed"
        self._queued_units -= ticket.cost
        self.shed += 1
        if not ticket.future.done():
            ticket.future.set_exception(Rejection(
                503, REASON_SHED,
                max(1.0, self.projected_wait_ms()),
                "shed under overload while queued",
            ))
        self._publish_depth()
        self._check_idle()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    async def next_ticket(self) -> Ticket:
        """Block until a queued (non-shed) ticket is available; claim it."""
        while True:
            while self._queue:
                ticket = self._queue.popleft()
                if ticket.state != "queued":
                    continue  # shed while waiting — already answered
                ticket.state = "running"
                ticket.started_at = self._clock()
                self._queued_units -= ticket.cost
                self._inflight += 1
                self._inflight_units += ticket.cost
                self._publish_depth()
                return ticket
            self._available.clear()
            await self._available.wait()

    def finish(self, ticket: Ticket, service_ms: float) -> None:
        """Record one execution's end; negative ``service_ms`` skips the
        rate update (the worker refused to execute an expired ticket)."""
        self._inflight -= 1
        self._inflight_units -= ticket.cost
        self.completed += 1
        if service_ms >= 0.0 and ticket.cost > 0.0:
            sample = service_ms / ticket.cost
            self.ms_per_unit = (
                self._alpha * sample + (1.0 - self._alpha) * self.ms_per_unit
            )
        self._publish_depth()
        self._check_idle()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def start_draining(self) -> None:
        """Refuse all new work; already-admitted tickets still execute."""
        self._draining = True
        self._check_idle()

    @property
    def draining(self) -> bool:
        return self._draining

    async def wait_idle(self) -> None:
        """Resolve once nothing is queued or in flight (drain barrier)."""
        await self._idle.wait()

    def _check_idle(self) -> None:
        if self._inflight == 0 and not any(
            t.state == "queued" for t in self._queue
        ):
            self._idle.set()

    def _publish_depth(self) -> None:
        if self._depth_gauge is not None:
            self._depth_gauge.set(
                sum(1 for t in self._queue if t.state == "queued"))
            self._inflight_gauge.set(self._inflight)
