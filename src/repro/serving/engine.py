"""The serving front-end: a cached engine plus batched workload execution.

:class:`ServingEngine` wraps a :class:`~repro.core.engine.DiversityEngine`
with a :class:`~repro.serving.cache.ServingCache` and adds
:meth:`ServingEngine.search_many`, which drives a whole workload (a list of
query strings or :class:`Query` trees) through the cache — sequentially or
on a thread pool — and reports aggregate timings and exact cache counters.
This is the layer a web tier would call: skewed traffic hits the caches,
mutations bump the index epoch, stale entries die lazily.
"""

from __future__ import annotations

import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..core.engine import DiversityEngine
from ..core.result import DiverseResult
from ..observability import MONOTONIC, Clock, get_registry, span
from ..query.query import Query
from .cache import CacheStats, ServingCache


@dataclass
class BatchReport:
    """Outcome of one :meth:`ServingEngine.search_many` run."""

    results: List[DiverseResult]
    total_seconds: float
    queries: int
    k: int
    algorithm: str
    scored: bool
    threads: int                     # 0 = sequential execution
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_ms(self) -> float:
        if self.queries == 0:
            return 0.0
        return 1000.0 * self.total_seconds / self.queries

    @property
    def queries_per_second(self) -> float:
        if self.total_seconds <= 0.0:
            return 0.0
        return self.queries / self.total_seconds

    @property
    def hit_ratio(self) -> float:
        """Result-cache hit ratio within this batch alone."""
        lookups = self.cache_stats.get("hits", 0) + self.cache_stats.get("misses", 0)
        if lookups == 0:
            return 0.0
        return self.cache_stats.get("hits", 0) / lookups


def register_cache_collector(registry, serving: "ServingEngine"):
    """Publish the serving cache's counters/sizes as gauges at export time.

    The collector holds the engine through a weakref: once the engine is
    garbage-collected the callback unregisters itself, so short-lived
    engines never pin themselves to the process registry.
    """
    if registry is None or not registry.enabled:
        return None
    ref = weakref.ref(serving)

    def collect() -> None:
        engine = ref()
        if engine is None:
            registry.unregister_collector(collect)
            return
        stats = engine.cache.stats_snapshot()
        gauge = registry.gauge
        gauge("repro_cache_hits", "Result-cache hits").set(stats.hits)
        gauge("repro_cache_misses", "Result-cache misses").set(stats.misses)
        gauge("repro_cache_evictions",
              "Entries dropped (LRU pressure + epoch invalidation)"
              ).set(stats.evictions)
        gauge("repro_cache_epoch_invalidations",
              "Entries dropped because the index epoch moved"
              ).set(stats.epoch_invalidations)
        gauge("repro_cache_plan_hits", "Plan-cache hits").set(stats.plan_hits)
        gauge("repro_cache_plan_misses", "Plan-cache misses").set(stats.plan_misses)
        gauge("repro_cache_plan_revalidations",
              "Plans re-ordered after an epoch change").set(stats.plan_revalidations)
        gauge("repro_cache_decision_hits",
              "auto decisions served from the plan cache").set(stats.decision_hits)
        gauge("repro_cache_decision_misses",
              "auto decisions computed fresh").set(stats.decision_misses)
        gauge("repro_cache_decision_replans",
              "auto decisions recomputed after an epoch change"
              ).set(stats.decision_replans)
        sizes = engine.cache.sizes()
        gauge("repro_cache_entries", "Live cache entries",
              kind="plans").set(sizes["plans"])
        gauge("repro_cache_entries", "Live cache entries",
              kind="results").set(sizes["results"])

    registry.register_collector(collect)
    return (registry, collect)


def _stats_delta(after: CacheStats, before: CacheStats) -> Dict[str, int]:
    return {
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
        "evictions": after.evictions - before.evictions,
        "epoch_invalidations": after.epoch_invalidations - before.epoch_invalidations,
        "plan_hits": after.plan_hits - before.plan_hits,
        "plan_misses": after.plan_misses - before.plan_misses,
        "plan_revalidations": after.plan_revalidations - before.plan_revalidations,
        "decision_hits": after.decision_hits - before.decision_hits,
        "decision_misses": after.decision_misses - before.decision_misses,
        "decision_replans": after.decision_replans - before.decision_replans,
    }


class ServingEngine:
    """A :class:`DiversityEngine` fronted by plan + result caches.

    ``search``/``insert``/``delete`` delegate to the wrapped engine (with
    the cache attached, so repeated queries short-circuit);
    :meth:`search_many` runs whole workloads and reports throughput.  The
    batch thread pool is persistent across calls — :meth:`close` (or use
    as a context manager) releases it along with the wrapped engine's own
    resources.
    """

    def __init__(
        self,
        engine: DiversityEngine,
        cache: Optional[ServingCache] = None,
        clock: Clock = MONOTONIC,
        registry=None,
    ):
        self._engine = engine
        self._cache = cache if cache is not None else ServingCache()
        self._clock = clock
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = 0
        self._close_lock = threading.Lock()
        self._closed = False
        engine.attach_cache(self._cache)
        self._collector = register_cache_collector(
            registry if registry is not None else get_registry(), self
        )

    @classmethod
    def from_relation(
        cls,
        relation,
        ordering,
        backend: str = "array",
        shards: int = 1,
        router="hash",
        workers: int = 0,
        worker_mode: str = "thread",
        policy=None,
        data_dir=None,
        snapshot_every: int = 0,
        fsync_every: int = 1,
        clock: Clock = MONOTONIC,
        replicas: int = 1,
        hedge_ms=None,
        **cache_options,
    ) -> "ServingEngine":
        """Build a serving engine; ``shards > 1`` builds a sharded deployment.

        The sharded engine keeps per-shard mutation epochs (``insert``/
        ``delete`` route to one shard and bump only its counter); the
        caches key on the summed epoch, so the PR 1 invalidation contract
        holds unchanged.  ``workers`` sizes the scatter-gather thread pool;
        ``policy`` (a :class:`~repro.resilience.ResiliencePolicy`) sets the
        deadline/retry/breaker budgets of the sharded fan-out.

        ``data_dir`` makes the deployment crash-safe: the built index is
        snapshotted there and every subsequent mutation is write-ahead-
        logged (one WAL per shard) before it is applied.  A positive
        ``snapshot_every`` re-snapshots (and truncates the log) whenever a
        store's log reaches that many records; ``fsync_every`` batches WAL
        fsyncs (1 = every record).  Use :meth:`recover` to reopen the
        directory after a crash or restart.

        ``replicas`` > 1 (sharded deployments only) grows every shard to
        that many bit-identical copies behind automatic failover —
        *after* durability wrapping, so only replica 0 of each shard owns
        the WAL and the other copies bootstrap from its snapshot + log;
        ``hedge_ms`` additionally arms hedged reads
        (:mod:`repro.replication`).
        """
        if replicas > 1 and shards <= 1:
            raise ValueError("replication needs a sharded deployment "
                             "(shards > 1)")
        if replicas > 1:
            from ..parallel import (
                PROCESS_MODES,
                UnsupportedWorkerModeError,
                resolve_worker_mode,
            )

            if resolve_worker_mode(worker_mode) in PROCESS_MODES:
                raise UnsupportedWorkerModeError(
                    f"worker_mode={worker_mode!r} cannot serve a replicated "
                    f"deployment (replicas={replicas}): failover and hedging "
                    f"are coordinator-side state that worker processes "
                    f"cannot mirror; use worker_mode='thread'"
                )
        if shards > 1:
            from ..sharding import ShardedEngine

            engine = ShardedEngine.from_relation(
                relation, ordering, shards=shards, backend=backend,
                router=router, workers=workers, worker_mode=worker_mode,
                policy=policy, clock=clock,
            )
            if data_dir is not None:
                from ..durability import create_sharded_store

                create_sharded_store(
                    engine.index, data_dir,
                    snapshot_every=snapshot_every, fsync_every=fsync_every,
                    replicas=replicas,
                )
            if replicas > 1:
                from ..replication import HedgePolicy

                hedge = (HedgePolicy(delay_ms=hedge_ms)
                         if hedge_ms is not None else None)
                engine.index.replicate(replicas, policy=policy, clock=clock,
                                       hedge=hedge)
        else:
            engine = DiversityEngine.from_relation(relation, ordering, backend=backend)
            if data_dir is not None:
                from ..durability import create_store

                engine._index = create_store(
                    engine.index, data_dir,
                    snapshot_every=snapshot_every, fsync_every=fsync_every,
                )
        return cls(engine, ServingCache(**cache_options) if cache_options else None,
                   clock=clock)

    @classmethod
    def recover(
        cls,
        data_dir,
        workers: int = 0,
        worker_mode: str = "thread",
        policy=None,
        snapshot_every: Optional[int] = None,
        fsync_every: Optional[int] = None,
        cache: Optional[ServingCache] = None,
        replicas: Optional[int] = None,
        hedge_ms=None,
        **cache_options,
    ) -> "ServingEngine":
        """Resurrect a serving engine from a durable data directory.

        Dispatches on the directory's manifest (single-index or sharded),
        replays each WAL over its snapshot, and reopens the logs for
        writing.  The recovered index lands on the exact epoch the crashed
        process had acknowledged, so passing the previous process's
        ``cache`` (e.g. an external cache tier) keeps its warm entries
        valid — epoch-keyed invalidation carries across the restart.

        ``replicas=None`` re-replicates a sharded deployment to the factor
        recorded in its manifest (replica copies are never persisted —
        each is re-bootstrapped from its shard's snapshot + WAL); pass an
        explicit count to grow or shrink the factor across the restart.
        """
        from ..durability import DurableIndex, recover

        recovered = recover(data_dir, snapshot_every=snapshot_every,
                            fsync_every=fsync_every)
        if isinstance(recovered, DurableIndex):
            engine = DiversityEngine(recovered)
        else:
            from ..sharding import ShardedEngine

            if replicas is None:
                from ..durability.store import read_manifest

                replicas = int(read_manifest(data_dir).get("replicas", 1))
            if replicas > 1:
                from ..parallel import (
                    PROCESS_MODES,
                    UnsupportedWorkerModeError,
                    resolve_worker_mode,
                )

                if resolve_worker_mode(worker_mode) in PROCESS_MODES:
                    raise UnsupportedWorkerModeError(
                        f"worker_mode={worker_mode!r} cannot serve a "
                        f"replicated deployment (replicas={replicas}); use "
                        f"worker_mode='thread'"
                    )
                from ..replication import HedgePolicy

                hedge = (HedgePolicy(delay_ms=hedge_ms)
                         if hedge_ms is not None else None)
                recovered.replicate(replicas, policy=policy, hedge=hedge)
            engine = ShardedEngine(recovered, workers=workers,
                                   worker_mode=worker_mode, policy=policy)
        if cache is None and cache_options:
            cache = ServingCache(**cache_options)
        return cls(engine, cache)

    @property
    def engine(self) -> DiversityEngine:
        return self._engine

    @property
    def cache(self) -> ServingCache:
        return self._cache

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def epoch(self) -> int:
        return self._engine.epoch

    # ------------------------------------------------------------------
    # Single-call surface (delegates, cache-mediated)
    # ------------------------------------------------------------------
    def search(self, query, k: int, algorithm: str = "probe", scored: bool = False,
               optimize: bool = True) -> DiverseResult:
        return self._engine.search(query, k, algorithm=algorithm, scored=scored,
                                   optimize=optimize)

    def search_page(self, query, k: int = 10, page: int = 1,
                    page_size: Optional[int] = None,
                    algorithm: str = "probe") -> DiverseResult:
        """Diverse result page ``page`` (1-based), cache-mediated.

        Pages follow :class:`~repro.core.pagination.DiversePaginator`
        semantics: page 1 is the diverse top-``page_size`` answer, page 2
        is the diverse top-``page_size`` over everything not yet shown,
        and so on — pages never overlap.  ``page_size`` defaults to ``k``.
        Each page is cached independently under the plan's canonical key,
        so a cache hit returns bit-identical pages until the index epoch
        moves; degraded pages are never cached (the PR 3 invariant).
        Unscored only, ``algorithm`` in ``("probe", "onepass")`` — the
        drivers that run over an exclusion view of the merged list.
        """
        if page < 1:
            raise ValueError("page must be >= 1")
        size = page_size if page_size is not None else k
        if size < 1:
            raise ValueError("page_size must be >= 1")
        return self._cache.search_page(self._engine, query, page, size,
                                       algorithm)

    def insert(self, row) -> int:
        return self._engine.insert(row)

    def delete(self, rid: int) -> bool:
        return self._engine.delete(rid)

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Lifecycle (persistent batch pool)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the batch pool down and close the wrapped engine.

        Idempotent and safe to call concurrently — e.g. from a signal
        handler while another thread is mid-``close`` or mid-
        ``search_many`` (the server's drain path).  The first caller does
        the teardown; everyone else returns immediately.  Durable stores
        attached to the index (single or per-shard) are closed too,
        syncing and releasing their WAL file handles.

        Concurrent callers serialise on the close lock: the winner tears
        down, later callers block until teardown finishes and then
        return — so "close returned" always means "fully closed"."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            collector, self._collector = self._collector, None
            if collector is not None:
                registry, collect = collector
                # Final flush: materialise the terminal cache stats as
                # gauges, so a post-close export still sees this engine's
                # lifetime totals even if nothing exported while it was
                # open.
                collect()
                registry.unregister_collector(collect)
            pool, self._pool = self._pool, None
            self._pool_size = 0
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            self._engine.close()
            index = self._engine.index
            stores = getattr(index, "shards", [index])
            for store in stores:
                closer = getattr(store, "close", None)
                if callable(closer):
                    closer()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self, threads: int) -> ThreadPoolExecutor:
        """The persistent batch executor, resized only when ``threads`` changes."""
        if self._pool is not None and self._pool_size != threads:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-serve"
            )
            self._pool_size = threads
        return self._pool

    # ------------------------------------------------------------------
    # Batched workload execution
    # ------------------------------------------------------------------
    def search_many(
        self,
        queries: Sequence[Union[Query, str]],
        k: int = 10,
        algorithm: str = "probe",
        scored: bool = False,
        optimize: bool = True,
        threads: int = 0,
    ) -> BatchReport:
        """Run a whole workload through the cache, preserving input order.

        ``threads=0`` executes sequentially (the default and, for this
        CPU-bound pure-python engine, usually the fastest); ``threads>=1``
        uses the persistent batch pool — the caches are thread-safe, and
        concurrent misses of the same query are benign (both compute the
        same epoch-stamped answer).  If any query fails (e.g. a sharded
        engine raising :class:`~repro.resilience.errors
        .ShardUnavailableError`), the remaining futures are cancelled or
        drained before the typed error propagates — the pool is left
        clean and reusable, never holding half-completed work.  Timing
        covers the entire batch wall clock; ``cache_stats`` is the exact
        counter delta of this batch.
        """
        if threads < 0:
            raise ValueError("threads must be >= 0")
        # Locked snapshots: field-by-field reads of a cache being mutated by
        # pool workers would tear, skewing the reported batch delta.
        before = self._cache.stats_snapshot()
        queries = list(queries)
        with span("serve.batch", queries=len(queries), k=k,
                  algorithm=algorithm, threads=threads):
            started = self._clock()
            if threads == 0:
                results = [
                    self._engine.search(query, k, algorithm=algorithm,
                                        scored=scored, optimize=optimize)
                    for query in queries
                ]
            else:
                pool = self._ensure_pool(threads)
                futures = [
                    pool.submit(
                        self._engine.search, query, k, algorithm=algorithm,
                        scored=scored, optimize=optimize,
                    )
                    for query in queries
                ]
                try:
                    results = [future.result() for future in futures]
                except BaseException:
                    # One query failed: stop what has not started, wait out
                    # what has, then surface the (typed) error with the pool
                    # intact.
                    for future in futures:
                        future.cancel()
                    for future in futures:
                        if not future.cancelled():
                            future.exception()  # drain without re-raising
                    raise
            total = self._clock() - started
        return BatchReport(
            results=results,
            total_seconds=total,
            queries=len(queries),
            k=k,
            algorithm=algorithm,
            scored=scored,
            threads=threads,
            cache_stats=_stats_delta(self._cache.stats_snapshot(), before),
        )
