"""Serving-layer caches: query plans and diverse results.

Interactive shopping traffic is highly skewed — the same query strings
arrive over and over (cf. Capannini et al., *Efficient Diversification of
Web Search Results*, which treats caching of the diversification pipeline
as a first-class concern).  The engine alone re-parses, re-normalises,
re-orders and re-executes every call; this module amortises all four:

* :class:`PlanCache` memoises the plan step (parse -> normalise ->
  leapfrog ordering).  Parsing and normalisation never go stale; the
  leapfrog ordering depends on posting-list statistics, so a plan compiled
  under an older index epoch is *revalidated* (re-ordered only) on its next
  hit instead of being rebuilt from scratch.
* :class:`ResultCache` is an LRU over full :class:`DiverseResult` answers,
  keyed by ``(canonical query, k, algorithm, scored, optimize)`` and
  stamped with the index epoch at execution time.  ``insert``/``delete``
  bump the epoch, so stale entries are rejected lazily on lookup — no full
  flush, no eager scanning.
* :class:`ServingCache` combines both behind one thread-safe ``search``
  call and keeps exact counters (:class:`CacheStats`) that surface in
  ``DiverseResult.stats``.

The caches never change answers: a cached result is bit-identical to what
a cache-free engine would return for the same index state (the property
tests interleave mutations with searches to prove it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple, Union

from ..core.result import DiverseResult
from ..query.query import Query
from ..query.rewrite import to_query_string

DEFAULT_PLAN_CAPACITY = 1024
DEFAULT_RESULT_CAPACITY = 4096


@dataclass
class CacheStats:
    """Exact serving-cache counters (monotone, cumulative)."""

    hits: int = 0                   # result-cache hits (fresh epoch)
    misses: int = 0                 # result-cache misses (incl. invalidations)
    evictions: int = 0              # result entries dropped for ANY reason:
                                    #   LRU pressure or epoch invalidation,
                                    #   each dropped entry counted exactly once
    epoch_invalidations: int = 0    # stale result entries rejected on lookup
                                    #   (a subset of both misses and evictions)
    plan_hits: int = 0              # plan served fully from cache
    plan_misses: int = 0            # plan compiled from scratch
    plan_revalidations: int = 0     # plan re-ordered after an epoch bump
    plan_evictions: int = 0         # plan entries dropped by LRU pressure
    decision_hits: int = 0          # auto decision served from cache
    decision_misses: int = 0        # auto decision computed fresh
    decision_replans: int = 0       # auto decision recomputed: epoch moved
                                    #   (the PR 7 invalidation contract:
                                    #   mutated statistics force a re-plan)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Result-cache hit ratio over all lookups so far (0.0 when idle)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_stats_dict(self) -> Dict[str, int]:
        """The ``cache_*`` entries merged into ``DiverseResult.stats``."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_epoch_invalidations": self.epoch_invalidations,
            "cache_plan_hits": self.plan_hits,
            "cache_plan_misses": self.plan_misses,
            "cache_plan_revalidations": self.plan_revalidations,
            "cache_decision_hits": self.decision_hits,
            "cache_decision_misses": self.decision_misses,
            "cache_decision_replans": self.decision_replans,
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            epoch_invalidations=self.epoch_invalidations,
            plan_hits=self.plan_hits,
            plan_misses=self.plan_misses,
            plan_revalidations=self.plan_revalidations,
            plan_evictions=self.plan_evictions,
            decision_hits=self.decision_hits,
            decision_misses=self.decision_misses,
            decision_replans=self.decision_replans,
        )


class _LRU:
    """A small capacity-bounded LRU map (recency = access order)."""

    __slots__ = ("_capacity", "_entries", "evictions")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        entries = self._entries
        if key in entries:
            entries[key] = value
            entries.move_to_end(key)
            return
        if len(entries) >= self._capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = value

    def discard(self, key: Hashable) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()


class _PlanEntry:
    """One memoised plan: the epoch-independent base + the ordered form."""

    __slots__ = ("base", "ordered", "canonical", "epoch", "decisions")

    def __init__(self, base: Query, ordered: Query, canonical: str, epoch: int):
        self.base = base            # parsed (+ normalised when applicable)
        self.ordered = ordered      # base after order_for_leapfrog
        self.canonical = canonical  # canonical text of the *base* plan
        self.epoch = epoch          # index epoch the ordering was computed at
        # ``auto`` decisions for this plan, keyed ``(k, scored)``; each
        # PlanDecision carries its own epoch stamp, so a decision computed
        # under older statistics is replaced on its next lookup (mutations
        # move selectivities, which can flip the cheapest algorithm).
        self.decisions: Dict[Tuple[int, bool], Any] = {}


class PlanCache:
    """Memoises ``DiversityEngine.prepare`` per canonical query.

    Keys accept raw query strings (the common serving case — no parse
    needed to hit) and :class:`Query` objects (hashable trees).  Parsing
    and normalisation are epoch-independent and cached forever (modulo
    LRU); the leapfrog ordering is epoch-stamped and lazily recomputed
    from the cached base plan when the index has mutated since.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CAPACITY):
        self._lru = _LRU(capacity)

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    @staticmethod
    def key(query: Union[Query, str], scored: bool, optimize: bool) -> Hashable:
        return (query, scored, optimize)

    def lookup(
        self, engine, query: Union[Query, str], scored: bool, optimize: bool
    ) -> Tuple[_PlanEntry, str]:
        """Return ``(entry, outcome)`` where outcome is ``"hit"``,
        ``"revalidated"`` or ``"miss"``; compiles and caches on miss."""
        key = self.key(query, scored, optimize)
        epoch = engine.epoch
        entry = self._lru.get(key)
        if entry is not None:
            if entry.epoch == epoch or not optimize:
                return entry, "hit"
            # Parsing/normalisation stay valid; only the statistics-driven
            # leapfrog ordering may have shifted.  Re-order from the base.
            entry.ordered = engine.prepare(entry.base, scored, optimize=True)
            entry.epoch = epoch
            return entry, "revalidated"
        base = query if isinstance(query, Query) else engine.prepare(query, scored, False)
        if optimize:
            ordered = engine.prepare(base, scored, optimize=True)
            # Normalisation folded duplicate leaves into `ordered`; keep the
            # same normalised tree as the base so revalidation is pure
            # re-ordering (orderings permute, never rewrite).
            if not scored:
                from ..query.rewrite import normalise

                base = normalise(base)
        else:
            ordered = base
        entry = _PlanEntry(base, ordered, to_query_string(base), epoch)
        self._lru.put(key, entry)
        return entry, "miss"

    def decision(
        self, engine, entry: _PlanEntry, k: int, scored: bool, epoch: int
    ) -> Tuple[Any, str]:
        """The memoised ``auto`` decision for one plan at one ``(k, scored)``.

        Returns ``(decision, outcome)`` where outcome is ``"hit"`` (cached
        and its epoch still matches), ``"replanned"`` (cached but the index
        mutated since — statistics may have shifted, so the planner runs
        again) or ``"miss"`` (first request at this ``(k, scored)``).
        Decisions degraded by unreachable statistics are never stored: they
        reflect an outage, not the epoch.
        """
        slot = entry.decisions.get((k, scored))
        if slot is not None and slot.epoch == epoch:
            return slot, "hit"
        outcome = "replanned" if slot is not None else "miss"
        decision = engine.plan(entry.ordered, k, scored)
        if decision.reason != "stats unavailable":
            entry.decisions[(k, scored)] = decision
        return decision, outcome

    def clear(self) -> None:
        self._lru.clear()


class _ResultEntry:
    __slots__ = ("result", "epoch")

    def __init__(self, result: DiverseResult, epoch: int):
        self.result = result
        self.epoch = epoch


class ResultCache:
    """LRU of executed answers with epoch-based lazy invalidation."""

    def __init__(self, capacity: int = DEFAULT_RESULT_CAPACITY):
        self._lru = _LRU(capacity)
        self.invalidations = 0  # stale entries discarded on lookup

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def evictions(self) -> int:
        """Entries dropped by LRU pressure (invalidation drops are separate:
        ``invalidations``; each dropped entry lands in exactly one)."""
        return self._lru.evictions

    @staticmethod
    def key(
        canonical: str, k: int, algorithm: str, scored: bool, optimize: bool
    ) -> Hashable:
        return (canonical, k, algorithm, scored, optimize)

    def lookup(self, key: Hashable, epoch: int) -> Tuple[Optional[DiverseResult], bool]:
        """Return ``(result, invalidated)``; drops stale entries lazily."""
        entry = self._lru.get(key)
        if entry is None:
            return None, False
        if entry.epoch != epoch:
            self._lru.discard(key)
            self.invalidations += 1
            return None, True
        return entry.result, False

    def store(self, key: Hashable, result: DiverseResult, epoch: int) -> None:
        self._lru.put(key, _ResultEntry(result, epoch))

    def clear(self) -> None:
        self._lru.clear()


class ServingCache:
    """Plan + result caching behind one thread-safe ``search`` call.

    Attach to an engine (``DiversityEngine(index, cache=ServingCache())``
    or ``engine.attach_cache(...)``) and every ``engine.search`` routes
    through here.  Answers are always bit-identical to an uncached engine
    at the same index epoch; every result's ``stats`` carries a
    ``cache_hit`` flag plus the cumulative ``cache_*`` counters.
    """

    def __init__(
        self,
        plan_capacity: int = DEFAULT_PLAN_CAPACITY,
        result_capacity: int = DEFAULT_RESULT_CAPACITY,
    ):
        self.plans = PlanCache(plan_capacity)
        self.results = ResultCache(result_capacity)
        self.stats = CacheStats()
        self._lock = threading.Lock()

    def search(
        self,
        engine,
        query: Union[Query, str],
        k: int,
        algorithm: str,
        scored: bool,
        optimize: bool,
    ) -> DiverseResult:
        """The cached equivalent of ``engine.search`` (same semantics)."""
        stats = self.stats
        with self._lock:
            epoch = engine.epoch
            plan, outcome = self.plans.lookup(engine, query, scored, optimize)
            if outcome == "hit":
                stats.plan_hits += 1
            elif outcome == "revalidated":
                stats.plan_revalidations += 1
            else:
                stats.plan_misses += 1
            stats.plan_evictions = self.plans.evictions
            key = self.results.key(plan.canonical, k, algorithm, scored, optimize)
            cached, invalidated = self.results.lookup(key, epoch)
            if invalidated:
                # A stale entry was just dropped: one miss (below) and one
                # eviction, both exactly once — _sync_eviction_counters
                # derives evictions from the result cache's own drop
                # counters, so no path can double-count the same entry.
                stats.epoch_invalidations += 1
                self._sync_eviction_counters()
            if cached is not None:
                stats.hits += 1
                return self._serve(cached, hit=True)
            stats.misses += 1
            ordered = plan.ordered
            decision = None
            if algorithm == "auto":
                # Resolve the memoised decision under the lock (cheap pure
                # statistics work) so concurrent callers share one plan;
                # the selected algorithm executes outside the lock below.
                decision, outcome = self.plans.decision(
                    engine, plan, k, scored, epoch
                )
                if outcome == "hit":
                    stats.decision_hits += 1
                elif outcome == "replanned":
                    stats.decision_replans += 1
                else:
                    stats.decision_misses += 1
        # Execute outside the lock: concurrent misses may race, but both
        # compute the same answer for the same epoch, so last-write-wins.
        result = engine.execute(ordered, k, algorithm, scored, decision=decision)
        with self._lock:
            # A degraded answer (shards lost mid-query) is correct only for
            # the moment's outage, not for the epoch: never cache it, or a
            # recovered shard would keep serving the survivor-only answer.
            if engine.epoch == epoch and not result.stats.get("degraded"):
                self.results.store(key, result, epoch)
                self._sync_eviction_counters()
            return self._serve(result, hit=False)

    def search_page(
        self,
        engine,
        query: Union[Query, str],
        page: int,
        page_size: int,
        algorithm: str,
    ) -> DiverseResult:
        """Cached diverse pagination: page ``page`` of ``page_size`` rows.

        Every page is cached independently under the plan's canonical key
        (``page:<algorithm>:<n>`` in the algorithm slot, so page entries
        can never collide with whole-answer entries).  A request for page
        N reuses the longest cached prefix of pages 1..N-1 to seed the
        paginator's exclusion set — computing only the missing suffix —
        and stores each newly computed page.  Pages are epoch-keyed like
        every other entry, and degraded pages are never stored (same
        invariant as :meth:`search`).
        """
        from ..core.pagination import DiversePaginator

        stats = self.stats
        with self._lock:
            epoch = engine.epoch
            plan, outcome = self.plans.lookup(engine, query, False, True)
            if outcome == "hit":
                stats.plan_hits += 1
            elif outcome == "revalidated":
                stats.plan_revalidations += 1
            else:
                stats.plan_misses += 1
            stats.plan_evictions = self.plans.evictions
            keys = [
                self.results.key(
                    plan.canonical, page_size, f"page:{algorithm}:{n}",
                    False, True,
                )
                for n in range(1, page + 1)
            ]
            cached_pages: List[Optional[DiverseResult]] = []
            for key in keys:
                cached, invalidated = self.results.lookup(key, epoch)
                if invalidated:
                    stats.epoch_invalidations += 1
                    self._sync_eviction_counters()
                cached_pages.append(cached)
            if cached_pages[-1] is not None:
                stats.hits += 1
                return self._serve(cached_pages[-1], hit=True)
            stats.misses += 1
            ordered = plan.ordered
        # Compute outside the lock (same discipline as ``search``): seed
        # the exclusion set from the contiguous cached prefix, then run
        # the paginator only over the missing pages.
        shown: set = set()
        start = 1
        for prior in cached_pages[:-1]:
            if prior is None:
                break
            shown.update(prior.deweys)
            start += 1
        paginator = DiversePaginator(engine, ordered, page_size, algorithm,
                                     shown=shown)
        computed: List[Tuple[int, DiverseResult]] = []
        result: Optional[DiverseResult] = None
        for number in range(start, page + 1):
            result = paginator.next_page()
            result.stats["page"] = number
            result.stats["page_size"] = page_size
            computed.append((number, result))
        with self._lock:
            if engine.epoch == epoch:
                for number, fresh in computed:
                    if not fresh.stats.get("degraded"):
                        self.results.store(keys[number - 1], fresh, epoch)
                self._sync_eviction_counters()
            return self._serve(result, hit=False)

    def _sync_eviction_counters(self) -> None:
        """Refresh ``stats.evictions`` from the result cache (lock held).

        Every dropped result entry is counted exactly once, whichever way
        it died: LRU pressure (``results.evictions``) or epoch
        invalidation (``results.invalidations``).
        """
        self.stats.evictions = self.results.evictions + self.results.invalidations

    def _serve(self, result: DiverseResult, hit: bool) -> DiverseResult:
        """Wrap a stored/fresh result with the current cache counters.

        Items are immutable and shared; the stats dict is rebuilt per call
        so callers can never corrupt a cached entry.
        """
        stats: Dict[str, int] = dict(result.stats)
        stats["cache_hit"] = 1 if hit else 0
        stats.update(self.stats.as_stats_dict())
        return DiverseResult(
            items=list(result.items),
            k=result.k,
            algorithm=result.algorithm,
            scored=result.scored,
            stats=stats,
        )

    def stats_snapshot(self) -> CacheStats:
        """A consistent copy of the counters, taken under the cache lock.

        Reading ``cache.stats`` field by field while pool threads serve
        queries can observe a torn set (a hit counted, its lookup not yet);
        batch reporting and metrics collection snapshot through here.
        """
        with self._lock:
            return self.stats.snapshot()

    def sizes(self) -> Dict[str, int]:
        """Current entry counts (for gauges): plan and result caches."""
        with self._lock:
            return {"plans": len(self.plans), "results": len(self.results)}

    def clear(self) -> None:
        """Drop every entry (counters are preserved; they are cumulative)."""
        with self._lock:
            self.plans.clear()
            self.results.clear()
