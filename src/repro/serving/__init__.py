"""repro.serving — the caching/batching layer in front of the engine.

An engineering extension beyond the paper (the paper computes each diverse
top-k from scratch; see docs/paper_mapping.md): plan caching, epoch-
invalidated LRU result caching, and batched workload execution for
skewed, repeated-query serving traffic.
"""

from .cache import (
    CacheStats,
    PlanCache,
    ResultCache,
    ServingCache,
)
from .engine import BatchReport, ServingEngine

__all__ = [
    "BatchReport",
    "CacheStats",
    "PlanCache",
    "ResultCache",
    "ServingCache",
    "ServingEngine",
]
