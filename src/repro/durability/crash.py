"""Crash-fault injection: kill the writer at any durability crash point.

The spirit of :class:`repro.resilience.chaos.ChaosPolicy`, aimed at disk
instead of the network: a :class:`CrashInjector` arms exactly one
*(crash point, occurrence)* pair, and the instrumented writers
(:class:`~repro.durability.wal.WriteAheadLog`,
:func:`repro.index.snapshot.write_snapshot`) consult it at every point a
real process can die.  When the armed point is reached the instrumented
code first makes the on-disk file look the way a kernel crash would leave
it — un-fsynced bytes dropped, a torn half-record on the platter, a bit
flipped by the medium — and then raises
:class:`~repro.durability.errors.SimulatedCrash` to kill the writer.

The differential crash-matrix suite enumerates every (point, occurrence)
pair a scripted workload reaches — via a profiling pass with an un-armed
injector — then kills the writer at each one and asserts recovery lands on
exactly the pre-crash or post-crash state, never anything in between.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from .errors import SimulatedCrash

#: Every instrumented crash point, in rough write-path order.
CRASH_POINTS = (
    "wal-pre-append",       # die before any byte of the record is written
    "wal-torn-append",      # half the record frame reaches disk, then die
    "wal-pre-sync",         # record fully written but not fsynced: lost
    "wal-post-sync",        # record durable; die immediately after fsync
    "wal-flip-tail",        # record durable, then the medium flips one bit
    "snapshot-mid-write",   # temp snapshot file half-written
    "snapshot-pre-rename",  # temp complete, rename never happens
    "snapshot-post-rename", # renamed; WAL truncation never happens
    "snapshot-post-truncate",  # the full snapshot cycle completed, then die
)


class CrashInjector:
    """Arms one crash point; counts every point reached along the way.

    ``point=None`` builds a pure profiler: nothing fires, but
    :attr:`reached` records how often each crash point was passed — the
    matrix driver uses this to enumerate occurrences.
    """

    def __init__(self, point: Optional[str] = None, occurrence: int = 1):
        if point is not None and point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {point!r}; choose from {CRASH_POINTS}"
            )
        if occurrence < 1:
            raise ValueError("occurrence is 1-based")
        self.point = point
        self.occurrence = occurrence
        self.fired = False
        self.reached: Dict[str, int] = Counter()

    def reach(self, point: str) -> bool:
        """Record passing ``point``; True when the armed crash fires *now*.

        The caller then applies the point's disk damage and calls
        :meth:`crash`.  Separating the two lets each instrumented site
        damage its own file with full knowledge of buffer/sync state.
        """
        self.reached[point] += 1
        if self.fired or point != self.point:
            return False
        if self.reached[point] == self.occurrence:
            self.fired = True
            return True
        return False

    def crash(self) -> None:
        """Kill the writer (raises :class:`SimulatedCrash`)."""
        raise SimulatedCrash(self.point or "<unarmed>", self.occurrence)

    def __repr__(self) -> str:
        return (
            f"CrashInjector(point={self.point!r}, occurrence={self.occurrence}, "
            f"fired={self.fired})"
        )
