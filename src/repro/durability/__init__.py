"""Crash-safe durability: write-ahead logging, snapshots, and recovery.

The in-memory serving stack (:mod:`repro.serving`, :mod:`repro.sharding`)
gains a disk footprint here: every index mutation is appended to a
checksummed :mod:`write-ahead log <repro.durability.wal>` *before* it is
applied, snapshots are written atomically with a payload digest
(:mod:`repro.index.snapshot`), and :func:`recover` resurrects a data
directory — single-index or sharded — bit-identically to the state the
crashed process had acknowledged, tolerating exactly one kind of damage:
a torn log tail.  A :mod:`crash-fault injector <repro.durability.crash>`
drives the differential test matrix that checks those claims at every
point a process can die.
"""

from pathlib import Path
from typing import Optional, Union

from .crash import CRASH_POINTS, CrashInjector
from .errors import (
    DurabilityError,
    RecoveryError,
    SimulatedCrash,
    WALCorruptionError,
    WALError,
)
from .sharded import create_sharded_store, recover_sharded_store
from .store import (
    DurableIndex,
    RecoveryReport,
    create_store,
    read_manifest,
    recover_store,
)
from .wal import WalScan, WriteAheadLog, read_wal


def recover(
    data_dir: Union[str, Path],
    snapshot_every: Optional[int] = None,
    fsync_every: Optional[int] = None,
    injector: Optional[CrashInjector] = None,
):
    """Recover whatever lives in ``data_dir`` (dispatches on the manifest).

    Returns a :class:`DurableIndex` for a single-index store or a
    :class:`~repro.sharding.ShardedIndex` with durable shards for a
    sharded one, either way reopened for writing.
    """
    manifest = read_manifest(data_dir)
    kind = manifest.get("kind")
    if kind == "single":
        return recover_store(data_dir, snapshot_every=snapshot_every,
                             fsync_every=fsync_every, injector=injector)
    if kind == "sharded":
        return recover_sharded_store(data_dir, snapshot_every=snapshot_every,
                                     fsync_every=fsync_every,
                                     injector=injector)
    raise RecoveryError(data_dir, f"unknown store kind {kind!r}")


__all__ = [
    "CRASH_POINTS",
    "CrashInjector",
    "DurabilityError",
    "DurableIndex",
    "RecoveryError",
    "RecoveryReport",
    "SimulatedCrash",
    "WALCorruptionError",
    "WALError",
    "WalScan",
    "WriteAheadLog",
    "create_sharded_store",
    "create_store",
    "read_wal",
    "recover",
    "recover_sharded_store",
    "recover_store",
]
