"""The per-index write-ahead log.

Record framing (all integers big-endian)::

    file   := magic "RPROWAL\\x01" (8 bytes) record*
    record := length(4) crc32(4) payload(length)
    payload := JSON {"seq", "op": "insert"|"remove", "rid", "dewey", ["row"]}

Every mutation is appended — and, per the fsync policy, made durable —
*before* the in-memory index mutates (see
:class:`repro.durability.store.DurableIndex`).  ``seq`` is tied to the
index's mutation epoch: the record with ``seq == n`` is exactly the
mutation that moved the epoch from ``n-1`` to ``n``, which is what lets
recovery land on the same epoch the crashed process had and keep the
serving caches' invalidation contract intact across a restart.

Reading tolerates a *torn tail* — the expected signature of a crash mid-
append: a final record whose frame is incomplete, whose declared length
overruns the file, or whose checksum fails **at end-of-file** is dropped
(that mutation was never acknowledged).  A checksum failure *before* the
tail means previously acknowledged bytes are damaged and raises
:class:`~repro.durability.errors.WALCorruptionError` instead of silently
replaying a prefix.

``fsync_every`` batches fsyncs: 1 (default) syncs every append — full
durability; N>1 amortises the sync over N records — a crash can lose at
most the last N un-synced mutations (each still atomic); 0 leaves syncing
to explicit :meth:`WriteAheadLog.sync` / :meth:`WriteAheadLog.close`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from ..observability import MONOTONIC, get_registry
from .crash import CrashInjector
from .errors import WALCorruptionError, WALError

MAGIC = b"RPROWAL\x01"
_FRAME = struct.Struct(">II")
#: Sanity bound on a declared record length; anything larger is treated as
#: a torn/garbage length prefix, not an allocation request.
MAX_RECORD_BYTES = 1 << 28


def insert_record(seq: int, rid: int, row, dewey) -> dict:
    """The WAL payload for one insert: carries the row values (the relation
    is in-memory, so recovery must re-materialise the tuple from the log)
    and the predicted Dewey assignment (replay forces it bit-exactly)."""
    return {"seq": seq, "op": "insert", "rid": rid, "row": list(row),
            "dewey": list(dewey)}


def remove_record(seq: int, rid: int, dewey) -> dict:
    return {"seq": seq, "op": "remove", "rid": rid, "dewey": list(dewey)}


def encode_frame(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalScan:
    """Outcome of reading one WAL file."""

    records: List[dict]
    valid_end: int        # byte offset just past the last good record
    file_size: int
    torn: bool            # a damaged/incomplete tail was dropped

    @property
    def dropped_bytes(self) -> int:
        return self.file_size - self.valid_end


def read_wal(path: Union[str, Path]) -> WalScan:
    """Decode every intact record, tolerating a torn tail.

    Raises :class:`WALCorruptionError` when damage sits *before* the tail
    (a mid-log checksum failure), and :class:`WALError` when the file is
    not a WAL at all.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as error:
        raise WALError(f"cannot read WAL {path}: {error}") from None
    if data[: len(MAGIC)] != MAGIC:
        if MAGIC.startswith(data):
            # A crash between file creation and the magic's fsync leaves a
            # strict prefix: an empty log.
            return WalScan([], valid_end=0, file_size=len(data), torn=bool(data))
        raise WALError(f"{path} is not a repro WAL (bad magic)")
    records: List[dict] = []
    offset = len(MAGIC)
    size = len(data)
    while offset < size:
        if size - offset < _FRAME.size:
            break  # torn frame header
        length, crc = _FRAME.unpack_from(data, offset)
        extent = offset + _FRAME.size + length
        if length > MAX_RECORD_BYTES or extent > size:
            break  # torn/garbage length prefix or short payload
        payload = data[offset + _FRAME.size: extent]
        if zlib.crc32(payload) != crc:
            if extent == size:
                break  # bit-flipped or torn final record: drop the tail
            raise WALCorruptionError(path, offset, "checksum mismatch mid-log")
        try:
            record = json.loads(payload.decode("utf-8"))
        except ValueError:
            raise WALCorruptionError(
                path, offset, "checksummed record is not valid JSON"
            ) from None
        records.append(record)
        offset = extent
    return WalScan(records, valid_end=offset, file_size=size,
                   torn=offset < size)


class WriteAheadLog:
    """Appender for one WAL file, with fsync batching and crash points."""

    __slots__ = (
        "_path", "_handle", "_fsync_every", "_injector",
        "_offset", "_synced", "_pending",
        "appended", "appended_since_truncate", "bytes_appended", "syncs",
        "_m_appends", "_m_bytes", "_m_syncs", "_m_truncates", "_m_sync_ms",
    )

    def __init__(
        self,
        path: Union[str, Path],
        fsync_every: int = 1,
        injector: Optional[CrashInjector] = None,
        _create: bool = False,
    ):
        if fsync_every < 0:
            raise ValueError("fsync_every must be >= 0")
        self._path = Path(path)
        self._fsync_every = fsync_every
        self._injector = injector
        self.appended = 0
        self.appended_since_truncate = 0
        self.bytes_appended = 0
        self.syncs = 0
        # Process-wide instruments, resolved once per log (the append path
        # is the hot mutation path; a disabled registry hands back no-ops).
        registry = get_registry()
        self._m_appends = registry.counter(
            "repro_wal_appends_total", "WAL records appended")
        self._m_bytes = registry.counter(
            "repro_wal_bytes_appended_total", "WAL bytes appended")
        self._m_syncs = registry.counter(
            "repro_wal_syncs_total", "WAL fsync batches completed")
        self._m_truncates = registry.counter(
            "repro_wal_truncates_total", "WAL truncations (snapshot coverage)")
        self._m_sync_ms = registry.histogram(
            "repro_wal_sync_ms", "WAL fsync latency (ms)")
        if _create:
            with open(self._path, "wb") as handle:
                handle.write(MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            end = len(MAGIC)
        else:
            end = self._path.stat().st_size
        self._handle = open(self._path, "ab")
        self._offset = end
        self._synced = end
        self._pending = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path, fsync_every: int = 1,
               injector: Optional[CrashInjector] = None) -> "WriteAheadLog":
        """Start a fresh (empty) log, truncating any existing file."""
        return cls(path, fsync_every=fsync_every, injector=injector,
                   _create=True)

    @classmethod
    def open_for_append(
        cls,
        path,
        fsync_every: int = 1,
        injector: Optional[CrashInjector] = None,
    ) -> tuple["WriteAheadLog", WalScan]:
        """Reopen a recovered log: drop the torn tail, append after it.

        Returns the log plus the scan of its intact records (the caller
        replays them).  Raises on mid-log corruption — an unrecoverable
        log must never be appended to.
        """
        scan = read_wal(path)
        if scan.valid_end < len(MAGIC):
            # Header never became durable: restart the log from scratch.
            return cls.create(path, fsync_every=fsync_every,
                              injector=injector), scan
        if scan.torn:
            with open(path, "r+b") as handle:
                handle.truncate(scan.valid_end)
                handle.flush()
                os.fsync(handle.fileno())
        return cls(path, fsync_every=fsync_every, injector=injector), scan

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def fsync_every(self) -> int:
        return self._fsync_every

    @property
    def size(self) -> int:
        return self._offset

    @property
    def synced_size(self) -> int:
        return self._synced

    @property
    def closed(self) -> bool:
        return self._handle is None

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self._path)!r}, {self._offset}B, "
            f"{self.appended_since_truncate} records since truncate, "
            f"fsync_every={self._fsync_every})"
        )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Frame, write and (per policy) fsync one record."""
        if self._handle is None:
            raise WALError(f"WAL {self._path} is closed")
        frame = encode_frame(record)
        injector = self._injector
        if injector is not None:
            if injector.reach("wal-pre-append"):
                self._die()
            if injector.reach("wal-torn-append"):
                # Half the frame reaches the platter: header + part of the
                # payload, cut inside the checksummed region.
                self._die(partial=frame[: _FRAME.size + len(frame) // 2])
        frame_start = self._offset
        self._handle.write(frame)
        self._offset += len(frame)
        self._pending += 1
        self.appended += 1
        self.appended_since_truncate += 1
        self.bytes_appended += len(frame)
        self._m_appends.inc()
        self._m_bytes.inc(len(frame))
        if injector is not None and injector.reach("wal-pre-sync"):
            self._die()
        if self._fsync_every and self._pending >= self._fsync_every:
            self.sync()
            if injector is not None:
                if injector.reach("wal-post-sync"):
                    self._die()
                if injector.reach("wal-flip-tail"):
                    self._flip_bit(frame_start + _FRAME.size + len(frame) // 4)

    def sync(self) -> None:
        """Make everything appended so far durable."""
        if self._handle is None:
            raise WALError(f"WAL {self._path} is closed")
        if self._synced == self._offset:
            self._pending = 0
            return
        started = MONOTONIC()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._synced = self._offset
        self._pending = 0
        self.syncs += 1
        self._m_syncs.inc()
        self._m_sync_ms.observe((MONOTONIC() - started) * 1000.0)

    def truncate(self) -> None:
        """Drop every record (a snapshot now covers them); keep the magic."""
        if self._handle is None:
            raise WALError(f"WAL {self._path} is closed")
        self._handle.flush()
        self._handle.truncate(len(MAGIC))
        os.fsync(self._handle.fileno())
        self._offset = len(MAGIC)
        self._synced = len(MAGIC)
        self._pending = 0
        self.appended_since_truncate = 0
        self._m_truncates.inc()

    def close(self) -> None:
        """Sync and release the file handle (idempotent)."""
        handle, self._handle = self._handle, None
        if handle is None:
            return
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Simulated crash damage
    # ------------------------------------------------------------------
    def _die(self, partial: bytes = b"") -> None:
        """Reconstruct the post-crash disk state, then kill the writer.

        Un-fsynced bytes are dropped (the harshest legal outcome of a real
        crash); ``partial`` models a torn write that straddled the failure
        — its bytes land *after* the synced prefix.
        """
        handle, self._handle = self._handle, None
        handle.close()  # flushes; the fixup below re-truncates to synced
        with open(self._path, "r+b") as fixup:
            fixup.truncate(self._synced)
            if partial:
                fixup.seek(self._synced)
                fixup.write(partial)
            fixup.flush()
            os.fsync(fixup.fileno())
        self._injector.crash()

    def _flip_bit(self, position: int) -> None:
        """Medium corruption: flip one bit of the durable tail, then die."""
        handle, self._handle = self._handle, None
        handle.close()
        with open(self._path, "r+b") as fixup:
            fixup.seek(position)
            byte = fixup.read(1)
            fixup.seek(position)
            fixup.write(bytes([byte[0] ^ 0x40]))
            fixup.flush()
            os.fsync(fixup.fileno())
        self._injector.crash()
