"""Structured failure taxonomy for the durability layer.

Mirrors :mod:`repro.resilience.errors`: every failure a caller can act on
gets its own type, and recovery never surfaces a raw ``KeyError`` or
``struct.error`` from half-parsed bytes.

The split that matters operationally: a torn or truncated log *tail* is
the expected signature of a crash mid-append, so recovery silently drops
it (the mutation it carried was never acknowledged as durable) and raises
nothing.  :class:`WALCorruptionError` means a record failed its checksum
*before* the tail: bytes the log previously acknowledged are damaged.
Recovery refuses to guess and raises, because silently dropping the
suffix would resurrect deleted rows and un-insert acknowledged ones.
"""

from __future__ import annotations


class DurabilityError(Exception):
    """Base class for every durability-layer failure."""


class WALError(DurabilityError):
    """A write-ahead-log file is structurally unusable (bad magic, bad
    header, unwritable path)."""


class WALCorruptionError(WALError):
    """A WAL record before the tail failed its checksum — acknowledged
    bytes are damaged, so replay would be wrong, not just incomplete."""

    def __init__(self, path, offset: int, reason: str):
        self.path = path
        self.offset = offset
        self.reason = reason
        super().__init__(
            f"WAL {path} corrupt at byte {offset} (not a torn tail): {reason}"
        )


class RecoveryError(DurabilityError):
    """A data directory cannot be recovered into a consistent index:
    corrupt snapshot, mid-log corruption, sequence gaps, or missing shard
    data.  Carries the offending path for operator triage."""

    def __init__(self, path, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(f"cannot recover {path}: {reason}")


class SimulatedCrash(BaseException):
    """The crash-fault injector killed the writer process.

    Deliberately a ``BaseException`` (like ``KeyboardInterrupt``): a real
    ``kill -9`` is not catchable by ``except Exception`` cleanup paths, so
    the simulation must not be either — any ``finally``-style tidying that
    would run is exactly the tidying a real crash skips.
    """

    def __init__(self, point: str, occurrence: int):
        self.point = point
        self.occurrence = occurrence
        super().__init__(f"simulated crash at {point} (occurrence {occurrence})")
