"""Crash-safe single-index store: WAL-ahead mutation, snapshots, recovery.

A data directory holds everything needed to resurrect an index::

    data_dir/
        MANIFEST.json   # {"kind": "single", snapshot_every, fsync_every}
        snapshot.idx    # checksummed v2 snapshot (repro.index.snapshot)
        wal.log         # mutations since that snapshot (repro.durability.wal)

:class:`DurableIndex` wraps an :class:`~repro.index.inverted.InvertedIndex`
behind the same read protocol (the :class:`~repro.resilience.chaos.FaultyShard`
idiom) and intercepts the two mutations.  Each is appended — and fsynced,
per policy — to the WAL *before* the in-memory index changes, using
:meth:`DeweyIndex.peek` to predict the exact Dewey assignment without
mutating.  The record's ``seq`` is the mutation epoch the index will hold
*after* applying it, which makes snapshotting and log truncation safely
non-atomic: recovery simply skips records whose seq the snapshot already
covers, so a crash between the snapshot rename and the WAL truncate
replays nothing twice.

Recovery (:func:`recover_store`) validates the snapshot digest, replays
the log tolerating only a torn tail, verifies seq contiguity and that
every replayed Dewey assignment is consistent, and lands the index on the
exact pre-crash epoch so warm serving-cache entries stay valid.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Set, Union

from ..core.dewey import DeweyId
from ..index.dewey_index import DeweyAssignmentError
from ..observability import get_registry, span
from ..index.inverted import InvertedIndex
from ..index.snapshot import (
    SnapshotError,
    read_snapshot,
    restore_index,
    save_index,
)
from .crash import CrashInjector
from .errors import RecoveryError, WALError
from .wal import WalScan, WriteAheadLog, insert_record, read_wal, remove_record

MANIFEST_NAME = "MANIFEST.json"
SNAPSHOT_NAME = "snapshot.idx"
WAL_NAME = "wal.log"
MANIFEST_FORMAT = "repro-durability"
MANIFEST_VERSION = 1


@dataclass
class RecoveryReport:
    """What one store's recovery actually did (operator triage / CLI)."""

    path: Path
    snapshot_epoch: int
    replayed: int          # WAL records applied on top of the snapshot
    skipped: int           # stale records the snapshot already covered
    torn_bytes: int        # damaged tail bytes dropped (0 = clean shutdown)
    final_epoch: int

    def describe(self) -> str:
        bits = [
            f"snapshot@epoch {self.snapshot_epoch}",
            f"replayed {self.replayed} WAL record(s)",
        ]
        if self.skipped:
            bits.append(f"skipped {self.skipped} stale")
        if self.torn_bytes:
            bits.append(f"dropped {self.torn_bytes} torn tail byte(s)")
        bits.append(f"epoch {self.final_epoch}")
        return ", ".join(bits)


class DurableIndex:
    """An inverted index whose mutations survive crashes.

    Presents the full InvertedIndex read protocol (so engines, cursors and
    :class:`~repro.sharding.ShardedIndex` treat it as a plain shard) and
    write-ahead-logs ``insert``/``remove``.  When ``snapshot_every`` is
    positive, every mutation that brings the log to that many records
    triggers a snapshot + log truncation inline.

    ``owned`` scopes partial (per-shard) snapshots to the row slots this
    index is responsible for; ``None`` snapshots the whole relation.
    """

    __slots__ = (
        "_index", "_wal", "_snapshot_path", "_snapshot_every",
        "_injector", "_owned", "snapshots", "recovery",
        "__weakref__",  # metrics collectors hold the index weakly
    )

    def __init__(
        self,
        index: InvertedIndex,
        wal: WriteAheadLog,
        snapshot_path: Union[str, Path],
        snapshot_every: int = 0,
        injector: Optional[CrashInjector] = None,
        owned: Optional[Set[int]] = None,
        recovery: Optional[RecoveryReport] = None,
    ):
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0 (0 disables)")
        self._index = index
        self._wal = wal
        self._snapshot_path = Path(snapshot_path)
        self._snapshot_every = snapshot_every
        self._injector = injector
        self._owned = owned
        self.snapshots = 0
        self.recovery = recovery

    # ------------------------------------------------------------------
    # Introspection / read protocol (delegates to the wrapped index).
    # NOTE: the unwrap accessor is deliberately named ``index`` — shards
    # expose chaos wrappers via ``inner`` and ShardedIndex.clear_chaos
    # strips *that* name; durability must survive chaos clearing.
    # ------------------------------------------------------------------
    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def snapshot_path(self) -> Path:
        return self._snapshot_path

    @property
    def snapshot_every(self) -> int:
        return self._snapshot_every

    @property
    def relation(self):
        return self._index.relation

    @property
    def ordering(self):
        return self._index.ordering

    @property
    def backend(self) -> str:
        return self._index.backend

    @property
    def dewey(self):
        return self._index.dewey

    @property
    def depth(self) -> int:
        return self._index.depth

    @property
    def epoch(self) -> int:
        return self._index.epoch

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:
        return (
            f"DurableIndex({self._index!r}, wal={self._wal.path.name}, "
            f"snapshot_every={self._snapshot_every or 'off'})"
        )

    def scalar_postings(self, attribute: str, value: Any):
        return self._index.scalar_postings(attribute, value)

    def token_postings(self, attribute: str, token: str):
        return self._index.token_postings(attribute, token)

    def all_postings(self):
        return self._index.all_postings()

    def vocabulary(self, attribute: str) -> list:
        return self._index.vocabulary(attribute)

    def memory_stats(self) -> dict:
        return self._index.memory_stats()

    # ------------------------------------------------------------------
    # Durable mutations
    # ------------------------------------------------------------------
    def insert(self, rid: int) -> DeweyId:
        """WAL-then-index one new relation row.

        The Dewey assignment is *peeked* (not applied) first so the log
        record carries the exact ID the in-memory mutation is about to
        assign — replay force-applies it bit-identically no matter what
        sibling-dictionary state a restored index happens to have.
        """
        dewey = self._index.dewey.peek(rid)
        if dewey in self._index.all_postings():
            return dewey  # idempotent re-insert: no mutation, no record
        row = self._index.relation[rid]
        self._wal.append(insert_record(self._index.epoch + 1, rid, row, dewey))
        if self._owned is not None:
            self._owned.add(rid)
        applied = self._index.insert(rid)
        self._maybe_snapshot()
        return applied

    def remove(self, rid: int) -> Optional[DeweyId]:
        """WAL-then-unindex one row; returns its Dewey ID (None if absent)."""
        if rid not in self._index.dewey:
            return None
        dewey = self._index.dewey.dewey_of(rid)
        if dewey not in self._index.all_postings():
            return None  # not this shard's row (shared global Dewey space)
        self._wal.append(remove_record(self._index.epoch + 1, rid, dewey))
        result = self._index.remove(rid)
        self._maybe_snapshot()
        return result

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------
    def _maybe_snapshot(self) -> None:
        if (
            self._snapshot_every
            and self._wal.appended_since_truncate >= self._snapshot_every
        ):
            self.snapshot()

    def snapshot(self) -> None:
        """Write an atomic snapshot, then truncate the now-covered log."""
        with span("durability.snapshot", epoch=self._index.epoch):
            rids = sorted(self._owned) if self._owned is not None else None
            save_index(self._index, self._snapshot_path, rids=rids,
                       injector=self._injector)
            self._wal.truncate()
            if self._injector is not None and self._injector.reach(
                "snapshot-post-truncate"
            ):
                self._injector.crash()
            self.snapshots += 1
            get_registry().counter(
                "repro_snapshots_total", "Index snapshots written"
            ).inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def arm(self, injector: Optional[CrashInjector]) -> None:
        """(Re)attach a crash injector to this store and its WAL — lets the
        crash matrix arm a steady-state workload without instrumenting the
        store's own creation."""
        self._injector = injector
        self._wal._injector = injector

    def close(self) -> None:
        self._wal.close()

    def __enter__(self) -> "DurableIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def write_manifest(data_dir: Path, manifest: dict) -> None:
    """Atomically persist the (static) store configuration."""
    document = dict(manifest)
    document.setdefault("format", MANIFEST_FORMAT)
    document.setdefault("version", MANIFEST_VERSION)
    target = data_dir / MANIFEST_NAME
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, target)


def read_manifest(data_dir: Union[str, Path]) -> dict:
    data_dir = Path(data_dir)
    path = data_dir / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text())
    except OSError:
        raise RecoveryError(data_dir, f"missing {MANIFEST_NAME}") from None
    except ValueError as error:
        raise RecoveryError(
            data_dir, f"unreadable {MANIFEST_NAME}: {error}"
        ) from None
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise RecoveryError(
            data_dir, f"{MANIFEST_NAME} is not a {MANIFEST_FORMAT} manifest"
        )
    return manifest


# ----------------------------------------------------------------------
# Creation and recovery
# ----------------------------------------------------------------------
def create_store(
    index: InvertedIndex,
    data_dir: Union[str, Path],
    snapshot_every: int = 0,
    fsync_every: int = 1,
    injector: Optional[CrashInjector] = None,
) -> DurableIndex:
    """Initialise a data directory around an existing in-memory index."""
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    write_manifest(data_dir, {
        "kind": "single",
        "snapshot_every": snapshot_every,
        "fsync_every": fsync_every,
    })
    snapshot_path = data_dir / SNAPSHOT_NAME
    save_index(index, snapshot_path)
    wal = WriteAheadLog.create(data_dir / WAL_NAME, fsync_every=fsync_every,
                               injector=injector)
    return DurableIndex(index, wal, snapshot_path,
                        snapshot_every=snapshot_every, injector=injector)


def parse_record(record, label) -> tuple:
    """Validate one decoded WAL record; returns (seq, op, rid, dewey, row)."""
    try:
        seq = int(record["seq"])
        op = record["op"]
        rid = int(record["rid"])
        dewey = tuple(int(c) for c in record["dewey"])
    except (KeyError, TypeError, ValueError):
        raise RecoveryError(label, f"malformed WAL record {record!r}") from None
    if op not in ("insert", "remove"):
        raise RecoveryError(label, f"unknown WAL op {op!r} in record {seq}")
    row = record.get("row")
    if op == "insert" and not isinstance(row, list):
        raise RecoveryError(label, f"insert record {seq} has no row")
    return seq, op, rid, dewey, row


def replay_wal_records(
    index: InvertedIndex,
    records: list,
    label: Union[str, Path],
) -> tuple[int, int]:
    """Apply WAL records on top of a freshly restored index.

    Records the snapshot already covers (``seq <=`` the restored epoch)
    are skipped; the remainder must be contiguous from the next epoch.
    Every replayed record is cross-checked against the index (rows match,
    Dewey assignments consistent) so damage that slipped past the
    checksums still surfaces as :class:`RecoveryError`, never as a
    silently wrong index.  Returns ``(replayed, skipped)``.
    """
    relation = index.relation
    start = index.epoch
    expected = start
    replayed = skipped = 0
    for record in records:
        seq, op, rid, dewey, row = parse_record(record, label)
        if seq <= start:
            skipped += 1  # superseded by the snapshot (post-rename crash)
            continue
        expected += 1
        if seq != expected:
            raise RecoveryError(
                label,
                f"WAL sequence gap: expected seq {expected}, found {seq} "
                f"(acknowledged mutations are missing)",
            )
        if op == "insert":
            if rid == len(relation):
                relation.insert(row)
            elif rid < len(relation):
                if list(relation[rid]) != list(relation.schema.coerce_row(row)):
                    raise RecoveryError(
                        label,
                        f"insert record {seq} disagrees with row {rid} "
                        f"restored from the snapshot",
                    )
            else:
                raise RecoveryError(
                    label,
                    f"insert record {seq} references rid {rid} beyond the "
                    f"row table (gap in acknowledged inserts)",
                )
            try:
                index.dewey.force(rid, dewey)
            except DeweyAssignmentError as error:
                raise RecoveryError(
                    label, f"insert record {seq}: {error}"
                ) from None
            index.index_restored_row(rid)
        else:  # remove
            if rid not in index.dewey or index.dewey.dewey_of(rid) != dewey:
                raise RecoveryError(
                    label,
                    f"remove record {seq} references rid {rid} with Dewey "
                    f"{list(dewey)} not present in the recovered index",
                )
            index.remove(rid)
            relation.delete(rid)
        replayed += 1
    index.restore_epoch(expected)
    return replayed, skipped


def _scan_wal_for_recovery(wal_path: Path, label) -> WalScan:
    if not wal_path.exists():
        # A crash between the snapshot write and WAL creation: no log means
        # no mutations past the snapshot.
        return WalScan([], valid_end=0, file_size=0, torn=False)
    try:
        return read_wal(wal_path)
    except WALError as error:
        raise RecoveryError(label, str(error)) from error


def recover_store(
    data_dir: Union[str, Path],
    snapshot_every: Optional[int] = None,
    fsync_every: Optional[int] = None,
    injector: Optional[CrashInjector] = None,
) -> DurableIndex:
    """Recover a single-index data directory and reopen it for writing.

    ``snapshot_every`` / ``fsync_every`` default to the manifest's values;
    pass explicit ones to override the persisted policy.
    """
    data_dir = Path(data_dir)
    manifest = read_manifest(data_dir)
    if manifest.get("kind") != "single":
        raise RecoveryError(
            data_dir,
            f"manifest kind {manifest.get('kind')!r} is not a single-index "
            f"store (use repro.durability.recover for dispatch)",
        )
    if snapshot_every is None:
        snapshot_every = int(manifest.get("snapshot_every", 0))
    if fsync_every is None:
        fsync_every = int(manifest.get("fsync_every", 1))
    snapshot_path = data_dir / SNAPSHOT_NAME
    with span("durability.recover", path=str(data_dir)):
        try:
            payload = read_snapshot(snapshot_path)
            index = restore_index(payload, label=f"snapshot {snapshot_path}")
        except SnapshotError as error:
            raise RecoveryError(data_dir, str(error)) from error
        wal_path = data_dir / WAL_NAME
        scan = _scan_wal_for_recovery(wal_path, data_dir)
        snapshot_epoch = index.epoch
        replayed, skipped = replay_wal_records(index, scan.records, data_dir)
        if wal_path.exists():
            wal, _ = WriteAheadLog.open_for_append(
                wal_path, fsync_every=fsync_every, injector=injector
            )
        else:
            wal = WriteAheadLog.create(wal_path, fsync_every=fsync_every,
                                       injector=injector)
    report = RecoveryReport(
        path=data_dir,
        snapshot_epoch=snapshot_epoch,
        replayed=replayed,
        skipped=skipped,
        torn_bytes=scan.dropped_bytes,
        final_epoch=index.epoch,
    )
    registry = get_registry()
    registry.counter("repro_recoveries_total", "Store recoveries").inc()
    registry.counter("repro_recovery_replayed_total",
                     "WAL records replayed during recovery").inc(replayed)
    registry.counter("repro_recovery_skipped_total",
                     "Stale WAL records skipped during recovery").inc(skipped)
    registry.counter("repro_recovery_torn_bytes_total",
                     "Torn WAL tail bytes dropped during recovery"
                     ).inc(scan.dropped_bytes)
    return DurableIndex(index, wal, snapshot_path,
                        snapshot_every=snapshot_every, injector=injector,
                        recovery=report)
