"""Crash-safe durability for a sharded deployment.

Directory layout (one WAL + one snapshot per shard)::

    data_dir/
        MANIFEST.json        # kind=sharded, shard count, router spec, policy
        shard-0000/
            snapshot.idx     # partial (rid-subset) v2 snapshot of shard 0
            wal.log
        shard-0001/
            ...

Each shard's snapshot carries only the relation slots routed to it (live
*and* tombstoned — the rid-keyed v2 row table makes subsets first-class),
plus that shard's Dewey postings and its private mutation epoch.  Shards
snapshot independently, at different times, so the per-shard WALs are
replayed against per-shard snapshot epochs.

Recovery unions the per-shard states: routing partitions the row space,
so the union must cover every rid slot exactly once — a gap means an
acknowledged insert is missing (possible only with cross-shard fsync
batching) and raises :class:`RecoveryError` rather than renumbering rows.
The global Dewey assignment is force-restored from the per-shard tables,
each shard's posting lists are rebuilt over the shared Dewey space, and
the persisted router (including a RangeRouter's exact boundaries) is
rehydrated so every future insert routes exactly as before the crash.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Set, Union

from ..core.ordering import DiversityOrdering
from ..index.inverted import InvertedIndex
from ..index.snapshot import (
    SnapshotError,
    read_snapshot,
    restore_dewey,
    save_index,
)
from ..sharding.router import HashRouter, RangeRouter, ShardRouter
from ..sharding.sharded_index import ShardedIndex
from ..storage.relation import Relation
from ..storage.schema import Attribute, AttributeKind, Schema
from .crash import CrashInjector
from .errors import RecoveryError
from .store import (
    DurableIndex,
    RecoveryReport,
    SNAPSHOT_NAME,
    WAL_NAME,
    _scan_wal_for_recovery,
    parse_record,
    read_manifest,
    write_manifest,
)
from .wal import WriteAheadLog


def shard_dir_name(shard_id: int) -> str:
    return f"shard-{shard_id:04d}"


# ----------------------------------------------------------------------
# Router persistence
# ----------------------------------------------------------------------
def router_spec(router: ShardRouter) -> dict:
    """A JSON-safe description that rebuilds this exact router."""
    if isinstance(router, RangeRouter):
        return {
            "kind": "range",
            "boundaries": [list(boundary) for boundary in router.boundaries],
        }
    if isinstance(router, HashRouter):
        return {"kind": "hash"}
    raise TypeError(f"cannot persist router {router!r}")


def router_from_spec(spec: dict, shards: int, label) -> ShardRouter:
    kind = spec.get("kind") if isinstance(spec, dict) else None
    if kind == "hash":
        return HashRouter(shards)
    if kind == "range":
        try:
            boundaries = [tuple(boundary) for boundary in spec["boundaries"]]
            return RangeRouter(shards, boundaries)
        except (KeyError, TypeError, ValueError) as error:
            raise RecoveryError(
                label, f"bad range-router spec: {error}"
            ) from None
    raise RecoveryError(label, f"unknown router spec {spec!r}")


# ----------------------------------------------------------------------
# Creation
# ----------------------------------------------------------------------
def create_sharded_store(
    index: ShardedIndex,
    data_dir: Union[str, Path],
    snapshot_every: int = 0,
    fsync_every: int = 1,
    injector: Optional[CrashInjector] = None,
    replicas: int = 1,
) -> ShardedIndex:
    """Initialise a data directory for ``index`` and make it durable.

    Every shard is wrapped in a :class:`DurableIndex` (in place — the
    returned object *is* ``index``); subsequent inserts/removes are
    write-ahead-logged per shard, and each shard snapshots itself
    independently when its log reaches ``snapshot_every`` records.

    ``replicas`` records the deployment's intended replication factor in
    the manifest so :func:`recover_sharded_store` callers (the CLI's
    ``recover``/``serve``) re-replicate to the same factor by default —
    only replica 0 of each shard is durable; the other copies are
    re-bootstrapped from it on recovery.  Replication itself happens
    *after* this call (``ShardedIndex.replicate``), so the durable
    wrapper always sits under the replica set, never over it.
    """
    if replicas < 1:
        raise ValueError("replica count must be >= 1")
    for shard in index.shards:
        if not isinstance(shard, InvertedIndex):
            raise TypeError(
                f"shards must be plain InvertedIndex instances to attach "
                f"durability (found {type(shard).__name__}; clear chaos or "
                f"existing durability wrappers first)"
            )
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    write_manifest(data_dir, {
        "kind": "sharded",
        "shards": index.num_shards,
        "router": router_spec(index.router),
        "snapshot_every": snapshot_every,
        "fsync_every": fsync_every,
        "replicas": replicas,
    })
    owned: List[Set[int]] = [set() for _ in range(index.num_shards)]
    for rid in range(len(index.relation)):
        owned[index.shard_of(rid)].add(rid)
    durable: List[DurableIndex] = []
    for shard_id, shard in enumerate(index.shards):
        shard_dir = data_dir / shard_dir_name(shard_id)
        shard_dir.mkdir(exist_ok=True)
        snapshot_path = shard_dir / SNAPSHOT_NAME
        save_index(shard, snapshot_path, rids=sorted(owned[shard_id]))
        wal = WriteAheadLog.create(shard_dir / WAL_NAME,
                                   fsync_every=fsync_every, injector=injector)
        durable.append(DurableIndex(
            shard, wal, snapshot_path, snapshot_every=snapshot_every,
            injector=injector, owned=owned[shard_id],
        ))
    index._shards = durable  # same in-place swap inject_chaos performs
    return index


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
def recover_sharded_store(
    data_dir: Union[str, Path],
    snapshot_every: Optional[int] = None,
    fsync_every: Optional[int] = None,
    injector: Optional[CrashInjector] = None,
) -> ShardedIndex:
    """Recover a full sharded deployment from its directory tree."""
    data_dir = Path(data_dir)
    manifest = read_manifest(data_dir)
    if manifest.get("kind") != "sharded":
        raise RecoveryError(
            data_dir,
            f"manifest kind {manifest.get('kind')!r} is not a sharded store",
        )
    try:
        num_shards = int(manifest["shards"])
    except (KeyError, TypeError, ValueError):
        raise RecoveryError(data_dir, "manifest lacks a shard count") from None
    if num_shards < 1:
        raise RecoveryError(data_dir, f"bad shard count {num_shards}")
    if snapshot_every is None:
        snapshot_every = int(manifest.get("snapshot_every", 0))
    if fsync_every is None:
        fsync_every = int(manifest.get("fsync_every", 1))

    # ---- Pass 1: read every shard's snapshot payload and WAL scan.
    payloads = []
    scans = []
    for shard_id in range(num_shards):
        shard_dir = data_dir / shard_dir_name(shard_id)
        snapshot_path = shard_dir / SNAPSHOT_NAME
        if not snapshot_path.exists():
            raise RecoveryError(
                data_dir, f"missing snapshot for shard {shard_id} "
                f"({snapshot_path})"
            )
        try:
            payloads.append(read_snapshot(snapshot_path))
        except SnapshotError as error:
            raise RecoveryError(data_dir, str(error)) from error
        scans.append(_scan_wal_for_recovery(shard_dir / WAL_NAME, shard_dir))

    reference = payloads[0]
    for shard_id, payload in enumerate(payloads):
        for key in ("schema", "ordering", "backend", "name"):
            if payload.get(key) != reference.get(key):
                raise RecoveryError(
                    data_dir,
                    f"shard {shard_id} disagrees with shard 0 on {key!r}",
                )

    # ---- Pass 2: union rows/tombstones/assignments, replay per-shard WALs.
    rows: dict = {}
    deleted: Set[int] = set()
    assignments: dict = {}
    shard_live: List[Set[int]] = [set() for _ in range(num_shards)]
    owned: List[Set[int]] = [set() for _ in range(num_shards)]
    epochs: List[int] = []
    reports: List[RecoveryReport] = []
    for shard_id, payload in enumerate(payloads):
        label = data_dir / shard_dir_name(shard_id)
        for rid, row in payload["rows"]:
            rid = int(rid)
            if rid in rows:
                raise RecoveryError(
                    label, f"rid {rid} appears in more than one shard snapshot"
                )
            rows[rid] = row
            owned[shard_id].add(rid)
        deleted.update(int(rid) for rid in payload.get("deleted", []))
        for rid, components in payload["deweys"]:
            rid = int(rid)
            assignments[rid] = tuple(int(c) for c in components)
            shard_live[shard_id].add(rid)
        snapshot_epoch = int(payload.get("epoch", 0))
        expected = snapshot_epoch
        replayed = skipped = 0
        for record in scans[shard_id].records:
            seq, op, rid, dewey, row = parse_record(record, label)
            if seq <= snapshot_epoch:
                skipped += 1
                continue
            expected += 1
            if seq != expected:
                raise RecoveryError(
                    label,
                    f"WAL sequence gap: expected seq {expected}, found {seq}",
                )
            if op == "insert":
                if rid in rows and list(rows[rid]) != list(row):
                    raise RecoveryError(
                        label,
                        f"insert record {seq} disagrees with the snapshotted "
                        f"row {rid}",
                    )
                existing = assignments.get(rid)
                if existing is not None and existing != dewey:
                    raise RecoveryError(
                        label,
                        f"insert record {seq} assigns rid {rid} Dewey "
                        f"{list(dewey)} but {list(existing)} is already taken",
                    )
                rows[rid] = row
                owned[shard_id].add(rid)
                assignments[rid] = dewey
                shard_live[shard_id].add(rid)
            else:  # remove
                if rid not in shard_live[shard_id] or assignments.get(rid) != dewey:
                    raise RecoveryError(
                        label,
                        f"remove record {seq} references rid {rid} with "
                        f"Dewey {list(dewey)} not live in this shard",
                    )
                shard_live[shard_id].discard(rid)
                del assignments[rid]
                deleted.add(rid)
            replayed += 1
        epochs.append(expected)
        reports.append(RecoveryReport(
            path=label,
            snapshot_epoch=snapshot_epoch,
            replayed=replayed,
            skipped=skipped,
            torn_bytes=scans[shard_id].dropped_bytes,
            final_epoch=expected,
        ))

    # ---- Pass 3: rebuild the global relation and Dewey space.
    try:
        schema = Schema(
            Attribute(name, AttributeKind(kind))
            for name, kind in reference["schema"]
        )
    except (KeyError, TypeError, ValueError) as error:
        raise RecoveryError(data_dir, f"bad schema: {error}") from None
    relation = Relation(schema, name=reference.get("name", "R"))
    for rid in range(len(rows)):
        if rid not in rows:
            raise RecoveryError(
                data_dir,
                f"row table has a gap at rid {rid}: an acknowledged insert "
                f"is missing from every shard",
            )
        relation.insert(rows[rid])
    for rid in sorted(deleted):
        relation.delete(rid)
    ordering = DiversityOrdering(reference["ordering"])
    try:
        dewey = restore_dewey(relation, ordering, assignments)
    except SnapshotError as error:
        raise RecoveryError(data_dir, str(error)) from error
    backend = reference["backend"]

    # ---- Pass 4: per-shard posting lists over the shared Dewey space.
    shards: List[InvertedIndex] = []
    for shard_id in range(num_shards):
        shard = InvertedIndex(relation, ordering, backend=backend, dewey=dewey)
        for rid in sorted(shard_live[shard_id]):
            shard.index_restored_row(rid)
        shard.restore_epoch(epochs[shard_id])
        shards.append(shard)
    router = router_from_spec(manifest.get("router"), num_shards, data_dir)
    index = ShardedIndex.from_parts(
        relation, ordering, dewey, router, shards, backend=backend
    )

    # ---- Pass 5: reopen each shard's WAL and re-wrap durably.
    durable: List[DurableIndex] = []
    for shard_id, shard in enumerate(shards):
        shard_dir = data_dir / shard_dir_name(shard_id)
        wal_path = shard_dir / WAL_NAME
        if wal_path.exists():
            wal, _ = WriteAheadLog.open_for_append(
                wal_path, fsync_every=fsync_every, injector=injector
            )
        else:
            wal = WriteAheadLog.create(wal_path, fsync_every=fsync_every,
                                       injector=injector)
        durable.append(DurableIndex(
            shard, wal, shard_dir / SNAPSHOT_NAME,
            snapshot_every=snapshot_every, injector=injector,
            owned=owned[shard_id], recovery=reports[shard_id],
        ))
    index._shards = durable
    return index
