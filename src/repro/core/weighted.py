"""Weighted diversity (the first extension in Section VII).

    "A natural extension to our definition of diversity is producing
    weighted results by assigning weights to different attribute values.
    For instance, we may assign higher weights to Hondas and Toyotas when
    compared to Teslas, so that the diverse results have more Hondas and
    Toyotas."

We generalise the balanced allocation: at every Dewey-tree node, child
counts minimise ``sum_i n_i^2 / w_i`` (instead of ``sum_i n_i^2``), where
``w_i`` is the child value's weight.  With all weights 1 this is exactly the
unweighted definition; a child with weight 2 is allowed roughly twice the
representation before it counts as redundant.  The greedy marginal-cost
water-fill (give the next unit to the child with the smallest
``(2 n_i + 1) / w_i``) is optimal for this separable convex objective.

Following the paper, weighted diversity is offered as a *selection* layer
(apply to a materialised result set or compose with any algorithm's
candidate superset); the streaming algorithms themselves stay unweighted.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..index.dewey_index import DeweyIndex
from .dewey import DeweyId

Prefix = Tuple[int, ...]

#: Weight lookup: (attribute name, value) -> weight.  Missing pairs get 1.0.
ValueWeights = Mapping[Tuple[str, object], float]


def weighted_waterfill(
    budget: int,
    capacities: Sequence[int],
    weights: Sequence[float],
) -> List[int]:
    """Allocation minimising ``sum n_i^2 / w_i`` under capacity bounds."""
    if len(weights) != len(capacities):
        raise ValueError("capacity/weight vectors must align")
    for weight in weights:
        if weight <= 0:
            raise ValueError("value weights must be positive")
    if not 0 <= budget <= sum(capacities):
        raise ValueError(f"infeasible budget {budget}")
    counts = [0] * len(capacities)
    heap = [
        (1.0 / weights[i], i) for i in range(len(capacities)) if capacities[i] > 0
    ]
    heapq.heapify(heap)
    remaining = budget
    while remaining > 0:
        _, i = heapq.heappop(heap)
        counts[i] += 1
        remaining -= 1
        if counts[i] < capacities[i]:
            marginal = (2 * counts[i] + 1) / weights[i]
            heapq.heappush(heap, (marginal, i))
    return counts


def is_weighted_balanced(
    selected_counts: Sequence[int],
    availabilities: Sequence[int],
    weights: Sequence[float],
) -> bool:
    """Single-exchange optimality for the weighted objective."""
    for n, cap in zip(selected_counts, availabilities):
        if not 0 <= n <= cap:
            return False
    for i, (n_i, w_i) in enumerate(zip(selected_counts, weights)):
        if n_i == 0:
            continue
        saving = (2 * n_i - 1) / w_i
        for j, (n_j, cap_j, w_j) in enumerate(
            zip(selected_counts, availabilities, weights)
        ):
            if i == j or n_j >= cap_j:
                continue
            cost = (2 * n_j + 1) / w_j
            if cost < saving - 1e-12:
                return False
    return True


class WeightedDiversifier:
    """Selects weighted-diverse subsets of materialised Dewey ID sets."""

    def __init__(self, dewey_index: DeweyIndex, weights: ValueWeights):
        self._dewey = dewey_index
        self._weights = dict(weights)
        self._ordering = dewey_index.ordering

    def weight_of(self, level: int, prefix: Prefix, component: int) -> float:
        """Weight of the child ``component`` under ``prefix`` (1.0 default).

        ``level`` is 0-based: level 0 children are values of the first
        ordering attribute.  The synthetic uniqueness level has no values,
        so its children always weigh 1.
        """
        if level >= len(self._ordering):
            return 1.0
        attribute = self._ordering.attribute_at(level + 1)
        value = self._decode(prefix, component)
        return float(self._weights.get((attribute, value), 1.0))

    def _decode(self, prefix: Prefix, component: int):
        # values_of needs a full-depth id; decode just this step instead.
        return self._dewey._dictionary.decode(prefix, component)  # noqa: SLF001

    def select(self, deweys: Iterable[DeweyId], k: int) -> List[DeweyId]:
        """A weighted-diverse min(k, n)-subset of ``deweys``."""
        ids = sorted(deweys)
        budget = min(k, len(ids))
        if budget == 0:
            return []
        return sorted(self._select(ids, 0, budget, ()))

    def _select(
        self, sorted_ids: List[DeweyId], level: int, budget: int, prefix: Prefix
    ) -> List[DeweyId]:
        if budget >= len(sorted_ids):
            return list(sorted_ids)
        if level >= len(sorted_ids[0]):
            return sorted_ids[:budget]
        groups: Dict[int, List[DeweyId]] = {}
        for dewey in sorted_ids:
            groups.setdefault(dewey[level], []).append(dewey)
        components = sorted(groups)
        capacities = [len(groups[c]) for c in components]
        weights = [self.weight_of(level, prefix, c) for c in components]
        allocation = weighted_waterfill(budget, capacities, weights)
        chosen: List[DeweyId] = []
        for component, share in zip(components, allocation):
            if share:
                chosen.extend(
                    self._select(
                        groups[component], level + 1, share, prefix + (component,)
                    )
                )
        return chosen

    def is_weighted_diverse(
        self, selected: Iterable[DeweyId], result_set: Iterable[DeweyId]
    ) -> bool:
        """Checker: single-exchange optimality at every populated prefix."""
        from .similarity import children_of, count_tree

        chosen = set(selected)
        universe = set(result_set)
        if not chosen <= universe:
            return False
        if not chosen:
            return True
        availability = count_tree(universe)
        picked = count_tree(chosen)
        depth = len(next(iter(chosen)))
        for prefix, _ in picked.items():
            if len(prefix) >= depth:
                continue
            child_prefixes = children_of(availability, prefix)
            counts = [picked.get(child, 0) for child in child_prefixes]
            caps = [availability[child] for child in child_prefixes]
            weights = [
                self.weight_of(len(prefix), prefix, child[-1])
                for child in child_prefixes
            ]
            if not is_weighted_balanced(counts, caps, weights):
                return False
        return True
