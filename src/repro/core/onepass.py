"""One-pass diversity algorithms (Section III).

Both variants make a single left-to-right scan of the merged posting list,
maintaining a diverse top-k of everything seen so far and *skipping* regions
that provably cannot contribute.  The paper gives the driver (Algorithm 1)
but leaves the ``Node`` data structure abstract; :class:`OnePassTree` is our
realisation, derived in DESIGN.md:

* ``add``/``remove`` keep the invariant that the kept set is a maximally
  diverse (min(k, seen))-subset of the scanned prefix: ``remove`` deletes
  the leaf whose root-to-leaf count vector is lexicographically largest (the
  most over-represented item), restricted to minimum-score leaves in the
  scored case.

* ``get_skip_id`` reasons about *where a future item could still improve*
  the kept set.  During the scan the tree always holds exactly k items, so a
  new item survives only through a rebalancing swap: evict one leaf from an
  over-represented *donor* child, insert the new item elsewhere.  Walking
  the current Dewey path, a new sibling branch at level ``j+1`` helps iff

  - **A(j)**: some child of the level-``j`` node holds >= 2 items, one of
    them evictable (the classic "two Civics, none of this model yet" swap,
    improving balance at level ``j+1``), or
  - **B(j')** for an ancestor ``j' < j``: some child *other than the current
    path's* holds >= (path child count + 2) evictable items — then any
    insertion below the path child improves the ancestor's balance, however
    deep it lands.

  The scan jumps to the next sibling branch of the deepest beneficial
  level; if no level can benefit, it terminates (unscored) or continues for
  strictly higher scores only (scored).  Evictability ("tier") means holding
  a minimum-score leaf — in the unscored case, any leaf.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..index.merged import MergedList
from .dewey import LEFT, DeweyId, next_id, successor

Prefix = Tuple[int, ...]

#: Score used for every tuple in the unscored variant (any constant works:
#: with all scores equal, scored diversity reduces to unscored diversity).
_UNSCORED = 0.0


class OnePassTree:
    """The paper's ``Node`` structure: a Dewey tree over the kept items.

    All bookkeeping is incremental so every operation is O(depth x fan-out):
    per-prefix item counts, child sets, and per-prefix counters of
    minimum-score ("evictable") leaves, keyed by score value.
    """

    def __init__(self, depth: int, k: int):
        if depth < 1:
            raise ValueError("Dewey depth must be positive")
        if k < 0:
            raise ValueError("k must be non-negative")
        self.depth = depth
        self.k = k
        self._scores: Dict[DeweyId, float] = {}
        self._counts: Dict[Prefix, int] = {}
        self._children: Dict[Prefix, Set[int]] = {}
        # prefix -> {score value -> number of leaves with that score below}.
        self._score_counts: Dict[Prefix, Dict[float, int]] = {}
        # Multiset of all kept scores, plus a cached minimum.
        self._score_totals: Dict[float, int] = {}
        self._cached_min: Optional[float] = None

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def num_items(self) -> int:
        return len(self._scores)

    def min_score(self) -> float:
        if not self._scores:
            raise ValueError("empty tree has no minimum score")
        if self._cached_min is None:
            self._cached_min = min(self._score_totals)
        return self._cached_min

    def results(self) -> List[DeweyId]:
        return sorted(self._scores)

    def scored_results(self) -> Dict[DeweyId, float]:
        return dict(self._scores)

    def add(self, dewey: DeweyId, score: float = _UNSCORED) -> None:
        if len(dewey) != self.depth:
            raise ValueError(f"expected depth {self.depth}, got {dewey}")
        if dewey in self._scores:
            return
        self._scores[dewey] = score
        self._score_totals[score] = self._score_totals.get(score, 0) + 1
        if self._cached_min is not None and score < self._cached_min:
            self._cached_min = score
        counts = self._counts
        children = self._children
        score_counts = self._score_counts
        for level in range(self.depth + 1):
            prefix = dewey[:level]
            counts[prefix] = counts.get(prefix, 0) + 1
            per_score = score_counts.get(prefix)
            if per_score is None:
                per_score = {}
                score_counts[prefix] = per_score
            per_score[score] = per_score.get(score, 0) + 1
            if level < self.depth:
                bucket = children.get(prefix)
                if bucket is None:
                    bucket = set()
                    children[prefix] = bucket
                bucket.add(dewey[level])

    def remove(self) -> Optional[DeweyId]:
        """Drop one most redundant minimum-score leaf; returns it.

        Descends from the root into a highest-count child that still holds a
        minimum-score leaf — the reverse-greedy step of the (bounded)
        water-fill, which keeps every prefix optimal for its shrunken
        cardinality (allocations are nested, DESIGN.md §3).
        """
        if not self._scores:
            return None
        theta = self.min_score()
        counts = self._counts
        children = self._children
        score_counts = self._score_counts
        prefix: Prefix = ()
        for _ in range(self.depth):
            best_component = None
            best_count = -1
            for component in children[prefix]:
                child = prefix + (component,)
                if not score_counts[child].get(theta, 0):
                    continue
                count = counts[child]
                if count > best_count:
                    best_component, best_count = component, count
            prefix = prefix + (best_component,)
        victim = prefix
        self._delete(victim, theta)
        return victim

    def _delete(self, victim: DeweyId, score: float) -> None:
        del self._scores[victim]
        remaining_total = self._score_totals[score] - 1
        if remaining_total:
            self._score_totals[score] = remaining_total
        else:
            del self._score_totals[score]
            if self._cached_min == score:
                self._cached_min = None
        counts = self._counts
        children = self._children
        score_counts = self._score_counts
        for level in range(self.depth, -1, -1):
            prefix = victim[:level]
            remaining = counts[prefix] - 1
            if remaining == 0 and level > 0:
                del counts[prefix]
                del score_counts[prefix]
                children.pop(prefix, None)
                bucket = children.get(victim[: level - 1])
                if bucket is not None:
                    bucket.discard(victim[level - 1])
            else:
                counts[prefix] = remaining
                per_score = score_counts[prefix]
                if per_score.get(score, 0) <= 1:
                    per_score.pop(score, None)
                else:
                    per_score[score] -= 1

    # ------------------------------------------------------------------
    # Skipping
    # ------------------------------------------------------------------
    def get_skip_id(self, current: DeweyId) -> Optional[DeweyId]:
        """Smallest ID beyond ``current`` that could still improve the kept
        set, assuming equal scores (i.e. within the minimum-score tier).
        ``None`` means no future ID can help: the scan may stop (unscored)
        or continue for strictly-higher scores only (scored).
        """
        if not self._scores:
            return None
        theta = self.min_score()
        counts = self._counts
        children = self._children
        score_counts = self._score_counts
        deepest = -1
        ancestor_benefit = False
        for level in range(self.depth):
            prefix = current[:level]
            path_child = current[: level + 1]
            path_count = counts.get(path_child, 0)
            swap_here = False        # A(level): new branch at level+1 helps
            swap_below = False       # B(level): insertions below path help
            for component in children.get(prefix, ()):
                child = prefix + (component,)
                count = counts.get(child, 0)
                if count < 2 or not score_counts[child].get(theta, 0):
                    continue
                swap_here = True
                if child != path_child and count >= path_count + 2:
                    swap_below = True
                    break
            if swap_here or ancestor_benefit:
                deepest = level
            ancestor_benefit = ancestor_benefit or swap_below
        if deepest < 0:
            return None
        if deepest == self.depth - 1:
            return successor(current)
        return next_id(current, deepest + 1, LEFT)


def one_pass_unscored(
    merged: MergedList, k: int, use_skips: bool = True
) -> List[DeweyId]:
    """Algorithm 1: unscored one-pass diverse top-k.

    ``use_skips=False`` disables the skip-ahead optimisation (the scan still
    terminates early when nothing can improve the kept set); used by the
    skipping ablation benchmark.
    """
    tree = OnePassTree(merged.depth, k)
    if k == 0:
        return []
    current = merged.first()
    # Fill phase (driver lines 1-6): accept the first k matches verbatim.
    while current is not None and tree.num_items() < k:
        tree.add(current)
        current = merged.next(successor(current))
    # Scan phase (driver lines 7-11): add, evict, skip.
    while current is not None:
        tree.add(current)
        tree.remove()
        skip_id = tree.get_skip_id(current)
        if skip_id is None:
            break
        step = successor(current)
        if not use_skips:
            skip_id = step
        elif step is None or skip_id > step:
            # A branch-sized jump, not a plain step.  getattr tolerates
            # wrapper views (exclusion, tracing) that predate the counter.
            merged.skip_jumps = getattr(merged, "skip_jumps", 0) + 1
        current = merged.next(skip_id)
    return tree.results()


def one_pass_scored(merged: MergedList, k: int) -> Dict[DeweyId, float]:
    """Scored one-pass (Section III-D): returns ``{dewey: score}``.

    Identical scan structure, but the skip boundary only applies to tuples
    tied at the current minimum kept score; anything scoring strictly higher
    is always picked up (the modified ``next`` call of Section III-D).
    """
    tree = OnePassTree(merged.depth, k)
    if k == 0:
        return {}
    current = merged.first()
    while current is not None and tree.num_items() < k:
        tree.add(current, merged.score(current))
        current = merged.next(successor(current))
    # ``current`` is now the first match that did NOT fit in the fill phase
    # (or None); process it, then continue with score-filtered steps.
    score = merged.score(current) if current is not None else 0.0
    while current is not None:
        tree.add(current, score)
        tree.remove()
        theta = tree.min_score()
        skip_id = tree.get_skip_id(current)
        start = successor(current)
        if start is not None and (skip_id is None or skip_id > start):
            # The tied-score tier is scanned from beyond ``start`` (or not
            # at all): a Section III-D skip, not a plain step.
            merged.skip_jumps = getattr(merged, "skip_jumps", 0) + 1
        step = merged.next_onepass_scored(start, skip_id, theta)
        if step is None:
            break
        current, score = step
    return tree.scored_results()
