"""Formal diversity semantics (Definitions 1 & 2) and checkers.

The paper's similarity ``SIM_rho(x, y)`` is 1 when x and y agree on the
attribute just below prefix ``rho``.  Minimising the all-pairs sum inside
every prefix is equivalent to requiring, at every node of the Dewey tree,
that the per-child counts of the answer form a *water-filling* allocation:

    minimise sum_i n_i^2   s.t.  sum_i n_i = b,  0 <= n_i <= N_i,

where ``N_i`` is the number of query results below child ``i``.  For this
separable convex program, integer single-exchange optimality is global
optimality, giving the O(children) local check used by :func:`is_diverse`.

The scored variant (``R_k^score``) adds per-child lower bounds: tuples
scoring strictly above the k-th best score are forced into every optimal
answer, so child ``i`` must take between ``f_i`` (its forced count) and
``f_i + A_i`` (forced plus score-tie availability).

These checkers *are* the paper's definitions, made executable; every
algorithm in :mod:`repro.core` is tested against them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from .dewey import DeweyId

Prefix = Tuple[int, ...]


def count_tree(deweys: Iterable[DeweyId]) -> Dict[Prefix, int]:
    """Number of IDs under every prefix (including the root ``()`` and the
    full IDs themselves)."""
    counts: Dict[Prefix, int] = defaultdict(int)
    for dewey in deweys:
        for length in range(len(dewey) + 1):
            counts[dewey[:length]] += 1
    return dict(counts)


def children_of(counts: Dict[Prefix, int], prefix: Prefix) -> List[Prefix]:
    """Child prefixes of ``prefix`` present in a count tree.

    O(size of tree); fine for the oracle/checker use cases.
    """
    depth = len(prefix) + 1
    return [
        candidate
        for candidate in counts
        if len(candidate) == depth and candidate[:-1] == prefix
    ]


def pair_objective(counts: Sequence[int]) -> int:
    """``sum_i n_i * (n_i - 1) / 2`` — the paper's all-pairs SIM sum for one
    node (unordered pairs)."""
    return sum(n * (n - 1) // 2 for n in counts)


def is_balanced(
    selected_counts: Sequence[int],
    availabilities: Sequence[int],
    lower_bounds: Sequence[int] | None = None,
) -> bool:
    """Water-filling optimality of one node's child counts.

    ``selected_counts[i]`` items were chosen below child ``i`` out of
    ``availabilities[i]`` candidates; ``lower_bounds[i]`` of them are forced
    (scored case; defaults to all-zero).  The allocation is optimal iff no
    single move of one unit from a donor child (count above its lower bound)
    to a receiver child (count below its availability) with a gap >= 2 exists.
    """
    if lower_bounds is None:
        lower_bounds = [0] * len(selected_counts)
    if not (len(selected_counts) == len(availabilities) == len(lower_bounds)):
        raise ValueError("count/availability/bound vectors must align")
    donors = [
        n
        for n, f in zip(selected_counts, lower_bounds)
        if n > f
    ]
    receivers = [
        n
        for n, cap in zip(selected_counts, availabilities)
        if n < cap
    ]
    for n, cap, f in zip(selected_counts, availabilities, lower_bounds):
        if n > cap:
            return False
        if n < f:
            return False
    if not donors or not receivers:
        return True
    return max(donors) <= min(receivers) + 1


def is_diverse(
    selected: Iterable[DeweyId],
    result_set: Iterable[DeweyId],
    k: int | None = None,
) -> bool:
    """Definition 2: is ``selected`` a diverse result set of ``result_set``?

    Checks (a) ``selected`` is a subset of ``result_set`` of the right size
    (``min(k, |result_set|)`` when ``k`` is given), and (b) water-filling
    optimality at every prefix.
    """
    selected = list(selected)
    universe = set(result_set)
    chosen = set(selected)
    if len(chosen) != len(selected):
        return False
    if not chosen <= universe:
        return False
    if k is not None and len(chosen) != min(k, len(universe)):
        return False
    if not chosen:
        return True
    availability = count_tree(universe)
    picked = count_tree(chosen)
    for prefix, budget in picked.items():
        if len(prefix) >= len(next(iter(chosen))):
            continue
        child_prefixes = children_of(availability, prefix)
        selected_counts = [picked.get(child, 0) for child in child_prefixes]
        availabilities = [availability[child] for child in child_prefixes]
        if not is_balanced(selected_counts, availabilities):
            return False
    return True


def balance_violations(
    selected: Iterable[DeweyId],
    result_set: Iterable[DeweyId],
) -> int:
    """Number of prefixes at which ``selected`` fails water-fill optimality.

    0 means ``selected`` is a diverse result set (for its own size); larger
    values quantify *how far* from diverse an approximate method landed —
    used to evaluate the retrieve-c*k-then-rerank baseline from the paper's
    introduction.
    """
    selected = list(selected)
    chosen = set(selected)
    if not chosen:
        return 0
    universe = set(result_set)
    if not chosen <= universe:
        raise ValueError("selected items must come from the result set")
    availability = count_tree(universe)
    picked = count_tree(chosen)
    depth = len(next(iter(chosen)))
    violations = 0
    for prefix in picked:
        if len(prefix) >= depth:
            continue
        child_prefixes = children_of(availability, prefix)
        selected_counts = [picked.get(child, 0) for child in child_prefixes]
        availabilities = [availability[child] for child in child_prefixes]
        if not is_balanced(selected_counts, availabilities):
            violations += 1
    return violations


def is_scored_diverse(
    selected: Iterable[DeweyId],
    scored_results: Dict[DeweyId, float],
    k: int,
) -> bool:
    """Scored Definition 2: maximal total score, and diverse inside the
    lowest-score tie tier (with higher-score tuples forced)."""
    selected = list(selected)
    chosen = set(selected)
    if len(chosen) != len(selected):
        return False
    if not chosen <= set(scored_results):
        return False
    size = min(k, len(scored_results))
    if len(chosen) != size:
        return False
    if not chosen:
        return True
    ranked = sorted(scored_results.values(), reverse=True)
    theta = ranked[size - 1]
    best_total = sum(ranked[:size])
    total = sum(scored_results[dewey] for dewey in chosen)
    if abs(total - best_total) > 1e-9:
        return False
    forced = {d for d, s in scored_results.items() if s > theta}
    tier = {d for d, s in scored_results.items() if abs(s - theta) <= 1e-9}
    if not forced <= chosen:
        return False
    forced_counts = count_tree(forced)
    tier_counts = count_tree(tier)
    picked = count_tree(chosen)
    depth = len(next(iter(chosen)))
    for prefix, budget in picked.items():
        if len(prefix) >= depth:
            continue
        child_prefixes = sorted(
            set(children_of(forced_counts, prefix))
            | set(children_of(tier_counts, prefix))
        )
        selected_counts = [picked.get(child, 0) for child in child_prefixes]
        lower = [forced_counts.get(child, 0) for child in child_prefixes]
        caps = [
            forced_counts.get(child, 0) + tier_counts.get(child, 0)
            for child in child_prefixes
        ]
        if not is_balanced(selected_counts, caps, lower):
            return False
    return True
