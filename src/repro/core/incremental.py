"""Live diverse views: keep a diverse top-k current as listings arrive.

Online marketplaces ingest listings continuously.  Instead of re-running a
diverse top-k on every page view, a :class:`DiverseView` subscribes to the
insert stream and maintains the answer incrementally, reusing the one-pass
maintenance structure (:class:`~repro.core.onepass.OnePassTree`): each
matching insert is an ``add``; once the view holds k items, an ``add`` is
followed by the eviction of the most redundant minimum-score leaf — the
same exchange step that makes the one-pass scan correct, so the view is
always a maximally diverse (scored-diverse) top-k of every matching tuple
ever offered to it.

The view's universe is *its own insert stream* (everything offered since
creation or :meth:`refresh`); `refresh()` re-seeds from the engine's index
so a view can also track an existing relation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Union

from ..index.merged import MergedList
from ..query.parser import parse_query
from ..query.query import Query
from .dewey import DeweyId
from .engine import DiversityEngine
from .onepass import OnePassTree
from .result import ResultItem


class DiverseView:
    """An incrementally maintained diverse top-k for one query."""

    def __init__(
        self,
        engine: DiversityEngine,
        query: Union[Query, str],
        k: int,
        scored: bool = False,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        if isinstance(query, str):
            query = parse_query(query)
        self._engine = engine
        self._query = query
        self._k = k
        self._scored = scored
        self._tree = OnePassTree(engine.index.depth, k)
        self._offered = 0
        self._accepted = 0
        self.refresh()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def offer_row(self, row: Union[Mapping[str, Any], tuple, list]) -> Optional[int]:
        """Insert a new listing into the relation + index, then offer it to
        the view.  Returns the new rid, or ``None`` if it did not match the
        view's query."""
        relation = self._engine.relation
        rid = relation.insert(row)
        self._engine.index.insert(rid)
        return rid if self.offer_rid(rid) else None

    def offer_rid(self, rid: int) -> bool:
        """Offer an already indexed row; returns True if it matched (and was
        therefore considered, though it may have been evicted again)."""
        relation = self._engine.relation
        mapping = relation.row_dict(rid)
        if not self._query.matches(mapping):
            return False
        self._offered += 1
        dewey = self._engine.index.dewey.dewey_of(rid)
        score = self._query.score(mapping) if self._scored else 0.0
        before = self._tree.num_items()
        self._tree.add(dewey, score)
        if self._tree.num_items() > self._k:
            evicted = self._tree.remove()
            if evicted != dewey:
                self._accepted += 1
        elif self._tree.num_items() > before:
            self._accepted += 1
        return True

    def retract_rid(self, rid: int) -> bool:
        """Drop a (deleted) row from the view if it is currently shown.

        Returns True when the view shrank; the caller decides whether to
        :meth:`refresh` (rescan to refill the freed slot) or leave the page
        one item short until the next natural update.
        """
        try:
            dewey = self._engine.index.dewey.dewey_of(rid)
        except KeyError:
            # Already unindexed: fall back to matching by reconstruction.
            return False
        return self.retract_dewey(dewey)

    def retract_dewey(self, dewey: DeweyId) -> bool:
        """Drop a shown Dewey ID from the view (see :meth:`retract_rid`)."""
        scores = self._tree.scored_results()
        if dewey not in scores:
            return False
        self._tree._delete(dewey, scores[dewey])  # noqa: SLF001
        return True

    def refresh(self) -> None:
        """Rebuild the view from the engine's current index contents."""
        self._tree = OnePassTree(self._engine.index.depth, self._k)
        self._offered = 0
        self._accepted = 0
        merged = MergedList(self._query, self._engine.index)
        for dewey in _scan(merged):
            self._offered += 1
            score = merged.score(dewey) if self._scored else 0.0
            self._tree.add(dewey, score)
            if self._tree.num_items() > self._k:
                self._tree.remove()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._k

    @property
    def query(self) -> Query:
        return self._query

    @property
    def offered(self) -> int:
        """Matching tuples seen since the last refresh."""
        return self._offered

    def __len__(self) -> int:
        return self._tree.num_items()

    def deweys(self) -> List[DeweyId]:
        return self._tree.results()

    def scores(self) -> Dict[DeweyId, float]:
        return self._tree.scored_results()

    def items(self) -> List[ResultItem]:
        dewey_index = self._engine.index.dewey
        relation = self._engine.relation
        scores = self._tree.scored_results()
        out = []
        for dewey in self._tree.results():
            rid = dewey_index.rid_of(dewey)
            out.append(
                ResultItem(
                    dewey=dewey,
                    rid=rid,
                    values=relation.row_dict(rid),
                    score=scores[dewey] if self._scored else None,
                )
            )
        return out


def _scan(merged: MergedList):
    from .dewey import successor

    current = merged.first()
    while current is not None:
        yield current
        current = merged.next(successor(current))
