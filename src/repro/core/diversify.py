"""Exact diverse-subset selection (the gold standard / post-processing step).

Given the *full* result set, these functions compute a maximally diverse
top-k directly from the definitions: top-down water-filling over the Dewey
tree.  They serve two roles:

* the selection step of the ``Naive`` baseline (evaluate everything, then
  pick a diverse subset), and
* the oracle against which the one-pass and probing algorithms are verified.

Both functions are deterministic: ties are resolved toward smaller Dewey
IDs, so tests can compare allocations (not just objectives) when convenient.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence

from .dewey import DeweyId


def waterfill(
    budget: int,
    capacities: Sequence[int],
    lower_bounds: Sequence[int] | None = None,
) -> List[int]:
    """Balanced integer allocation minimising ``sum n_i^2``.

    Distributes ``budget`` units over bins with the given capacities (and
    optional forced lower bounds), always topping up a currently-smallest
    bin.  Raises ``ValueError`` for infeasible budgets.
    """
    if lower_bounds is None:
        lower_bounds = [0] * len(capacities)
    if len(lower_bounds) != len(capacities):
        raise ValueError("capacity/lower-bound vectors must align")
    base = sum(lower_bounds)
    room = sum(capacities)
    if not base <= budget <= room:
        raise ValueError(
            f"infeasible budget {budget}: bounds give [{base}, {room}]"
        )
    counts = list(lower_bounds)
    heap = [
        (counts[i], i)
        for i in range(len(capacities))
        if counts[i] < capacities[i]
    ]
    heapq.heapify(heap)
    remaining = budget - base
    while remaining > 0:
        count, i = heapq.heappop(heap)
        counts[i] = count + 1
        remaining -= 1
        if counts[i] < capacities[i]:
            heapq.heappush(heap, (counts[i], i))
    return counts


def diverse_subset(deweys: Iterable[DeweyId], k: int) -> List[DeweyId]:
    """A maximally diverse ``min(k, n)``-subset of ``deweys`` (Definition 2)."""
    ids = sorted(deweys)
    if k < 0:
        raise ValueError("k must be non-negative")
    budget = min(k, len(ids))
    if budget == 0:
        return []
    return sorted(_select(ids, 0, budget))


def _select(sorted_ids: List[DeweyId], level: int, budget: int) -> List[DeweyId]:
    if budget >= len(sorted_ids):
        return list(sorted_ids)
    if level >= len(sorted_ids[0]):
        return sorted_ids[:budget]
    groups = _group(sorted_ids, level)
    allocation = waterfill(budget, [len(group) for group in groups])
    chosen: List[DeweyId] = []
    for group, share in zip(groups, allocation):
        if share:
            chosen.extend(_select(group, level + 1, share))
    return chosen


def scored_diverse_subset(
    scores: Dict[DeweyId, float], k: int
) -> List[DeweyId]:
    """A maximally diverse maximal-score ``min(k, n)``-subset (scored
    Definition 2): all tuples above the k-th best score, plus a diverse
    completion from the tied tier."""
    if k < 0:
        raise ValueError("k must be non-negative")
    budget = min(k, len(scores))
    if budget == 0:
        return []
    ranked = sorted(scores.values(), reverse=True)
    theta = ranked[budget - 1]
    forced = sorted(d for d, s in scores.items() if s > theta)
    tier = sorted(d for d, s in scores.items() if abs(s - theta) <= 1e-9)
    return sorted(_select_scored(forced, tier, 0, budget))


def _select_scored(
    forced: List[DeweyId], tier: List[DeweyId], level: int, budget: int
) -> List[DeweyId]:
    if budget < len(forced):
        raise ValueError("budget below forced count: scores are inconsistent")
    if budget == len(forced):
        return list(forced)
    if budget >= len(forced) + len(tier):
        return forced + tier
    if level >= _depth(forced, tier):
        return forced + tier[: budget - len(forced)]
    forced_groups = _group_map(forced, level)
    tier_groups = _group_map(tier, level)
    keys = sorted(set(forced_groups) | set(tier_groups))
    lower = [len(forced_groups.get(key, ())) for key in keys]
    caps = [
        len(forced_groups.get(key, ())) + len(tier_groups.get(key, ()))
        for key in keys
    ]
    allocation = waterfill(budget, caps, lower)
    chosen: List[DeweyId] = []
    for key, share in zip(keys, allocation):
        if share:
            chosen.extend(
                _select_scored(
                    list(forced_groups.get(key, ())),
                    list(tier_groups.get(key, ())),
                    level + 1,
                    share,
                )
            )
    return chosen


def _depth(*id_lists: List[DeweyId]) -> int:
    for ids in id_lists:
        if ids:
            return len(ids[0])
    return 0


def _group(sorted_ids: List[DeweyId], level: int) -> List[List[DeweyId]]:
    """Split component-``level``-sorted IDs into per-component runs."""
    groups: List[List[DeweyId]] = []
    current_key = object()
    for dewey in sorted_ids:
        key = dewey[level]
        if key != current_key:
            groups.append([])
            current_key = key
        groups[-1].append(dewey)
    return groups


def _group_map(ids: List[DeweyId], level: int) -> Dict[int, List[DeweyId]]:
    groups: Dict[int, List[DeweyId]] = defaultdict(list)
    for dewey in ids:
        groups[dewey[level]].append(dewey)
    return dict(groups)
