"""Execution tracing: watch how an algorithm touches the index.

Wrapping a :class:`~repro.index.merged.MergedList` in a
:class:`TracingMergedList` records every ``next`` / ``next_scored`` probe
(bound, direction, threshold, result) without changing behaviour.  The
trace makes the paper's efficiency arguments *visible*: one-pass traces
show monotonically increasing bounds with branch-sized gaps (the skips),
probing traces show at most 2k bidirectional probes.

Used by the documentation examples and by tests that pin down access
patterns (e.g. the single-pass property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..index.merged import MergedList
from .dewey import LEFT, DeweyId, common_prefix_len, format_dewey


@dataclass(frozen=True)
class ProbeEvent:
    """One recorded index access."""

    kind: str                      # "next" | "next_scored" | "next_onepass"
    bound: DeweyId
    direction: str
    result: Optional[DeweyId]
    theta: Optional[float] = None

    def describe(self) -> str:
        suffix = f" theta={self.theta:g}" if self.theta is not None else ""
        result = format_dewey(self.result) if self.result else "NULL"
        return (
            f"{self.kind}({format_dewey(self.bound)}, {self.direction}"
            f"{suffix}) -> {result}"
        )


class TracingMergedList:
    """Drop-in MergedList wrapper that records every probe."""

    def __init__(self, merged: MergedList):
        self._merged = merged
        self.events: List[ProbeEvent] = []
        # Drivers bump this on the list they were handed (see
        # repro.observability.probes); give the wrapper its own slot so it
        # stays a drop-in for the always-on accounting too.
        self.skip_jumps = 0

    # -- delegated surface -------------------------------------------------
    @property
    def depth(self) -> int:
        return self._merged.depth

    @property
    def query(self):
        return self._merged.query

    @property
    def next_calls(self) -> int:
        return self._merged.next_calls

    @property
    def scored_next_calls(self) -> int:
        return self._merged.scored_next_calls

    @property
    def rows_touched(self) -> int:
        return self._merged.rows_touched

    @property
    def scan_restarts(self) -> int:
        return self._merged.scan_restarts

    def contains(self, dewey: DeweyId) -> bool:
        return self._merged.contains(dewey)

    def score(self, dewey: DeweyId) -> float:
        return self._merged.score(dewey)

    def max_score(self) -> float:
        return self._merged.max_score()

    def weighted_leaves(self):
        return self._merged.weighted_leaves()

    def first(self) -> Optional[DeweyId]:
        return self.next((0,) * self.depth, LEFT)

    # -- recorded operations ------------------------------------------------
    def next(self, bound: DeweyId, direction: str = LEFT) -> Optional[DeweyId]:
        result = self._merged.next(bound, direction)
        self.events.append(ProbeEvent("next", bound, direction, result))
        return result

    def next_scored(self, bound, direction, theta, strict=False):
        result = self._merged.next_scored(bound, direction, theta, strict)
        self.events.append(
            ProbeEvent("next_scored", bound, direction, result, theta)
        )
        return result

    def next_onepass_scored(self, start, skip_id, min_score):
        step = self._merged.next_onepass_scored(start, skip_id, min_score)
        result = step[0] if step is not None else None
        self.events.append(
            ProbeEvent("next_onepass", start, LEFT, result, min_score)
        )
        return step

    # -- analysis -----------------------------------------------------------
    def render(self) -> str:
        """The trace as one line per probe."""
        return "\n".join(
            f"{index:4d}  {event.describe()}"
            for index, event in enumerate(self.events)
        )

    def probe_count(self) -> int:
        return len(self.events)

    def skip_levels(self) -> List[int]:
        """For consecutive LEFT probes, the Dewey level at which the scan
        jumped (0 = new top-level branch).  Large-level jumps are plain
        steps; small levels are the one-pass branch skips."""
        levels: List[int] = []
        previous: Optional[DeweyId] = None
        for event in self.events:
            if event.direction != LEFT or event.result is None:
                previous = None
                continue
            if previous is not None:
                levels.append(common_prefix_len(previous, event.result))
            previous = event.result
        return levels
