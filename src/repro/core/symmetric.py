"""Symmetric score/diversity trade-off (Section VII's second extension).

The paper's scored diversity is *lexicographic*: score strictly dominates,
and diversity only arbitrates among tuples tied at the k-th score.  Its
conclusion sketches an alternative: "exploring an alternative definition of
diversity that provides a more symmetric treatment of diversity and score
thereby ensuring diversity across different scores."

This module implements that extension as a submodular trade-off:

    F(S) = sum_{x in S} score(x)
         + sum_{levels l} weight_l * |{distinct length-l prefixes in S}|

The second term rewards *coverage* of the Dewey tree — each newly
represented make (level 1), model (level 2), ... earns its level weight
once.  Coverage is monotone submodular and the score term is modular, so
lazy greedy selection (:func:`greedy_symmetric_select`) is the classic
(1 - 1/e)-approximation; for the common case where level weights dominate
pairwise score gaps it is exact.

Compared to the paper's definition: a strong-but-redundant tuple can now
lose its slot to a slightly weaker tuple from an unrepresented branch —
diversity across different scores, as promised.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .dewey import DeweyId

Prefix = Tuple[int, ...]


class SymmetricObjective:
    """``F(S)``: total score plus weighted Dewey-tree coverage."""

    def __init__(self, level_weights: Sequence[float]):
        if not level_weights:
            raise ValueError("need at least one level weight")
        if any(w < 0 for w in level_weights):
            raise ValueError("level weights must be non-negative")
        self.level_weights = tuple(float(w) for w in level_weights)

    def coverage_gain(self, covered: Set[Prefix], dewey: DeweyId) -> float:
        """Marginal coverage value of adding ``dewey`` given covered
        prefixes."""
        gain = 0.0
        for level, weight in enumerate(self.level_weights, start=1):
            if level > len(dewey):
                break
            if weight and dewey[:level] not in covered:
                gain += weight
        return gain

    def cover(self, covered: Set[Prefix], dewey: DeweyId) -> None:
        for level in range(1, min(len(self.level_weights), len(dewey)) + 1):
            covered.add(dewey[:level])

    def value(
        self, selected: Iterable[DeweyId], scores: Mapping[DeweyId, float]
    ) -> float:
        """``F(S)`` evaluated from scratch."""
        selected = list(selected)
        total = sum(scores.get(dewey, 0.0) for dewey in selected)
        for level, weight in enumerate(self.level_weights, start=1):
            if not weight:
                continue
            distinct = {dewey[:level] for dewey in selected if len(dewey) >= level}
            total += weight * len(distinct)
        return total


def greedy_symmetric_select(
    scores: Mapping[DeweyId, float],
    k: int,
    objective: SymmetricObjective,
) -> List[DeweyId]:
    """Lazy-greedy maximisation of ``F`` over size-k subsets.

    Deterministic: ties break toward higher score, then smaller Dewey ID.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    budget = min(k, len(scores))
    if budget == 0:
        return []
    covered: Set[Prefix] = set()
    chosen: List[DeweyId] = []
    # Lazy greedy: heap of (-upper bound, tiebreak, dewey, stamp).  Upper
    # bounds only shrink as coverage grows (submodularity), so a popped
    # entry whose bound is stale gets re-pushed with its fresh gain.
    counter = itertools.count()
    heap = []
    for dewey, score in scores.items():
        bound = score + objective.coverage_gain(covered, dewey)
        heapq.heappush(heap, (-bound, dewey, next(counter), -1))
    generation = 0
    while heap and len(chosen) < budget:
        neg_bound, dewey, _, stamp = heapq.heappop(heap)
        if stamp == generation:
            chosen.append(dewey)
            objective.cover(covered, dewey)
            generation += 1
            continue
        fresh = scores[dewey] + objective.coverage_gain(covered, dewey)
        heapq.heappush(heap, (-fresh, dewey, next(counter), generation))
    return sorted(chosen)


def uniform_level_weights(depth: int, strength: float) -> List[float]:
    """Equal weight at every attribute level (none at the uniqueness level)."""
    if depth < 1:
        raise ValueError("depth must be positive")
    return [strength] * max(0, depth - 1) + [0.0]


def hierarchy_level_weights(depth: int, top: float, decay: float = 0.5) -> List[float]:
    """Geometrically decaying weights: varying Make matters more than Color."""
    if not 0 < decay <= 1:
        raise ValueError("decay must be in (0, 1]")
    weights = []
    weight = top
    for _ in range(max(0, depth - 1)):
        weights.append(weight)
        weight *= decay
    return weights + [0.0]


def symmetric_search(
    engine,
    query,
    k: int,
    level_weights: Optional[Sequence[float]] = None,
    strength: float = 1.0,
) -> List[Tuple[DeweyId, float]]:
    """Convenience wrapper: evaluate the query, trade off score vs coverage.

    Being a *selection* definition (like the paper's Definition 2, it needs
    the candidate pool), this runs over the materialised result set; the
    streaming algorithms keep the paper's lexicographic semantics.
    Returns ``[(dewey, score)]`` sorted by Dewey ID.
    """
    from ..index.merged import MergedList
    from ..query.parser import parse_query
    from .baselines import collect_all_scored

    if isinstance(query, str):
        query = parse_query(query)
    merged = MergedList(query, engine.index)
    scores = collect_all_scored(merged)
    depth = engine.index.depth
    if level_weights is None:
        level_weights = hierarchy_level_weights(depth, top=strength)
    objective = SymmetricObjective(level_weights)
    chosen = greedy_symmetric_select(scores, k, objective)
    return [(dewey, scores[dewey]) for dewey in chosen]
