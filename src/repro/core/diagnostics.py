"""Result-set quality diagnostics: the "diversity report card".

Given an answer and the query's full result set, the report measures what a
product owner would ask about a search page:

* per-level **distinct-value counts**: how many makes / models / colors the
  page shows, against how many the matching inventory offers;
* **balance violations**: prefixes where the answer is not a water-filling
  allocation (0 for any exact algorithm's output);
* the **pair objective**: the paper's raw ``SIM`` sum at each level.

Used by the examples and handy when tuning weighted or symmetric variants,
where "how diverse is this, really?" has no single yes/no answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..index.dewey_index import DeweyIndex
from .dewey import DeweyId
from .similarity import balance_violations, count_tree, pair_objective


@dataclass(frozen=True)
class LevelReport:
    """Diversity statistics for one Dewey level."""

    level: int
    attribute: str
    distinct_shown: int
    distinct_available: int
    pair_objective: int

    @property
    def coverage(self) -> float:
        """Fraction of the available distinct values represented."""
        if self.distinct_available == 0:
            return 1.0
        return self.distinct_shown / self.distinct_available


@dataclass(frozen=True)
class DiversityReport:
    """Full report card for one answer set."""

    size: int
    result_size: int
    violations: int
    levels: List[LevelReport]

    @property
    def is_exactly_diverse(self) -> bool:
        return self.violations == 0

    def render(self) -> str:
        lines = [
            f"answer size {self.size} of {self.result_size} matches; "
            f"balance violations: {self.violations}"
            + (" (exactly diverse)" if self.is_exactly_diverse else ""),
        ]
        for level in self.levels:
            lines.append(
                f"  level {level.level} ({level.attribute}): "
                f"{level.distinct_shown}/{level.distinct_available} distinct "
                f"values shown ({level.coverage:.0%}), "
                f"pair objective {level.pair_objective}"
            )
        return "\n".join(lines)


def diversity_report(
    selected: Iterable[DeweyId],
    result_set: Iterable[DeweyId],
    dewey_index: DeweyIndex,
) -> DiversityReport:
    """Build the report card for ``selected`` against the full results."""
    selected = list(selected)
    full = list(result_set)
    ordering = dewey_index.ordering
    chosen_counts = count_tree(selected)
    available_counts = count_tree(full)
    levels: List[LevelReport] = []
    for level in range(1, len(ordering) + 1):
        attribute = ordering.attribute_at(level)
        shown = {prefix for prefix in chosen_counts if len(prefix) == level}
        available = {prefix for prefix in available_counts if len(prefix) == level}
        # Pair objective at this level: pairs agreeing on the level's value
        # within each parent (the paper's SIM_rho sum for prefixes of
        # length level-1).
        objective = 0
        parents = {prefix[:-1] for prefix in shown}
        for parent in parents:
            child_counts = [
                count
                for prefix, count in chosen_counts.items()
                if len(prefix) == level and prefix[:-1] == parent
            ]
            objective += pair_objective(child_counts)
        levels.append(
            LevelReport(
                level=level,
                attribute=attribute,
                distinct_shown=len(shown),
                distinct_available=len(available),
                pair_objective=objective,
            )
        )
    return DiversityReport(
        size=len(selected),
        result_size=len(full),
        violations=balance_violations(selected, full) if selected else 0,
        levels=levels,
    )


def compare_reports(
    reports: Dict[str, DiversityReport]
) -> str:
    """Side-by-side coverage table for several answers (e.g. algorithms)."""
    if not reports:
        return "(no reports)"
    names = list(reports)
    first = reports[names[0]]
    header = ["level"] + names
    rows = []
    for index, level in enumerate(first.levels):
        row = [f"{level.attribute}"]
        for name in names:
            entry = reports[name].levels[index]
            row.append(f"{entry.distinct_shown}/{entry.distinct_available}")
        rows.append(row)
    rows.append(
        ["violations"] + [str(reports[name].violations) for name in names]
    )
    widths = [
        max(len(header[c]), *(len(row[c]) for row in rows))
        for c in range(len(header))
    ]
    lines = ["  ".join(header[c].ljust(widths[c]) for c in range(len(header)))]
    lines.append("  ".join("-" * widths[c] for c in range(len(header))))
    for row in rows:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in range(len(header))))
    return "\n".join(lines)
