"""The web-search baseline: retrieve c*k results, then rerank for diversity.

The paper's introduction dismisses the method "commonly used in web search
engines: in order to show k results to the user, first retrieve c x k
results (for some c > 1) and then pick a diverse subset from these results
[MMR et al.] ... it does not work as well for structured listings since
there are many more duplicates.  Thus, c would have to be of the order of
1000s or 10000s."

This module makes that argument executable:

* :func:`mmr_select` — Maximal Marginal Relevance (Carbonell & Goldstein,
  reference [3]) over Dewey-prefix similarity;
* :func:`retrieve_ck_diverse` — the full baseline: scan the first ``c * k``
  matches in document order, MMR-rerank, return k;
* :func:`evaluate_ck` — measures, for growing c, how far the baseline's
  output remains from true diversity (water-fill violations), which the
  ``abl-cxk`` benchmark sweeps.

The similarity between two tuples is the natural structured analogue of
document similarity: the fraction of leading diversity attributes they
share (``common Dewey prefix / depth``), which is exactly the hierarchy the
paper's SIM definitions walk.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..index.merged import MergedList
from .dewey import DeweyId, common_prefix_len, successor
from .similarity import balance_violations


def dewey_similarity(a: DeweyId, b: DeweyId) -> float:
    """Shared-prefix fraction in [0, 1]; 1.0 only for identical IDs."""
    if len(a) != len(b):
        raise ValueError("Dewey IDs must have equal depth")
    return common_prefix_len(a, b) / len(a)


def mmr_select(
    candidates: Sequence[DeweyId],
    k: int,
    relevance: Optional[Dict[DeweyId, float]] = None,
    trade_off: float = 0.5,
) -> List[DeweyId]:
    """Maximal Marginal Relevance selection of ``min(k, n)`` candidates.

    Greedy: repeatedly add the candidate maximising
    ``trade_off * rel(x) - (1 - trade_off) * max_{s in S} SIM(x, s)``.
    With no relevance (unscored), this is a pure farthest-first diversity
    heuristic.  Deterministic: document order breaks ties.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if not 0.0 <= trade_off <= 1.0:
        raise ValueError("trade_off must be in [0, 1]")
    pool = list(dict.fromkeys(candidates))
    chosen: List[DeweyId] = []
    if not pool or k == 0:
        return chosen
    rel = relevance or {}

    def gain(candidate: DeweyId) -> float:
        relevance_term = trade_off * rel.get(candidate, 0.0)
        if not chosen:
            return relevance_term
        redundancy = max(dewey_similarity(candidate, s) for s in chosen)
        return relevance_term - (1.0 - trade_off) * redundancy

    while pool and len(chosen) < k:
        best = max(pool, key=lambda c: (gain(c), tuple(-x for x in c)))
        chosen.append(best)
        pool.remove(best)
    return sorted(chosen)


def retrieve_ck_diverse(
    merged: MergedList,
    k: int,
    c: int,
    trade_off: float = 0.0,
) -> List[DeweyId]:
    """The introduction's baseline: first ``c * k`` matches + MMR rerank.

    ``trade_off=0`` is the unscored case (pure diversity reranking).
    """
    if c < 1:
        raise ValueError("c must be at least 1")
    budget = c * k
    window: List[DeweyId] = []
    current = merged.first()
    while current is not None and len(window) < budget:
        window.append(current)
        current = merged.next(successor(current))
    return mmr_select(window, k, trade_off=trade_off)


def evaluate_ck(
    merged: MergedList,
    full_results: Iterable[DeweyId],
    k: int,
    c_values: Sequence[int],
) -> Dict[int, int]:
    """Water-fill violations of the c*k baseline for each window factor c.

    Returns ``{c: violations}``; 0 means the window happened to contain a
    truly diverse k-subset *and* MMR found it.  On duplicate-heavy
    structured data, small c leaves entire branches outside the window, so
    violations persist until c approaches |results| / k — the paper's
    argument, quantified.
    """
    full = list(full_results)
    report: Dict[int, int] = {}
    for c in c_values:
        selected = retrieve_ck_diverse(merged, k, c)
        report[c] = balance_violations(selected, full)
    return report
