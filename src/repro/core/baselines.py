"""Baseline algorithms from the experimental study (Section V).

* ``Naive``  — evaluate the full query, then post-process a diverse subset
  (the paper times only the evaluation phase; see the harness).
* ``Basic``  — return the first k answers with no diversity guarantee
  (unscored: first k in document order; scored: plain WAND top-k).
* ``MultQ``  — rewrite the query into one sub-query per distinct attribute
  value combination (the introduction's "issue a query to see if there are
  any Honda Civic convertibles, ... Honda Accord convertibles, ...") and
  merge.  Most sub-queries return empty, which is exactly why the paper
  dismisses it; we enumerate the *global* vocabulary per level to reproduce
  that cost profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..index.inverted import InvertedIndex
from ..index.merged import MergedList
from ..index.wand import wand_topk
from ..query.query import Query
from .dewey import DeweyId, successor
from .diversify import diverse_subset, scored_diverse_subset

#: MultQ enumerates value combinations for this many leading diversity
#: attributes by default; deeper levels are handled by the final
#: post-processing trim.  Two levels already reproduces the paper's
#: "Make x Model" example and its cost explosion.
MULTQ_DEFAULT_LEVELS = 2


def collect_all(merged: MergedList) -> List[DeweyId]:
    """Materialise every match in document order (the Naive evaluation)."""
    matches: List[DeweyId] = []
    current = merged.first()
    while current is not None:
        matches.append(current)
        current = merged.next(successor(current))
    return matches


def collect_all_scored(merged: MergedList) -> Dict[DeweyId, float]:
    """Every match with its score (the scored Naive evaluation)."""
    return {dewey: merged.score(dewey) for dewey in collect_all(merged)}


def naive_unscored(merged: MergedList, k: int) -> List[DeweyId]:
    """UNaive: full evaluation + exact diverse post-processing."""
    return diverse_subset(collect_all(merged), k)


def naive_scored(merged: MergedList, k: int) -> Dict[DeweyId, float]:
    """SNaive: full scored evaluation + exact scored-diverse selection."""
    scored = collect_all_scored(merged)
    chosen = scored_diverse_subset(scored, k)
    return {dewey: scored[dewey] for dewey in chosen}


def basic_unscored(merged: MergedList, k: int) -> List[DeweyId]:
    """UBasic: the first k matches in document order (no diversity)."""
    results: List[DeweyId] = []
    current = merged.first()
    while current is not None and len(results) < k:
        results.append(current)
        current = merged.next(successor(current))
    return results


def basic_scored(merged: MergedList, k: int) -> Dict[DeweyId, float]:
    """SBasic: plain WAND top-k by score (no diversity)."""
    return dict(wand_topk(merged, k))


def multq_unscored(
    index: InvertedIndex,
    query: Query,
    k: int,
    levels: int = MULTQ_DEFAULT_LEVELS,
) -> Tuple[List[DeweyId], int]:
    """MultQ: returns ``(diverse results, number of sub-queries issued)``.

    Recursively enumerates the global vocabulary of the first ``levels``
    diversity attributes, issuing ``query AND attr = value`` for every
    combination (including combinations that return nothing), fetching up to
    k matches from each non-empty one, and trimming the union with the exact
    post-processor.
    """
    if k <= 0:
        return [], 0
    attributes = list(index.ordering.attributes[: max(0, levels)])
    candidates, issued = _multq_recurse(index, query, k, attributes)
    return diverse_subset(candidates, k), issued


def _multq_recurse(
    index: InvertedIndex,
    query: Query,
    k: int,
    attributes: List[str],
) -> Tuple[List[DeweyId], int]:
    if not attributes:
        merged = MergedList(query, index)
        return basic_unscored(merged, k), 1
    attribute, rest = attributes[0], attributes[1:]
    collected: List[DeweyId] = []
    issued = 0
    for value in sorted(index.vocabulary(attribute), key=repr):
        sub_query = query & Query.scalar(attribute, value)
        sub_results, sub_issued = _multq_recurse(index, sub_query, k, rest)
        issued += sub_issued
        collected.extend(sub_results)
    return collected, issued


def multq_scored(
    index: InvertedIndex,
    query: Query,
    k: int,
    levels: int = MULTQ_DEFAULT_LEVELS,
) -> Tuple[Dict[DeweyId, float], int]:
    """Scored MultQ: per-combination WAND top-k, merged and re-selected."""
    if k <= 0:
        return {}, 0
    attributes = list(index.ordering.attributes[: max(0, levels)])
    candidates, issued = _multq_scored_recurse(index, query, k, attributes)
    chosen = scored_diverse_subset(candidates, k)
    return {dewey: candidates[dewey] for dewey in chosen}, issued


def _multq_scored_recurse(
    index: InvertedIndex,
    query: Query,
    k: int,
    attributes: List[str],
) -> Tuple[Dict[DeweyId, float], int]:
    if not attributes:
        merged = MergedList(query, index)
        return dict(wand_topk(merged, k)), 1
    attribute, rest = attributes[0], attributes[1:]
    collected: Dict[DeweyId, float] = {}
    issued = 0
    for value in sorted(index.vocabulary(attribute), key=repr):
        # Weight 0 so the rewrite predicate filters without skewing scores.
        sub_query = query & Query.scalar(attribute, value, weight=0.0)
        sub_results, sub_issued = _multq_scored_recurse(index, sub_query, k, rest)
        issued += sub_issued
        collected.update(sub_results)
    return collected, issued
