"""The probing data structure (Algorithm 3, plus the scored extensions).

Each :class:`ProbeNode` covers one Dewey-tree region (a prefix).  While a
node's *frontier* is open (``edge[LEFT] <= edge[RIGHT]``), the unexplored gap
between its edges is probed bidirectionally, alternating sides; once the
edges cross, the node is fully branch-discovered and further probes are
steered to the child with the fewest items (the water-filling phase).

Invariants (Section IV-A):

* whenever ``id`` is in a node's region, it is either inside one of the
  node's children or between ``edge[LEFT]`` and ``edge[RIGHT]``;
* a probe ``(probeId, dir)`` issued by a node returns an id inside that
  node — *except* when the gap holds no matches, which the paper's
  pseudocode leaves to its full version; the driver then closes the frontier
  explicitly (:meth:`close_frontier`) and re-probes.

Scored extensions (Section IV-B): items inserted with direction ``MIDDLE``
carry no frontier information, and frontier probes that land inside an
already-populated branch are cached as *tentative* — they are only
*confirmed* (counted) when the min-child descent later proves them helpful.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .dewey import (
    LEFT,
    MIDDLE,
    RIGHT,
    DeweyId,
    next_id,
    region_bounds,
    toggle,
)

#: A probe request: (id to pass to ``mergedList.next``, direction, the node
#: that issued it — needed to close the frontier on an empty gap, and
#: ``None`` direction-MIDDLE probes confirm the id without any index call).
ProbeRequest = Tuple[DeweyId, str, "ProbeNode"]


class ProbeNode:
    """One node of the probing structure."""

    __slots__ = (
        "prefix",
        "level",
        "depth",
        "children",
        "count",
        "tentative_count",
        "edge_left",
        "edge_right",
        "next_dir",
        "done",
        "is_tentative",
    )

    def __init__(
        self,
        dewey: DeweyId,
        level: int,
        direction: str,
        tentative: bool = False,
    ):
        self.depth = len(dewey)
        self.level = level
        self.prefix: Tuple[int, ...] = dewey[:level]
        self.children: Dict[int, ProbeNode] = {}
        self.is_tentative = False
        if level == self.depth:
            # Leaf: one concrete tuple.
            self.count = 0 if tentative else 1
            self.tentative_count = 1 if tentative else 0
            self.is_tentative = tentative
            self.edge_left = None
            self.edge_right = None
            self.next_dir = LEFT
            self.done = True
            return
        low, high = region_bounds(self.prefix, self.depth)
        self.edge_left: Optional[DeweyId] = low
        self.edge_right: Optional[DeweyId] = high
        if direction in (LEFT, RIGHT):
            # Exclude the branch the discovering id lies in (initializer
            # lines 4-6): the opposite edge stays at the region boundary.
            if direction == LEFT:
                self.edge_left = next_id(dewey, level + 1, LEFT)
            else:
                self.edge_right = next_id(dewey, level + 1, RIGHT)
            self.next_dir = toggle(direction)
        else:
            self.next_dir = LEFT
        self.done = False
        child = ProbeNode(dewey, level + 1, direction, tentative=tentative)
        self.children[dewey[level]] = child
        self.count = child.count
        self.tentative_count = child.tentative_count

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def frontier_open(self) -> bool:
        return (
            self.edge_left is not None
            and self.edge_right is not None
            and self.edge_left <= self.edge_right
        )

    def close_frontier(self) -> None:
        """Force phase 2: called by the driver when a frontier probe proved
        the unexplored gap holds no (eligible) matches."""
        self.edge_left = None
        self.edge_right = None

    def num_items(self) -> int:
        """Confirmed members below this node (the paper's ``numItems``)."""
        return self.count

    def contains(self, dewey: DeweyId) -> bool:
        """Is ``dewey`` present (as member or tentative) below this node?"""
        node = self
        for level in range(self.level, len(dewey)):
            child = node.children.get(dewey[level])
            if child is None:
                return False
            node = child
        return True

    def items(self) -> List[DeweyId]:
        """All confirmed member IDs below this node, in Dewey order."""
        collected: List[DeweyId] = []
        self._collect(self.prefix, collected, tentative=False)
        return collected

    def tentative_items(self) -> List[DeweyId]:
        collected: List[DeweyId] = []
        self._collect(self.prefix, collected, tentative=True)
        return collected

    def _collect(
        self, path: Tuple[int, ...], out: List[DeweyId], tentative: bool
    ) -> None:
        if self.level == self.depth:
            if self.is_tentative == tentative:
                out.append(path)
            return
        for component in sorted(self.children):
            self.children[component]._collect(
                path + (component,), out, tentative
            )

    # ------------------------------------------------------------------
    # Probe selection (Algorithm 3, getProbeId)
    # ------------------------------------------------------------------
    def get_probe_id(self) -> Optional[ProbeRequest]:
        if self.level == self.depth:
            if self.is_tentative:
                return (self.prefix, MIDDLE, self)
            return None
        if self.done and self.tentative_count == 0:
            return None
        if self.frontier_open():
            if self.next_dir == LEFT:
                return (self.edge_left, LEFT, self)
            return (self.edge_right, RIGHT, self)
        while True:
            candidates = [
                child for child in self.children.values() if not child.exhausted()
            ]
            if not candidates:
                self.done = True
                return None
            minimum = min(candidates, key=_min_child_key)
            request = minimum.get_probe_id()
            if request is not None:
                return request
            # That child just marked itself done; re-evaluate the rest.

    def exhausted(self) -> bool:
        """Nothing left to offer: no open frontier, no live children, and no
        tentative items awaiting confirmation."""
        if self.level == self.depth:
            return not self.is_tentative
        if self.done:
            return self.tentative_count == 0
        return False

    # ------------------------------------------------------------------
    # Insertion (Algorithm 3, add)
    # ------------------------------------------------------------------
    def add(self, dewey: DeweyId, direction: str, tentative: bool = False) -> bool:
        """Insert ``dewey`` below this node; returns True when a new leaf was
        created.  Updates this node's frontier edges when it is still in its
        exploration phase and the insertion carries direction information.
        """
        if self.level == self.depth:
            return False
        component = dewey[self.level]
        child = self.children.get(component)
        if child is not None:
            created = child.add(dewey, direction, tentative=tentative)
            if created:
                self.count += 0 if tentative else 1
                self.tentative_count += 1 if tentative else 0
        else:
            child = ProbeNode(dewey, self.level + 1, direction, tentative=tentative)
            self.children[component] = child
            self.count += child.count
            self.tentative_count += child.tentative_count
            created = True
        if direction in (LEFT, RIGHT) and self.frontier_open():
            if direction == LEFT:
                self.edge_left = next_id(dewey, self.level + 1, LEFT)
            else:
                self.edge_right = next_id(dewey, self.level + 1, RIGHT)
            self.next_dir = toggle(direction)
        return created

    def confirm(self, dewey: DeweyId) -> bool:
        """Promote a tentative leaf to a confirmed member (scored probing).

        Returns False if the leaf is unknown or already confirmed.
        """
        if self.level == self.depth:
            if not self.is_tentative:
                return False
            self.is_tentative = False
            self.count = 1
            self.tentative_count = 0
            return True
        child = self.children.get(dewey[self.level])
        if child is None:
            return False
        promoted = child.confirm(dewey)
        if promoted:
            self.count += 1
            self.tentative_count -= 1
        return promoted


def _min_child_key(node: ProbeNode) -> Tuple[int, int]:
    """Fewest confirmed items first; prefer children that still have frontier
    or tentative material on ties (smaller prefix as final tie-break is
    implicit in dict iteration being keyed later by min())."""
    return (node.count, 0 if node.tentative_count or not node.done else 1)
