"""Query relaxation (Section I: "they can also support query relaxation").

When a conjunctive query has fewer than k answers, online-shopping engines
prefer to *relax* the query rather than show an empty page.  The natural
relaxation in this framework reuses the scored machinery: turn the
conjunction's leaves into a weighted disjunction, so a tuple's score is the
number (or weighted sum) of predicates it satisfies, and run a *scored*
diversity algorithm — tuples satisfying more predicates always win, and
diversity kicks in among equally-relaxed tuples.  Exact matches, when they
exist, still surface first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..query.query import AND, LEAF, OR, Query
from .engine import DiversityEngine
from .result import DiverseResult


def relax_query(query: Query) -> Query:
    """The disjunctive relaxation of a query.

    Every conjunction in the tree becomes a disjunction; leaf predicates and
    weights are preserved.  For the common flat-AND case this is exactly
    "score = number of satisfied predicates".
    """
    if query.kind == LEAF:
        return query
    relaxed_children = tuple(relax_query(child) for child in query.children)
    if query.kind in (AND, OR):
        return Query.disjunction(*relaxed_children)
    raise ValueError(f"unknown query node kind {query.kind!r}")


@dataclass(frozen=True)
class RelaxedResult:
    """Outcome of a relaxed search."""

    result: DiverseResult
    relaxed: bool
    strict_matches: int


def relaxed_search(
    engine: DiversityEngine,
    query: Union[Query, str],
    k: int,
    algorithm: str = "probe",
) -> RelaxedResult:
    """Diverse top-k with automatic relaxation.

    Runs the strict query first; if it already yields k answers, returns
    them (unscored semantics).  Otherwise re-runs the *relaxed* query in
    scored mode: full matches score highest, near-misses fill the remaining
    slots diversity-preservingly.
    """
    if isinstance(query, str):
        from ..query.parser import parse_query

        query = parse_query(query)
    strict = engine.search(query, k, algorithm=algorithm, scored=False)
    if len(strict) >= k:
        return RelaxedResult(result=strict, relaxed=False, strict_matches=len(strict))
    relaxed = engine.search(
        relax_query(query), k, algorithm=algorithm, scored=True
    )
    return RelaxedResult(
        result=relaxed, relaxed=True, strict_matches=len(strict)
    )
