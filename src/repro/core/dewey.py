"""Dewey identifiers for diversity-ordered tuples.

The paper (Section III-A) encodes each tuple as a Dewey identifier: the
concatenation of per-attribute sibling numbers, ordered by the diversity
ordering.  Tuple ``Honda.Civic.Blue.2007.'Low miles'`` becomes ``0.0.1.0.0``
in Figure 2(b).  All tuples of a relation share the same Dewey *depth* (one
component per attribute in the ordering).

We represent a Dewey ID as a plain ``tuple`` of non-negative ``int``
components.  Tuple comparison in Python is lexicographic, which for
equal-length Dewey IDs is exactly the document order of the Dewey tree, so
Dewey IDs can be used directly as sorted posting-list keys.

The paper assumes "no dewey entry is greater than 9" purely for exposition;
we instead use the sentinel :data:`MAX_COMPONENT` as the "all nines" value,
so trees of any fan-out are supported.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

#: Type alias: a Dewey identifier is a fixed-depth tuple of ints.
DeweyId = Tuple[int, ...]

#: Sentinel standing in for the paper's "9" digit: no real sibling number
#: ever reaches this value.
MAX_COMPONENT = 2**60

#: Probe directions (Section III-B / IV).  LEFT scans left-to-right (the
#: ordinary direction), RIGHT scans right-to-left, and MIDDLE marks scored
#: insertions that carry no frontier information (Section IV-B).
LEFT = "LEFT"
RIGHT = "RIGHT"
MIDDLE = "MIDDLE"

_DIRECTIONS = (LEFT, RIGHT)


def toggle(direction: str) -> str:
    """Return the opposite probing direction (LEFT <-> RIGHT)."""
    if direction == LEFT:
        return RIGHT
    if direction == RIGHT:
        return LEFT
    raise ValueError(f"cannot toggle direction {direction!r}")


def validate_direction(direction: str) -> None:
    """Raise ``ValueError`` unless ``direction`` is LEFT or RIGHT."""
    if direction not in _DIRECTIONS:
        raise ValueError(f"expected LEFT or RIGHT, got {direction!r}")


def make_dewey(components: Iterable[int]) -> DeweyId:
    """Build a Dewey ID from integer components, validating them."""
    dewey = tuple(int(c) for c in components)
    for c in dewey:
        if c < 0:
            raise ValueError(f"negative Dewey component in {dewey}")
        if c > MAX_COMPONENT:
            raise ValueError(f"Dewey component {c} exceeds MAX_COMPONENT")
    return dewey


def zeros(depth: int) -> DeweyId:
    """The smallest possible Dewey ID of the given depth (all zeros)."""
    if depth <= 0:
        raise ValueError("Dewey depth must be positive")
    return (0,) * depth


def maxes(depth: int) -> DeweyId:
    """The largest possible Dewey ID of the given depth (the paper's 9.9...9)."""
    if depth <= 0:
        raise ValueError("Dewey depth must be positive")
    return (MAX_COMPONENT,) * depth


def next_id(dewey: DeweyId, level: int, direction: str = LEFT) -> "DeweyId | None":
    """The paper's ``nextId(id, level, dir)`` operator (Section III-B).

    ``level`` is 1-based: ``next_id(d, level, LEFT)`` increments the
    ``level``-th entry of ``d`` (component index ``level - 1``) and zeroes
    every later entry; RIGHT decrements it and sets every later entry to the
    maximum.  Example from the paper::

        >>> next_id((0, 3, 1, 0, 0), 2, LEFT)
        (0, 4, 0, 0, 0)

    The result need not correspond to a real tuple; it is a search boundary.
    RIGHT on a zero component would go negative, which means "nothing to the
    left inside this region"; we return ``None`` in that case so callers can
    close the frontier.
    """
    validate_direction(direction)
    if not 1 <= level <= len(dewey):
        raise ValueError(f"level {level} out of range for depth {len(dewey)}")
    index = level - 1
    if direction == LEFT:
        head = dewey[:index] + (dewey[index] + 1,)
        return head + (0,) * (len(dewey) - level)
    if dewey[index] == 0:
        return None
    head = dewey[:index] + (dewey[index] - 1,)
    return head + (MAX_COMPONENT,) * (len(dewey) - level)


def successor(dewey: DeweyId) -> DeweyId:
    """The immediately-next Dewey ID in document order (the paper's ``id+1``)."""
    return dewey[:-1] + (dewey[-1] + 1,)


def predecessor(dewey: DeweyId) -> DeweyId:
    """The immediately-previous Dewey ID, or ``None`` below all zeros."""
    if dewey[-1] > 0:
        return dewey[:-1] + (dewey[-1] - 1,)
    # Borrow: all-zero suffix rolls over like next_id RIGHT.
    for index in range(len(dewey) - 1, -1, -1):
        if dewey[index] > 0:
            head = dewey[:index] + (dewey[index] - 1,)
            return head + (MAX_COMPONENT,) * (len(dewey) - index - 1)
    return None


def is_prefix(prefix: Sequence[int], dewey: DeweyId) -> bool:
    """True iff ``prefix`` (a sequence of components) is a prefix of ``dewey``."""
    if len(prefix) > len(dewey):
        return False
    return tuple(prefix) == dewey[: len(prefix)]


def common_prefix_len(a: DeweyId, b: DeweyId) -> int:
    """Length of the longest common prefix of two Dewey IDs."""
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


def region_bounds(prefix: Sequence[int], depth: int) -> tuple[DeweyId, DeweyId]:
    """Smallest and largest depth-``depth`` Dewey IDs under ``prefix``.

    These are the conceptual ``edge`` initial values of the probing data
    structure: e.g. the region of prefix ``(0,)`` at depth 5 is
    ``(0,0,0,0,0) .. (0,MAX,MAX,MAX,MAX)``.
    """
    prefix = tuple(prefix)
    if len(prefix) > depth:
        raise ValueError("prefix longer than Dewey depth")
    pad = depth - len(prefix)
    return prefix + (0,) * pad, prefix + (MAX_COMPONENT,) * pad


def in_region(dewey: DeweyId, prefix: Sequence[int]) -> bool:
    """True iff ``dewey`` lies inside the subtree rooted at ``prefix``."""
    return is_prefix(prefix, dewey)


def format_dewey(dewey: DeweyId) -> str:
    """Human-readable dotted form, with the MAX sentinel printed as ``*``."""
    return ".".join("*" if c == MAX_COMPONENT else str(c) for c in dewey)


def parse_dewey(text: str) -> DeweyId:
    """Parse the dotted form produced by :func:`format_dewey`."""
    parts = text.split(".")
    return make_dewey(
        MAX_COMPONENT if part == "*" else int(part) for part in parts
    )
