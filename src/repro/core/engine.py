"""The public facade: a diversity-aware search engine over one relation.

Typical use::

    engine = DiversityEngine.from_relation(cars, ["Make", "Model", "Color"])
    result = engine.search("Make = 'Honda'", k=5)            # UProbe
    result = engine.search(query, k=5, algorithm="onepass")   # UOnePass
    result = engine.search(query, k=5, scored=True)           # SProbe

Algorithms (Section V names in parentheses):

========== ==========================================================
onepass     single scan with skipping (UOnePass / SOnePass)
probe       bidirectional probing, <= ~2k index probes (UProbe / SProbe)
naive       full evaluation + exact post-processing (UNaive / SNaive)
basic       first-k / WAND top-k, no diversity (UBasic / SBasic)
multq       query-rewriting baseline (MultQ)
========== ==========================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..index.inverted import InvertedIndex
from ..index.merged import MergedList
from ..observability import (
    MONOTONIC,
    annotate_query_stats,
    get_registry,
    record_query_metrics,
)
from ..query.estimate import order_for_leapfrog
from ..query.parser import parse_query
from ..query.query import Query
from ..query.rewrite import normalise
from ..storage.relation import Relation
from . import baselines
from .dewey import DeweyId
from .onepass import one_pass_scored, one_pass_unscored
from .ordering import DiversityOrdering
from .probing import probe_scored, probe_unscored
from .result import DiverseResult, ResultItem

ALGORITHMS = ("onepass", "probe", "naive", "basic", "multq")

#: The adaptive selector: not a sixth algorithm but a dispatcher — the
#: planner (:mod:`repro.planner`) prices the diversity-preserving
#: candidates from index statistics and the engine runs the cheapest.
#: Kept out of :data:`ALGORITHMS` so code iterating the fixed algorithms
#: (tests, benchmarks, the metrics CLI's per-algorithm loops) is unchanged.
AUTO = "auto"


def run_algorithm(
    index,
    query: Query,
    k: int,
    algorithm: str = "probe",
    scored: bool = False,
):
    """Execute one prepared query with one algorithm; the engine-agnostic core.

    ``index`` is anything implementing the :class:`InvertedIndex` read
    protocol (including :class:`repro.sharding.ShardedIndex` — the
    algorithms only observe ``next`` results, which the protocol fixes).
    Returns ``(deweys, scores, stats)`` where ``scores`` is ``None`` for
    unscored runs.
    """
    merged = MergedList(query, index)
    stats: Dict[str, int] = {}
    scores: Optional[Dict[DeweyId, float]] = None
    if algorithm == "multq":
        if scored:
            scores, issued = baselines.multq_scored(index, query, k)
            deweys = sorted(scores)
        else:
            deweys, issued = baselines.multq_unscored(index, query, k)
        stats["queries_issued"] = issued
    elif scored:
        if algorithm == "onepass":
            scores = one_pass_scored(merged, k)
        elif algorithm == "probe":
            scores = probe_scored(merged, k)
        elif algorithm == "naive":
            scores = baselines.naive_scored(merged, k)
        else:
            scores = baselines.basic_scored(merged, k)
        deweys = sorted(scores)
    else:
        if algorithm == "onepass":
            deweys = one_pass_unscored(merged, k)
        elif algorithm == "probe":
            deweys = probe_unscored(merged, k)
        elif algorithm == "naive":
            deweys = baselines.naive_unscored(merged, k)
        else:
            deweys = baselines.basic_unscored(merged, k)
    stats["next_calls"] = merged.next_calls
    stats["scored_next_calls"] = merged.scored_next_calls
    annotate_query_stats(stats, merged, algorithm, scored, k)
    return deweys, scores, stats


class DiversityEngine:
    """Diverse top-k search over one indexed relation.

    ``cache`` (optional) is a serving-layer cache — any object with the
    :class:`repro.serving.ServingCache` interface (a ``search(engine, query,
    k, algorithm, scored, optimize)`` method).  When attached, repeated
    :meth:`search` calls are answered from the cache; ``insert``/``delete``
    bump the index epoch, which lazily invalidates stale entries.

    ``registry`` (optional) pins the engine's metrics destination; the
    default (``None``) resolves the process-wide
    :func:`repro.observability.get_registry` at each query, so swapping
    the global registry (tests, benchmarks) takes effect immediately.
    """

    def __init__(self, index: InvertedIndex, cache=None, registry=None):
        self._index = index
        self._cache = cache
        self._registry = registry

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        ordering: Union[DiversityOrdering, Sequence[str]],
        backend: str = "array",
        cache=None,
    ) -> "DiversityEngine":
        """Build the index (offline step) and wrap it in an engine."""
        if not isinstance(ordering, DiversityOrdering):
            ordering = DiversityOrdering(ordering)
        return cls(InvertedIndex.build(relation, ordering, backend=backend), cache=cache)

    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def relation(self) -> Relation:
        return self._index.relation

    @property
    def ordering(self) -> DiversityOrdering:
        return self._index.ordering

    @property
    def epoch(self) -> int:
        """The index mutation epoch (see :attr:`InvertedIndex.epoch`)."""
        return self._index.epoch

    @property
    def cache(self):
        """The attached serving cache, or ``None``."""
        return self._cache

    def attach_cache(self, cache) -> None:
        """Attach (or detach, with ``None``) a serving-layer cache."""
        self._cache = cache

    def close(self) -> None:
        """Release execution resources.  A plain engine holds none; the
        sharded subclass shuts its fan-out pool down.  Idempotent."""

    def __enter__(self) -> "DiversityEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def compile(self, query: Union[Query, str]) -> MergedList:
        """Parse (if needed) and compile a query to its merged list."""
        if isinstance(query, str):
            query = parse_query(query)
        return MergedList(query, self._index)

    def search(
        self,
        query: Union[Query, str],
        k: int,
        algorithm: str = "probe",
        scored: bool = False,
        optimize: bool = True,
    ) -> DiverseResult:
        """Diverse top-k search.

        ``algorithm`` is one of :data:`ALGORITHMS`, or :data:`AUTO` to let
        the cost model pick among the diversity-preserving algorithms
        (see :meth:`plan`); ``scored=True`` switches
        to the scored variants (tuples ranked by summed leaf weights, with
        diversity among the lowest-score ties).  ``optimize`` runs the
        logical normaliser (unscored only, to keep reported scores
        bit-exact) and orders conjunctions rarest-list-first for the
        leapfrog intersection.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        if algorithm not in ALGORITHMS and algorithm != AUTO:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from "
                f"{ALGORITHMS + (AUTO,)}"
            )
        if self._cache is not None:
            return self._cache.search(self, query, k, algorithm, scored, optimize)
        return self.execute(self.prepare(query, scored, optimize), k, algorithm, scored)

    def prepare(
        self,
        query: Union[Query, str],
        scored: bool = False,
        optimize: bool = True,
    ) -> Query:
        """The plan step of :meth:`search`: parse, normalise, order.

        Deterministic given the query and the current index statistics —
        this is exactly what the serving layer's plan cache memoises.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if optimize:
            if not scored:
                query = normalise(query)
            query = order_for_leapfrog(query, self._index)
        return query

    def plan(
        self,
        query: Union[Query, str],
        k: int,
        scored: bool = False,
        candidates=None,
    ):
        """Price the candidate algorithms for one query and pick the cheapest.

        Returns a :class:`~repro.planner.PlanDecision` — the verdict
        ``algorithm="auto"`` executes, stamped with the index epoch it was
        computed at (the serving layer's decision cache re-plans when the
        epoch moves).  ``candidates`` defaults to the diversity-preserving
        algorithms; pure statistics work, no row is touched.
        """
        from ..planner import choose

        if isinstance(query, str):
            query = parse_query(query)
        return choose(self._index, query, k, scored, candidates=candidates)

    def _execute_auto(
        self, query: Query, k: int, scored: bool, decision=None
    ) -> DiverseResult:
        """Resolve (or adopt) a plan decision, then run what it picked.

        Dispatch back through ``self.execute`` so subclass execution
        strategies (the sharded scatter/scan split) apply to the selected
        algorithm unchanged.
        """
        from ..planner import annotate_plan_stats

        if decision is None:
            decision = self.plan(query, k, scored)
        result = self.execute(query, k, decision.algorithm, scored)
        annotate_plan_stats(result.stats, decision)
        self._record_plan_metrics(decision, result.stats)
        return result

    def _record_plan_metrics(self, decision, stats: Dict[str, int]) -> None:
        """Export one auto decision: the choice counter plus the paper-bound
        cross-check (a selected algorithm violating its own access bound
        means the plan was priced from a broken premise — must stay 0)."""
        registry = self._registry if self._registry is not None else get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "repro_plan_choice_total",
            help="auto-planned queries, by selected algorithm",
            algorithm=decision.algorithm,
            mode="scored" if decision.scored else "unscored",
        ).inc()
        if stats.get("probe_bound_exceeded") or stats.get("scan_passes", 1) > 1:
            registry.counter(
                "repro_plan_bound_violations_total",
                help="auto-selected runs that broke their own access bound "
                     "(Theorem 2 probe bound / one-pass single scan); "
                     "must stay 0",
                algorithm=decision.algorithm,
            ).inc()

    def execute(
        self,
        query: Query,
        k: int,
        algorithm: str = "probe",
        scored: bool = False,
        decision=None,
    ) -> DiverseResult:
        """The run step of :meth:`search`: execute an already-prepared plan.

        ``query`` must be a :class:`Query` (no parsing happens here); no
        normalisation or reordering is applied.  ``algorithm="auto"`` plans
        first (or adopts ``decision``, a memoised
        :class:`~repro.planner.PlanDecision` from the serving cache) and
        runs the selected algorithm.
        """
        if algorithm == AUTO:
            return self._execute_auto(query, k, scored, decision)
        # Per-query latency goes to a plain memoised histogram, not a
        # span: execute is the per-query hot path, and the full span
        # machinery (contextvars, record ring, field dicts) costs several
        # microseconds a query where this is well under one.  Spans
        # bracket pipeline *stages* (serve.batch, shard.scatter, WAL);
        # per-query visibility is counters and this histogram.
        registry = self._registry if self._registry is not None else get_registry()
        if not registry.enabled:
            deweys, scores, stats = run_algorithm(
                self._index, query, k, algorithm, scored
            )
            return self._package(deweys, scores, stats, k, algorithm, scored)
        started = MONOTONIC()
        deweys, scores, stats = run_algorithm(
            self._index, query, k, algorithm, scored
        )
        result = self._package(deweys, scores, stats, k, algorithm, scored)
        hist = registry.hot_cache.get(("query_ms", algorithm))
        if hist is None:
            hist = registry.histogram(
                "repro_query_ms",
                help="End-to-end execute latency per query, by algorithm",
                algorithm=algorithm,
            )
            registry.hot_cache[("query_ms", algorithm)] = hist
        hist.observe((MONOTONIC() - started) * 1000.0)
        return result

    def _package(
        self,
        deweys,
        scores: Optional[Dict[DeweyId, float]],
        stats: Dict[str, int],
        k: int,
        algorithm: str,
        scored: bool,
    ) -> DiverseResult:
        """Materialise selected Dewey IDs into a sorted :class:`DiverseResult`."""
        record_query_metrics(self._registry, algorithm, scored, k, stats)
        items = [self._materialise(dewey, scores) for dewey in deweys]
        if scored:
            items.sort(key=lambda item: (-(item.score or 0.0), item.dewey))
        return DiverseResult(
            items=items, k=k, algorithm=algorithm, scored=scored, stats=stats
        )

    def insert(self, row) -> int:
        """Add a listing: insert into the relation and index it."""
        rid = self._index.relation.insert(row)
        self._index.insert(rid)
        return rid

    def delete(self, rid: int) -> bool:
        """Remove a listing (sold/expired): tombstone the relation row and
        unindex it, so queries stop returning it immediately.  Returns False
        if the row was already deleted."""
        if not self._index.relation.delete(rid):
            return False
        self._index.remove(rid)
        return True

    def search_weighted(
        self,
        query: Union[Query, str],
        k: int,
        value_weights: Dict,
    ) -> DiverseResult:
        """Weighted-diverse top-k (Section VII's first extension).

        ``value_weights`` maps ``(attribute, value)`` to a positive weight;
        heavier values earn proportionally more slots.  Implemented as exact
        selection over the materialised result set (the extension is a
        selection-level refinement; see `repro.core.weighted`).
        """
        from .weighted import WeightedDiversifier

        if isinstance(query, str):
            query = parse_query(query)
        merged = MergedList(query, self._index)
        matches = baselines.collect_all(merged)
        diversifier = WeightedDiversifier(self._index.dewey, value_weights)
        chosen = diversifier.select(matches, k)
        items = [self._materialise(dewey, None) for dewey in chosen]
        return DiverseResult(
            items=items,
            k=k,
            algorithm="weighted",
            scored=False,
            stats={
                "next_calls": merged.next_calls,
                "scored_next_calls": merged.scored_next_calls,
            },
        )

    def _materialise(
        self, dewey: DeweyId, scores: Optional[Dict[DeweyId, float]]
    ) -> ResultItem:
        rid = self._index.dewey.rid_of(dewey)
        values = self._index.relation.row_dict(rid)
        score = scores.get(dewey) if scores is not None else None
        return ResultItem(dewey=dewey, rid=rid, values=values, score=score)

    def explain(self, query: Union[Query, str]) -> str:
        """A short human-readable description of the compiled query."""
        if isinstance(query, str):
            query = parse_query(query)
        lines = [f"query: {query.describe()}"]
        lines.append(f"ordering: {self.ordering!r}")
        lines.append(f"index: {self._index!r}")
        return "\n".join(lines)
