"""Diverse pagination: page 2 and beyond.

Online shopping result pages are paginated.  Naively re-running a diverse
top-k per page would repeat page 1's answers (a diverse set stays diverse),
so the paginator *excludes* everything already shown and asks for the next
diverse k among the remaining answers — each page is maximally diverse for
the inventory the user has not seen yet, and pages never overlap.

Implementation: the probing/one-pass engines run over a merged list wrapped
with an exclusion set (the shown items).  Exclusion preserves the cursor
contract (``next`` still returns the nearest *unshown* match), so the
algorithms and their guarantees apply unchanged; only the result universe
shrinks per page — exactly Definition 2 over ``RES(R, Q) minus shown``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set, Union

from ..index.merged import MergedList
from ..query.parser import parse_query
from ..query.query import Query
from .dewey import LEFT, RIGHT, DeweyId, predecessor, successor
from .engine import DiversityEngine
from .onepass import one_pass_unscored
from .probing import probe_unscored
from .result import DiverseResult, ResultItem


class ExcludingMergedList:
    """A merged-list view that hides an exclusion set.

    Delegates to the underlying :class:`MergedList` and steps over excluded
    IDs, so the diversity algorithms see ``RES(R,Q) \\ excluded``.
    """

    def __init__(self, merged: MergedList, excluded: Set[DeweyId]):
        self._merged = merged
        self._excluded = excluded

    @property
    def depth(self) -> int:
        return self._merged.depth

    @property
    def next_calls(self) -> int:
        return self._merged.next_calls

    @property
    def scored_next_calls(self) -> int:
        return self._merged.scored_next_calls

    def next(self, bound: DeweyId, direction: str = LEFT) -> Optional[DeweyId]:
        current = bound
        while True:
            found = self._merged.next(current, direction)
            if found is None or found not in self._excluded:
                return found
            if direction == LEFT:
                current = successor(found)
            else:
                current = predecessor(found)
                if current is None:
                    return None

    def first(self) -> Optional[DeweyId]:
        return self.next((0,) * self.depth, LEFT)

    def contains(self, dewey: DeweyId) -> bool:
        return dewey not in self._excluded and self._merged.contains(dewey)

    def score(self, dewey: DeweyId) -> float:
        return self._merged.score(dewey)


class DiversePaginator:
    """Iterates diverse, non-overlapping result pages for one query."""

    def __init__(
        self,
        engine: DiversityEngine,
        query: Union[Query, str],
        page_size: int,
        algorithm: str = "probe",
        shown: Optional[Iterable[DeweyId]] = None,
    ):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if algorithm not in ("probe", "onepass"):
            raise ValueError("paginator supports 'probe' and 'onepass'")
        if isinstance(query, str):
            query = parse_query(query)
        self._engine = engine
        self._query = query
        self._page_size = page_size
        self._algorithm = algorithm
        # ``shown`` seeds the exclusion set: a paginator resumed at page N
        # (the serving cache holds pages 1..N-1) skips exactly the items
        # those pages displayed, so resumed and from-scratch pagination
        # yield identical pages.
        self._shown: Set[DeweyId] = set(shown) if shown is not None else set()
        self._exhausted = False

    @property
    def shown(self) -> Set[DeweyId]:
        return set(self._shown)

    def next_page(self) -> DiverseResult:
        """The next diverse page (empty once results run out)."""
        if self._exhausted:
            return self._empty_page()
        merged = MergedList(self._query, self._engine.index)
        view = ExcludingMergedList(merged, self._shown)
        if self._algorithm == "probe":
            deweys = probe_unscored(view, self._page_size)
        else:
            deweys = one_pass_unscored(view, self._page_size)
        if len(deweys) < self._page_size:
            self._exhausted = True
        self._shown.update(deweys)
        items = [self._materialise(dewey) for dewey in deweys]
        return DiverseResult(
            items=items,
            k=self._page_size,
            algorithm=self._algorithm,
            scored=False,
            stats={
                "next_calls": merged.next_calls,
                "scored_next_calls": merged.scored_next_calls,
            },
        )

    def pages(self, limit: Optional[int] = None) -> Iterator[DiverseResult]:
        """Yield pages until the results run out (or ``limit`` pages)."""
        produced = 0
        while limit is None or produced < limit:
            page = self.next_page()
            if not page.items:
                return
            yield page
            produced += 1
            if self._exhausted:
                return

    def reset(self) -> None:
        """Forget shown items; the next page is page 1 again."""
        self._shown.clear()
        self._exhausted = False

    def _materialise(self, dewey: DeweyId) -> ResultItem:
        rid = self._engine.index.dewey.rid_of(dewey)
        return ResultItem(
            dewey=dewey,
            rid=rid,
            values=self._engine.relation.row_dict(rid),
            score=None,
        )

    def _empty_page(self) -> DiverseResult:
        return DiverseResult(
            items=[], k=self._page_size, algorithm=self._algorithm,
            scored=False, stats={},
        )
