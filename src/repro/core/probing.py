"""Probing algorithm drivers (Section IV, Algorithms 2 and 4).

Unlike the one-pass scan, probing never retrieves an item it will later
throw away: every ``next`` call is aimed either at an unexplored frontier
gap or at the subtree currently holding the fewest answers, so the unscored
algorithm needs at most ~2k probes (Theorem 2, asserted in the tests).

The scored driver first runs WAND to learn the top-k score threshold
``theta``; items scoring strictly above ``theta`` are inserted with
direction MIDDLE (they are unconditional members but tell us nothing about
explored regions), and the remaining slots are filled by probing the
``score >= theta`` space, caching landings in already-populated branches as
*tentative* until the min-child descent proves them helpful (Section IV-B).
"""

from __future__ import annotations

from typing import Dict, List

from ..index.merged import MergedList
from ..index.wand import wand_topk
from .dewey import LEFT, MIDDLE, DeweyId, in_region, zeros
from .probe_node import ProbeNode


def _budget(k: int, depth: int) -> int:
    """Loop-iteration ceiling for the probing drivers.

    The algorithms terminate in ~2k probes plus bounded frontier-closure
    and edge-progress steps; this generous ceiling exists only so that an
    invariant violation fails loudly (RuntimeError) instead of hanging.
    """
    return 64 * (k + 4) * (depth + 4)


def probe_unscored(merged: MergedList, k: int) -> List[DeweyId]:
    """Algorithm 2: bidirectional probing, unscored."""
    if k <= 0:
        return []
    first = merged.next(zeros(merged.depth), LEFT)
    if first is None:
        return []
    root = ProbeNode(first, 0, LEFT)
    remaining = _budget(k, merged.depth)
    while root.num_items() < k:
        remaining -= 1
        if remaining < 0:
            raise RuntimeError(
                "probing exceeded its iteration budget — data-structure "
                "invariant violation; please report this query"
            )
        request = root.get_probe_id()
        if request is None:
            break
        probe_id, direction, owner = request
        found = merged.next(probe_id, direction)
        if found is None or not in_region(found, owner.prefix):
            # The unexplored gap holds no matches (the case the paper defers
            # to its full version): close it and re-probe elsewhere.
            owner.close_frontier()
            continue
        root.add(found, direction)
    return root.items()


def probe_scored(merged: MergedList, k: int) -> Dict[DeweyId, float]:
    """Algorithm 4: scored probing; returns ``{dewey: score}``."""
    if k <= 0:
        return {}
    top = wand_topk(merged, k)
    if not top:
        return {}
    if len(top) < k:
        # Fewer matches than requested: the answer is everything.
        return dict(top)
    theta = top[-1][1]
    scores: Dict[DeweyId, float] = {}
    max_dewey, max_score = top[0]
    root = ProbeNode(max_dewey, 0, MIDDLE)
    scores[max_dewey] = max_score
    for dewey, score in top[1:]:
        if score > theta:
            root.add(dewey, MIDDLE)
            scores[dewey] = score
    pending: Dict[DeweyId, float] = {}
    remaining = _budget(k, merged.depth)
    while root.num_items() < k:
        remaining -= 1
        if remaining < 0:
            raise RuntimeError(
                "scored probing exceeded its iteration budget — "
                "data-structure invariant violation; please report this query"
            )
        request = root.get_probe_id()
        if request is None:
            break
        probe_id, direction, owner = request
        if direction == MIDDLE:
            # A cached tentative item became helpful: no index work needed.
            if root.confirm(probe_id):
                scores[probe_id] = pending.pop(probe_id, theta)
            continue
        found = merged.next_scored(probe_id, direction, theta)
        if found is None or not in_region(found, owner.prefix):
            owner.close_frontier()
            continue
        if root.contains(found):
            # Duplicate (e.g. a WAND member): still advances the frontier.
            root.add(found, direction)
            continue
        branch = owner.children.get(found[owner.level])
        if branch is not None and branch.count > 0:
            # Landing in a branch that already holds members may hurt
            # diversity (Section IV-B): cache as tentative.
            pending[found] = merged.score(found)
            root.add(found, direction, tentative=True)
        else:
            root.add(found, direction)
            scores[found] = merged.score(found)
    return {dewey: scores[dewey] for dewey in root.items()}
