"""Diversity orderings (Definition 1).

A diversity ordering is a total order over (a subset of) a relation's
attributes, fixed by a domain expert: in the paper's running example
``Make < Model < Color < Year < Description < Id``.  The ordering determines
the levels of the Dewey tree: level 1 distinguishes values of the first
attribute, level 2 values of the second, and so on.

The paper ends every ordering with a tuple identifier so that Dewey IDs are
unique even when two listings share all attribute values.  We make that
explicit: the Dewey depth is ``len(ordering) + 1`` and the final level is a
synthetic per-prefix ordinal (the "Id" level).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..storage.schema import Schema


class OrderingError(ValueError):
    """Raised for invalid diversity orderings."""


class DiversityOrdering:
    """A total priority order over attribute names, highest priority first."""

    def __init__(self, attributes: Iterable[str]):
        self._attributes = tuple(attributes)
        if not self._attributes:
            raise OrderingError("a diversity ordering needs at least one attribute")
        seen = set()
        for name in self._attributes:
            if name in seen:
                raise OrderingError(f"attribute {name!r} repeated in ordering")
            seen.add(name)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names, highest diversity priority first."""
        return self._attributes

    @property
    def depth(self) -> int:
        """Dewey depth: one level per attribute plus the uniqueness level."""
        return len(self._attributes) + 1

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiversityOrdering):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        chain = " < ".join(self._attributes)
        return f"DiversityOrdering({chain})"

    def level_of(self, attribute: str) -> int:
        """1-based Dewey level of ``attribute``.

        Level 1 is the highest-priority attribute.  Raises ``OrderingError``
        for attributes outside the ordering.
        """
        try:
            return self._attributes.index(attribute) + 1
        except ValueError:
            raise OrderingError(
                f"attribute {attribute!r} not in diversity ordering"
            ) from None

    def attribute_at(self, level: int) -> str:
        """Attribute name at 1-based Dewey ``level``.

        The final (uniqueness) level has no attribute; asking for it raises.
        """
        if not 1 <= level <= len(self._attributes):
            raise OrderingError(
                f"level {level} has no attribute (ordering has "
                f"{len(self._attributes)} attributes + uniqueness level)"
            )
        return self._attributes[level - 1]

    def validate_against(self, schema: Schema) -> None:
        """Raise ``OrderingError`` unless every attribute exists in ``schema``."""
        for name in self._attributes:
            if name not in schema:
                raise OrderingError(
                    f"ordering attribute {name!r} not in schema {schema!r}"
                )

    def key_for(self, values: dict) -> tuple:
        """Project a row mapping onto the ordering (used for grouping)."""
        return tuple(values[name] for name in self._attributes)
