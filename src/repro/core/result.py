"""Result objects returned by the engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .dewey import DeweyId


@dataclass(frozen=True)
class ResultItem:
    """One answer tuple, fully materialised."""

    dewey: DeweyId
    rid: int
    values: Dict[str, Any]
    score: Optional[float] = None

    def __getitem__(self, attribute: str) -> Any:
        return self.values[attribute]


@dataclass(frozen=True)
class DiverseResult:
    """A diverse top-k answer plus execution statistics.

    ``stats`` includes at least ``next_calls`` and ``scored_next_calls``
    (probe counts into the merged list); MultQ adds ``queries_issued``.
    """

    items: List[ResultItem]
    k: int
    algorithm: str
    scored: bool
    stats: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, index: int) -> ResultItem:
        return self.items[index]

    @property
    def deweys(self) -> List[DeweyId]:
        return [item.dewey for item in self.items]

    @property
    def rids(self) -> List[int]:
        return [item.rid for item in self.items]

    @property
    def scores(self) -> List[Optional[float]]:
        return [item.score for item in self.items]

    def rows(self) -> List[Dict[str, Any]]:
        return [item.values for item in self.items]

    def to_table(self, attributes: Optional[List[str]] = None) -> str:
        """Render as a small aligned text table (for examples / demos)."""
        if not self.items:
            return "(no results)"
        if attributes is None:
            attributes = list(self.items[0].values)
        header = list(attributes)
        if self.scored:
            header.append("score")
        rows = []
        for item in self.items:
            row = [str(item.values[a]) for a in attributes]
            if self.scored:
                row.append(f"{item.score:g}" if item.score is not None else "-")
            rows.append(row)
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows))
            for i in range(len(header))
        ]
        lines = [
            "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
            "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        for row in rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)
