"""Synthetic query workloads (Figure 4).

The paper generates 5000 random queries per experiment, controlled by three
parameters (defaults in bold in Figure 4):

* number of predicates: 1-5 (default: none, i.e. the match-all query),
* predicate selectivity: 0-1 (default 0.5),
* number of results k: 1-100 (default 10).

"Query predicates are on car attributes and are picked at random."  We draw
scalar predicates from the observed value frequencies of a relation and
keyword predicates from the description vocabulary, steering each predicate
toward the requested selectivity; Figure 7 then *groups queries by their
actual selectivity*, exactly as the paper does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from ..index.tokenize import token_set
from ..query.query import Query
from ..storage.relation import Relation
from ..storage.schema import AttributeKind


@dataclass(frozen=True)
class WorkloadSpec:
    """Figure 4's parameter table."""

    queries: int = 5000
    predicates: int = 0          # 0 = the paper's "None" default (match all)
    selectivity: float = 0.5
    k: int = 10
    seed: int = 1
    disjunctive: bool = False    # OR queries (used by the scored experiments)
    weighted: bool = False       # random leaf weights (scored variants)

    def __post_init__(self):
        if self.queries < 0:
            raise ValueError("queries must be non-negative")
        if not 0 <= self.predicates <= 5:
            raise ValueError("predicates must be in [0, 5] (Figure 4)")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError("selectivity must be in [0, 1]")
        if not 1 <= self.k <= 10_000:
            raise ValueError("k out of range")


class _ValueStats:
    """Observed per-attribute value and token frequencies of a relation."""

    def __init__(self, relation: Relation):
        self.size = max(1, relation.live_count)
        # Global candidate pool: (attribute, value-or-token, is_keyword,
        # match count), sorted by count so closest-to-target lookups are a
        # bisect away.
        counts: dict[tuple[str, object, bool], int] = {}
        for attribute in relation.schema:
            position = relation.schema.position(attribute.name)
            for _, row in relation.iter_live():
                key = (attribute.name, row[position], False)
                counts[key] = counts.get(key, 0) + 1
            if attribute.kind is AttributeKind.TEXT:
                for _, row in relation.iter_live():
                    for token in token_set(row[position]):
                        key = (attribute.name, token, True)
                        counts[key] = counts.get(key, 0) + 1
        self.candidates = sorted(
            ((name, value, is_kw, count) for (name, value, is_kw), count in counts.items()),
            key=lambda entry: entry[3],
        )
        self._counts = [entry[3] for entry in self.candidates]

    def pick(
        self, rng: random.Random, target_selectivity: float
    ) -> tuple[str, object, bool]:
        """Pick ``(attribute, value-or-token, is_keyword)`` whose match
        frequency lies closest to the requested selectivity, drawing at
        random from a small window of near-target candidates so workloads
        vary."""
        import bisect

        target = target_selectivity * self.size
        anchor = bisect.bisect_left(self._counts, target)
        window = 8
        low = max(0, anchor - window)
        high = min(len(self.candidates), anchor + window)
        if low >= high:
            low, high = 0, len(self.candidates)
        name, value, is_keyword, _ = self.candidates[rng.randrange(low, high)]
        return name, value, is_keyword


class WorkloadGenerator:
    """Reproducible stream of queries for one relation."""

    def __init__(self, relation: Relation, spec: WorkloadSpec | None = None, **overrides):
        if spec is None:
            spec = WorkloadSpec(**overrides)
        elif overrides:
            raise ValueError("pass either a spec or keyword overrides, not both")
        self.relation = relation
        self.spec = spec
        self._stats = _ValueStats(relation)

    def queries(self) -> Iterator[Query]:
        """Yield ``spec.queries`` random queries."""
        rng = random.Random(self.spec.seed)
        for _ in range(self.spec.queries):
            yield self.one_query(rng)

    def one_query(self, rng: random.Random) -> Query:
        """Generate a single query according to the spec."""
        count = self.spec.predicates
        if count == 0:
            return Query.match_all()
        leaves = []
        for _ in range(count):
            name, value, is_keyword = self._stats.pick(rng, self.spec.selectivity)
            weight = float(rng.randint(1, 5)) if self.spec.weighted else 1.0
            if is_keyword:
                leaves.append(Query.keyword(name, str(value), weight=weight))
            else:
                leaves.append(Query.scalar(name, value, weight=weight))
        if len(leaves) == 1:
            return leaves[0]
        if self.spec.disjunctive:
            return Query.disjunction(*leaves)
        return Query.conjunction(*leaves)

    def materialise(self) -> List[Query]:
        return list(self.queries())
