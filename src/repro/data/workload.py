"""Synthetic query workloads (Figure 4).

The paper generates 5000 random queries per experiment, controlled by three
parameters (defaults in bold in Figure 4):

* number of predicates: 1-5 (default: none, i.e. the match-all query),
* predicate selectivity: 0-1 (default 0.5),
* number of results k: 1-100 (default 10).

"Query predicates are on car attributes and are picked at random."  We draw
scalar predicates from the observed value frequencies of a relation and
keyword predicates from the description vocabulary, steering each predicate
toward the requested selectivity; Figure 7 then *groups queries by their
actual selectivity*, exactly as the paper does.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from ..index.tokenize import token_set
from ..query.query import Query
from ..storage.relation import Relation
from ..storage.schema import AttributeKind


@dataclass(frozen=True)
class WorkloadSpec:
    """Figure 4's parameter table, plus the skewed repeated-query mode.

    The paper's workloads draw every query fresh; real serving traffic is
    highly skewed, with a few popular queries repeated constantly.  Setting
    ``distinct > 0`` switches to that regime: ``distinct`` unique queries
    are generated up front, then ``queries`` draws are sampled from them
    with Zipf rank frequencies (rank ``r`` drawn with probability
    proportional to ``1 / r**zipf_s``; ``zipf_s=0`` is uniform).  This is
    the workload shape the serving-layer caches are benchmarked against.
    """

    queries: int = 5000
    predicates: int = 0          # 0 = the paper's "None" default (match all)
    selectivity: float = 0.5
    k: int = 10
    seed: int = 1
    disjunctive: bool = False    # OR queries (used by the scored experiments)
    weighted: bool = False       # random leaf weights (scored variants)
    distinct: int = 0            # 0 = all-fresh; >0 = repeated-query pool size
    zipf_s: float = 1.0          # skew exponent for the repeated-query mode

    def __post_init__(self):
        if self.queries < 0:
            raise ValueError("queries must be non-negative")
        if not 0 <= self.predicates <= 5:
            raise ValueError("predicates must be in [0, 5] (Figure 4)")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError("selectivity must be in [0, 1]")
        if not 1 <= self.k <= 10_000:
            raise ValueError("k out of range")
        if self.distinct < 0:
            raise ValueError("distinct must be non-negative")
        if self.zipf_s < 0.0:
            raise ValueError("zipf_s must be non-negative")


class _ValueStats:
    """Observed per-attribute value and token frequencies of a relation."""

    def __init__(self, relation: Relation):
        self.size = max(1, relation.live_count)
        # Global candidate pool: (attribute, value-or-token, is_keyword,
        # match count), sorted by count so closest-to-target lookups are a
        # bisect away.
        counts: dict[tuple[str, object, bool], int] = {}
        for attribute in relation.schema:
            position = relation.schema.position(attribute.name)
            for _, row in relation.iter_live():
                key = (attribute.name, row[position], False)
                counts[key] = counts.get(key, 0) + 1
            if attribute.kind is AttributeKind.TEXT:
                for _, row in relation.iter_live():
                    for token in token_set(row[position]):
                        key = (attribute.name, token, True)
                        counts[key] = counts.get(key, 0) + 1
        self.candidates = sorted(
            ((name, value, is_kw, count) for (name, value, is_kw), count in counts.items()),
            key=lambda entry: entry[3],
        )
        self._counts = [entry[3] for entry in self.candidates]

    def pick(
        self, rng: random.Random, target_selectivity: float
    ) -> tuple[str, object, bool]:
        """Pick ``(attribute, value-or-token, is_keyword)`` whose match
        frequency lies closest to the requested selectivity, drawing at
        random from a small window of near-target candidates so workloads
        vary."""
        target = target_selectivity * self.size
        anchor = bisect.bisect_left(self._counts, target)
        window = 8
        low = max(0, anchor - window)
        high = min(len(self.candidates), anchor + window)
        if low >= high:
            low, high = 0, len(self.candidates)
        name, value, is_keyword, _ = self.candidates[rng.randrange(low, high)]
        return name, value, is_keyword


class WorkloadGenerator:
    """Reproducible stream of queries for one relation."""

    def __init__(self, relation: Relation, spec: WorkloadSpec | None = None, **overrides):
        if spec is None:
            spec = WorkloadSpec(**overrides)
        elif overrides:
            raise ValueError("pass either a spec or keyword overrides, not both")
        self.relation = relation
        self.spec = spec
        self._stats = _ValueStats(relation)

    def queries(self) -> Iterator[Query]:
        """Yield ``spec.queries`` random queries.

        With ``spec.distinct > 0``, draws come from a fixed pool of
        ``distinct`` queries under a Zipf rank distribution (see
        :class:`WorkloadSpec`), so popular queries repeat — the regime
        the serving-layer caches are designed for.
        """
        rng = random.Random(self.spec.seed)
        if self.spec.distinct:
            yield from self._skewed_queries(rng)
            return
        for _ in range(self.spec.queries):
            yield self.one_query(rng)

    def query_pool(self, rng: Optional[random.Random] = None) -> List[Query]:
        """The ``spec.distinct`` unique queries of the repeated-query mode,
        in rank order (rank 1 = most popular)."""
        if self.spec.distinct <= 0:
            raise ValueError("query_pool needs spec.distinct > 0")
        if rng is None:
            rng = random.Random(self.spec.seed)
        return [self.one_query(rng) for _ in range(self.spec.distinct)]

    def _skewed_queries(self, rng: random.Random) -> Iterator[Query]:
        pool = self.query_pool(rng)
        weights = [1.0 / (rank ** self.spec.zipf_s) for rank in range(1, len(pool) + 1)]
        cumulative = list(itertools.accumulate(weights))
        for _ in range(self.spec.queries):
            yield pool[bisect.bisect_left(cumulative, rng.random() * cumulative[-1])]

    def one_query(self, rng: random.Random) -> Query:
        """Generate a single query according to the spec."""
        count = self.spec.predicates
        if count == 0:
            return Query.match_all()
        leaves = []
        for _ in range(count):
            name, value, is_keyword = self._stats.pick(rng, self.spec.selectivity)
            weight = float(rng.randint(1, 5)) if self.spec.weighted else 1.0
            if is_keyword:
                leaves.append(Query.keyword(name, str(value), weight=weight))
            else:
                leaves.append(Query.scalar(name, value, weight=weight))
        if len(leaves) == 1:
            return leaves[0]
        if self.spec.disjunctive:
            return Query.disjunction(*leaves)
        return Query.conjunction(*leaves)

    def materialise(self) -> List[Query]:
        return list(self.queries())
