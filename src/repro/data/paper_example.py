"""The paper's running example: the Cars relation of Figure 1(a).

Used by the documentation examples, the Theorem 1 demonstration and many
tests, so it lives in the library rather than in test fixtures.
"""

from __future__ import annotations

from ..core.ordering import DiversityOrdering
from ..storage.relation import Relation
from .autos import autos_schema

#: Rows exactly as printed in Figure 1(a) (Id column is the rid + 1).
FIGURE1_ROWS = [
    ("Honda", "Civic", "Green", 2007, "Low miles"),
    ("Honda", "Civic", "Blue", 2007, "Low miles"),
    ("Honda", "Civic", "Red", 2007, "Low miles"),
    ("Honda", "Civic", "Black", 2007, "Low miles"),
    ("Honda", "Civic", "Black", 2006, "Low price"),
    ("Honda", "Accord", "Blue", 2007, "Best price"),
    ("Honda", "Accord", "Red", 2006, "Good miles"),
    ("Honda", "Odyssey", "Green", 2007, "Rare"),
    ("Honda", "Odyssey", "Green", 2006, "Good miles"),
    ("Honda", "CRV", "Red", 2007, "Fun car"),
    ("Honda", "CRV", "Orange", 2006, "Good miles"),
    ("Toyota", "Prius", "Tan", 2007, "Low miles"),
    ("Toyota", "Corolla", "Black", 2007, "Low miles"),
    ("Toyota", "Tercel", "Blue", 2007, "Low miles"),
    ("Toyota", "Camry", "Blue", 2007, "Low miles"),
]


def figure1_relation() -> Relation:
    """A fresh copy of the Figure 1(a) Cars relation."""
    return Relation.from_rows(autos_schema(), FIGURE1_ROWS, name="Cars")


def figure1_ordering() -> DiversityOrdering:
    """Make < Model < Color < Year < Description (Section II-B)."""
    return DiversityOrdering(["Make", "Model", "Color", "Year", "Description"])
