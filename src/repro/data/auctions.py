"""Synthetic auction listings: a third vertical.

The paper's introduction notes that "other applications such as online
auction sites and electronic stores also have similar requirements (e.g.,
showing diverse auction listings...)".  This generator produces
eBay-flavoured listings with their own natural diversity ordering
(Category < Subcategory < Condition < BuyFormat < Title), exercising the
engine on a hierarchy with very different fan-out than cars: few top-level
categories, many subcategories, long-tailed title vocabulary.
"""

from __future__ import annotations

import random

from ..core.ordering import DiversityOrdering
from ..storage.relation import Relation
from ..storage.schema import Schema

CATEGORIES = {
    "Electronics": ["Phones", "Laptops", "Cameras", "Audio", "Wearables"],
    "Collectibles": ["Coins", "Stamps", "Cards", "Comics"],
    "Fashion": ["Shoes", "Watches", "Bags"],
    "Home": ["Furniture", "Kitchen", "Garden"],
    "Motors": ["Parts", "Tools"],
}

CONDITIONS = ["new", "like new", "used", "refurbished", "for parts"]
FORMATS = ["auction", "buy it now", "best offer"]

TITLE_WORDS = [
    "vintage", "rare", "sealed", "boxed", "limited", "edition", "original",
    "mint", "bundle", "lot", "pro", "max", "mini", "classic", "signed",
    "graded", "working", "tested", "fast", "shipping",
]


def auctions_schema() -> Schema:
    return Schema.of(
        Category="categorical",
        Subcategory="categorical",
        Condition="categorical",
        BuyFormat="categorical",
        Title="text",
    )


def auctions_ordering() -> DiversityOrdering:
    """Category < Subcategory < Condition < BuyFormat < Title."""
    return DiversityOrdering(
        ["Category", "Subcategory", "Condition", "BuyFormat", "Title"]
    )


def generate_auctions(rows: int = 10_000, seed: int = 7) -> Relation:
    """Generate auction listings with category-skewed volume."""
    if rows < 0:
        raise ValueError("rows must be non-negative")
    rng = random.Random(seed)
    categories = list(CATEGORIES)
    category_weights = [5, 3, 3, 2, 1]
    relation = Relation(auctions_schema(), name="Auctions")
    for _ in range(rows):
        category = rng.choices(categories, weights=category_weights)[0]
        subcategory = rng.choice(CATEGORIES[category])
        condition = rng.choices(CONDITIONS, weights=[3, 2, 5, 1, 1])[0]
        buy_format = rng.choices(FORMATS, weights=[3, 5, 2])[0]
        title = " ".join(rng.sample(TITLE_WORDS, rng.randint(2, 4)))
        relation.insert((category, subcategory, condition, buy_format, title))
    return relation
