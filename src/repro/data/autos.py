"""Synthetic Yahoo! Autos-style car listings.

The paper evaluates on a proprietary dump of Yahoo! Autos (Section V-A).  We
cannot ship that data, so this generator produces listings with the
statistical shape the algorithms care about:

* a *skewed* make/model hierarchy (Zipf-ish popularity: a few makes dominate,
  each make has a few dominant models), giving Dewey trees with both bushy
  and skinny regions;
* heavy duplication at the bottom (many listings of the same
  make/model/color/year — the paper's motivation for why "retrieve c*k then
  post-process" fails on structured data);
* guaranteed *rare* listings (the paper's Honda S2000 example): every make
  has at least one model with only a handful of listings, which diverse
  results must still surface;
* a description column built from a small keyword vocabulary with
  model-correlated phrases, so keyword predicates of tunable selectivity
  exist.

Everything is driven by a seeded ``random.Random`` for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from ..core.ordering import DiversityOrdering
from ..storage.relation import Relation
from ..storage.schema import Schema

MAKES_MODELS = {
    "Honda": ["Civic", "Accord", "Odyssey", "CRV", "Pilot", "Fit", "Ridgeline", "S2000"],
    "Toyota": ["Camry", "Corolla", "Prius", "Tercel", "Rav4", "Highlander", "Supra"],
    "Ford": ["F150", "Focus", "Fusion", "Escape", "Mustang", "Ranger"],
    "Chevrolet": ["Silverado", "Malibu", "Impala", "Equinox", "Corvette"],
    "Nissan": ["Altima", "Sentra", "Maxima", "Rogue", "Leaf"],
    "BMW": ["328i", "535i", "X3", "X5", "M3"],
    "Volkswagen": ["Jetta", "Passat", "Golf", "Beetle"],
    "Hyundai": ["Elantra", "Sonata", "Tucson"],
    "Subaru": ["Outback", "Impreza", "Forester"],
    "Tesla": ["ModelS", "Roadster"],
}

COLORS = ["Black", "White", "Silver", "Blue", "Red", "Green", "Gray", "Tan", "Orange"]
YEARS = list(range(1999, 2009))

#: Description phrase fragments; several echo the paper's examples.
PHRASES = [
    "low miles", "low price", "one owner", "best price", "good miles",
    "clean title", "new tires", "rare find", "fun car", "great condition",
    "leather seats", "sunroof", "dealer certified", "convertible",
    "manual transmission", "automatic", "navigation system", "tow package",
]

#: Fraction of each make's listings that go to its *rare* last model.
RARE_MODEL_SHARE = 0.002


@dataclass
class AutosSpec:
    """Parameters of the generator (defaults follow Figure 4)."""

    rows: int = 50_000
    seed: int = 42
    makes: int = 10
    make_skew: float = 1.1
    model_skew: float = 1.2
    phrases_per_listing: int = 3

    def __post_init__(self):
        if self.rows < 0:
            raise ValueError("rows must be non-negative")
        if not 1 <= self.makes <= len(MAKES_MODELS):
            raise ValueError(f"makes must be in [1, {len(MAKES_MODELS)}]")


def autos_schema() -> Schema:
    """The Cars schema from Figure 1 (Id is implicit: the rid)."""
    return Schema.of(
        Make="categorical",
        Model="categorical",
        Color="categorical",
        Year="numeric",
        Description="text",
    )


def autos_ordering() -> DiversityOrdering:
    """The paper's running diversity ordering (Section II-B)."""
    return DiversityOrdering(["Make", "Model", "Color", "Year", "Description"])


def _zipf_weights(n: int, skew: float) -> List[float]:
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def generate_autos(spec: AutosSpec | None = None, **overrides) -> Relation:
    """Generate a car-listings relation according to ``spec``.

    Keyword overrides build a spec on the fly:
    ``generate_autos(rows=10_000, seed=7)``.
    """
    if spec is None:
        spec = AutosSpec(**overrides)
    elif overrides:
        raise ValueError("pass either a spec or keyword overrides, not both")
    rng = random.Random(spec.seed)
    makes = list(MAKES_MODELS)[: spec.makes]
    make_weights = _zipf_weights(len(makes), spec.make_skew)
    relation = Relation(autos_schema(), name="Cars")
    for _ in range(spec.rows):
        make = rng.choices(makes, weights=make_weights)[0]
        models = MAKES_MODELS[make]
        # The last model of every make is rare: tiny fixed probability.
        if len(models) > 1 and rng.random() < RARE_MODEL_SHARE:
            model = models[-1]
        else:
            common = models[:-1] if len(models) > 1 else models
            weights = _zipf_weights(len(common), spec.model_skew)
            model = rng.choices(common, weights=weights)[0]
        color = rng.choice(COLORS)
        year = rng.choice(YEARS)
        count = max(1, min(spec.phrases_per_listing, len(PHRASES)))
        description = ", ".join(_pick_phrases(rng, count))
        relation.insert((make, model, color, year, description))
    return relation


#: Zipf weights over PHRASES: "low miles" is in most listings, "tow package"
#: in few — so keyword predicates of *any* selectivity (Figure 4's 0-1
#: range) exist in the data.
_PHRASE_WEIGHTS = _zipf_weights(len(PHRASES), 1.4)


def _pick_phrases(rng: random.Random, count: int) -> List[str]:
    """Sample ``count`` distinct phrases with popularity skew."""
    chosen: dict[str, None] = {}
    while len(chosen) < count:
        phrase = rng.choices(PHRASES, weights=_PHRASE_WEIGHTS)[0]
        chosen.setdefault(phrase, None)
    return list(chosen)


def rare_models(relation: Relation) -> List[str]:
    """Models appearing in at most 0.1% of listings (the S2000 check)."""
    if len(relation) == 0:
        return []
    counts: dict[str, int] = {}
    position = relation.schema.position("Model")
    for row in relation:
        counts[row[position]] = counts.get(row[position], 0) + 1
    threshold = max(1, len(relation) // 1000)
    return sorted(model for model, count in counts.items() if count <= threshold)
