"""Timing harness for the Section V experiments.

Runs a workload of queries against one algorithm and reports the total
response time, mimicking the paper's methodology:

* "We report the total time for running a workload of ... different
  queries" — we time query compilation + execution, per query, and sum.
* For ``Naive`` the paper explicitly excludes the diverse-subset selection
  step ("We do not include the time this algorithm takes to choose a
  diverse set of size k from its result"), so the harness times only the
  full evaluation for that algorithm.

Workload sizes and data scales are configurable; the environment variables
``REPRO_BENCH_QUERIES`` and ``REPRO_BENCH_ROWS`` override the defaults so
the full paper scale (5000 queries, 100K rows) is one export away.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..core import baselines
from ..core.onepass import one_pass_scored, one_pass_unscored
from ..core.probing import probe_scored, probe_unscored
from ..index.inverted import InvertedIndex
from ..index.merged import MergedList
from ..query.query import Query

#: Paper algorithm names (Section V) -> (internal name, scored flag).
ALGORITHM_TAGS = {
    "UNaive": ("naive", False),
    "UBasic": ("basic", False),
    "UOnePass": ("onepass", False),
    "UProbe": ("probe", False),
    "MultQ": ("multq", False),
    "SNaive": ("naive", True),
    "SBasic": ("basic", True),
    "SOnePass": ("onepass", True),
    "SProbe": ("probe", True),
    "SMultQ": ("multq", True),
    # Ablation-only variant: one-pass with skipping disabled.
    "UOnePassNoSkip": ("onepass-noskip", False),
}


@dataclass
class WorkloadTiming:
    """Outcome of one algorithm over one workload.

    The ``cache_*`` fields are zero for the direct (uncached) runners and
    filled in by :func:`run_serving_workload`.
    """

    algorithm: str
    total_seconds: float
    queries: int
    results_returned: int
    next_calls: int
    scored_next_calls: int
    queries_issued: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_epoch_invalidations: int = 0
    shards: int = 1                  # index partitions (1 = unsharded)
    workers: int = 0                 # fan-out worker pool (0 = sequential)
    worker_mode: str = "thread"      # fan-out backend (thread/fork/spawn)

    @property
    def mean_ms(self) -> float:
        if self.queries == 0:
            return 0.0
        return 1000.0 * self.total_seconds / self.queries

    @property
    def cache_hit_ratio(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


@dataclass
class ResilientTiming(WorkloadTiming):
    """A :class:`WorkloadTiming` plus per-query latencies and failure tallies.

    Produced by :func:`run_chaos_workload`, which runs under fault
    injection: queries may degrade (answered from surviving shards) or
    fail outright (structured :class:`~repro.resilience.ResilienceError`),
    and tail latency matters as much as the mean — ``latencies_ms`` keeps
    the full per-query distribution for percentile reporting.
    """

    degraded_queries: int = 0     # answers served from surviving shards only
    failed_queries: int = 0       # ResilienceError raised (no answer at all)
    retries: int = 0              # shard-call retries spent across the run
    latencies_ms: List[float] = field(default_factory=list)

    def percentile_ms(self, p: float) -> float:
        """The p-th latency percentile (nearest-rank); 0.0 when empty."""
        if not self.latencies_ms:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ranked = sorted(self.latencies_ms)
        rank = max(0, min(len(ranked) - 1, round(p / 100.0 * len(ranked)) - 1))
        return ranked[rank]


def env_int(name: str, default: int) -> int:
    """Integer environment override with validation."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive")
    return value


def run_one(
    index: InvertedIndex, query: Query, k: int, tag: str
) -> tuple[float, int, Dict[str, int]]:
    """Execute one query; returns (timed seconds, #results, stats)."""
    name, scored = ALGORITHM_TAGS[tag]
    stats: Dict[str, int] = {}
    if name == "multq":
        start = time.perf_counter()
        if scored:
            results, issued = baselines.multq_scored(index, query, k)
        else:
            results, issued = baselines.multq_unscored(index, query, k)
        elapsed = time.perf_counter() - start
        stats["queries_issued"] = issued
        return elapsed, len(results), stats
    start = time.perf_counter()
    merged = MergedList(query, index)
    if name == "naive":
        # Timed: the full evaluation.  Untimed: the diverse selection.
        if scored:
            matches = baselines.collect_all_scored(merged)
        else:
            matches = baselines.collect_all(merged)
        elapsed = time.perf_counter() - start
        if scored:
            from ..core.diversify import scored_diverse_subset

            results = scored_diverse_subset(matches, k)
        else:
            from ..core.diversify import diverse_subset

            results = diverse_subset(matches, k)
    else:
        if name == "basic":
            results = (
                baselines.basic_scored(merged, k)
                if scored
                else baselines.basic_unscored(merged, k)
            )
        elif name == "onepass":
            results = (
                one_pass_scored(merged, k) if scored else one_pass_unscored(merged, k)
            )
        elif name == "onepass-noskip":
            results = one_pass_unscored(merged, k, use_skips=False)
        elif name == "probe":
            results = probe_scored(merged, k) if scored else probe_unscored(merged, k)
        else:
            raise ValueError(f"unknown algorithm tag {tag!r}")
        elapsed = time.perf_counter() - start
    stats["next_calls"] = merged.next_calls
    stats["scored_next_calls"] = merged.scored_next_calls
    return elapsed, len(results), stats


def run_workload(
    index: InvertedIndex,
    queries: Sequence[Query],
    k: int,
    tag: str,
) -> WorkloadTiming:
    """Run a whole workload with one algorithm; sums per-query times."""
    if tag not in ALGORITHM_TAGS:
        raise ValueError(
            f"unknown algorithm tag {tag!r}; choose from {sorted(ALGORITHM_TAGS)}"
        )
    total = 0.0
    returned = 0
    next_calls = 0
    scored_next_calls = 0
    issued = 0
    for query in queries:
        elapsed, count, stats = run_one(index, query, k, tag)
        total += elapsed
        returned += count
        next_calls += stats.get("next_calls", 0)
        scored_next_calls += stats.get("scored_next_calls", 0)
        issued += stats.get("queries_issued", 0)
    return WorkloadTiming(
        algorithm=tag,
        total_seconds=total,
        queries=len(queries),
        results_returned=returned,
        next_calls=next_calls,
        scored_next_calls=scored_next_calls,
        queries_issued=issued,
    )


def run_serving_workload(
    serving,
    queries: Sequence[Query],
    k: int,
    tag: str,
    threads: int = 0,
) -> WorkloadTiming:
    """Run a workload through a :class:`repro.serving.ServingEngine`.

    Same reporting shape as :func:`run_workload`, but the queries go
    through the serving caches (plan + result), so repeated queries
    short-circuit; the cache counter deltas of the run are attached.
    ``next_calls`` here counts only the probes of cache *misses* — hits do
    no index work.
    """
    if tag not in ALGORITHM_TAGS:
        raise ValueError(
            f"unknown algorithm tag {tag!r}; choose from {sorted(ALGORITHM_TAGS)}"
        )
    name, scored = ALGORITHM_TAGS[tag]
    if name not in ("naive", "basic", "onepass", "probe", "multq"):
        raise ValueError(f"algorithm tag {tag!r} has no engine-level equivalent")
    report = serving.search_many(
        queries, k=k, algorithm=name, scored=scored, threads=threads
    )
    next_calls = 0
    scored_next_calls = 0
    issued = 0
    for result in report.results:
        if result.stats.get("cache_hit"):
            continue
        next_calls += result.stats.get("next_calls", 0)
        scored_next_calls += result.stats.get("scored_next_calls", 0)
        issued += result.stats.get("queries_issued", 0)
    return WorkloadTiming(
        algorithm=tag,
        total_seconds=report.total_seconds,
        queries=report.queries,
        results_returned=sum(len(result) for result in report.results),
        next_calls=next_calls,
        scored_next_calls=scored_next_calls,
        queries_issued=issued,
        cache_hits=report.cache_stats.get("hits", 0),
        cache_misses=report.cache_stats.get("misses", 0),
        cache_evictions=report.cache_stats.get("evictions", 0),
        cache_epoch_invalidations=report.cache_stats.get("epoch_invalidations", 0),
    )


def run_sharded_workload(
    engine,
    queries: Sequence[Query],
    k: int,
    tag: str,
) -> WorkloadTiming:
    """Run a workload through a (sharded or plain) engine, cache-free.

    Accepts any :class:`~repro.core.engine.DiversityEngine` — in particular
    :class:`repro.sharding.ShardedEngine` — and times ``prepare`` +
    ``execute`` per query, mirroring :func:`run_workload`'s methodology so
    sharded and unsharded timings compare directly.  Attached caches are
    bypassed: this measures the fan-out hot path itself.
    """
    if tag not in ALGORITHM_TAGS:
        raise ValueError(
            f"unknown algorithm tag {tag!r}; choose from {sorted(ALGORITHM_TAGS)}"
        )
    name, scored = ALGORITHM_TAGS[tag]
    if name not in ("naive", "basic", "onepass", "probe", "multq"):
        raise ValueError(f"algorithm tag {tag!r} has no engine-level equivalent")
    total = 0.0
    returned = 0
    next_calls = 0
    scored_next_calls = 0
    issued = 0
    for query in queries:
        start = time.perf_counter()
        plan = engine.prepare(query, scored)
        result = engine.execute(plan, k, name, scored)
        total += time.perf_counter() - start
        returned += len(result)
        next_calls += result.stats.get("next_calls", 0)
        scored_next_calls += result.stats.get("scored_next_calls", 0)
        issued += result.stats.get("queries_issued", 0)
    return WorkloadTiming(
        algorithm=tag,
        total_seconds=total,
        queries=len(queries),
        results_returned=returned,
        next_calls=next_calls,
        scored_next_calls=scored_next_calls,
        queries_issued=issued,
        shards=getattr(engine, "num_shards", 1),
        workers=getattr(engine, "workers", 0),
        worker_mode=getattr(engine, "resolved_worker_mode", "thread"),
    )


def run_chaos_workload(
    engine,
    queries: Sequence[Query],
    k: int,
    tag: str,
) -> ResilientTiming:
    """Run a workload through a (possibly chaos-injected) sharded engine.

    Unlike :func:`run_sharded_workload`, this runner expects failure: a
    query may come back *degraded* (gather algorithms over surviving
    shards), raise a structured :class:`~repro.resilience.ResilienceError`
    (scan algorithms with a shard down, or an exhausted deadline), or
    simply take longer because of retries.  All three are tallied rather
    than propagated, and the full per-query latency distribution is kept
    so benchmarks can report tails honestly.
    """
    from ..resilience import ResilienceError

    if tag not in ALGORITHM_TAGS:
        raise ValueError(
            f"unknown algorithm tag {tag!r}; choose from {sorted(ALGORITHM_TAGS)}"
        )
    name, scored = ALGORITHM_TAGS[tag]
    if name not in ("naive", "basic", "onepass", "probe", "multq"):
        raise ValueError(f"algorithm tag {tag!r} has no engine-level equivalent")
    total = 0.0
    returned = 0
    next_calls = 0
    scored_next_calls = 0
    issued = 0
    degraded = 0
    failed = 0
    retries = 0
    latencies: List[float] = []
    for query in queries:
        start = time.perf_counter()
        try:
            plan = engine.prepare(query, scored)
            result = engine.execute(plan, k, name, scored)
        except ResilienceError:
            elapsed = time.perf_counter() - start
            failed += 1
        else:
            elapsed = time.perf_counter() - start
            returned += len(result)
            next_calls += result.stats.get("next_calls", 0)
            scored_next_calls += result.stats.get("scored_next_calls", 0)
            issued += result.stats.get("queries_issued", 0)
            retries += result.stats.get("retries", 0)
            if result.stats.get("degraded"):
                degraded += 1
        total += elapsed
        latencies.append(elapsed * 1000.0)
    return ResilientTiming(
        algorithm=tag,
        total_seconds=total,
        queries=len(queries),
        results_returned=returned,
        next_calls=next_calls,
        scored_next_calls=scored_next_calls,
        queries_issued=issued,
        shards=getattr(engine, "num_shards", 1),
        workers=getattr(engine, "workers", 0),
        worker_mode=getattr(engine, "resolved_worker_mode", "thread"),
        degraded_queries=degraded,
        failed_queries=failed,
        retries=retries,
        latencies_ms=latencies,
    )


def run_matrix(
    index: InvertedIndex,
    queries: Sequence[Query],
    k: int,
    tags: Iterable[str],
) -> List[WorkloadTiming]:
    """Run several algorithms over the same workload."""
    return [run_workload(index, queries, k, tag) for tag in tags]
