"""Mixed-workload definitions for the auto-selection regret harness.

One place defines the regimes; two consumers race them:

* ``tests/test_autoselect_oracle.py`` — small-scale gate (auto total
  wall-clock within 1.05x of the best single fixed algorithm);
* ``benchmarks/bench_autoselect.py`` — full-scale report emitting
  ``BENCH_autoselect.json`` with per-workload regret and win/loss tables.

The mix is deliberately adversarial to any *fixed* choice: match-all
low-k workloads (probe's home turf, paper Figs. 5-6), narrow big-k
workloads (where the 2k+1 probes lose to a short scan, the Fig. 7-8
crossover), scored variants, disjunctive auction queries, and a
Zipf-repeated pool.  A planner only earns its keep if no single
hard-coded algorithm can match it across the whole mix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.engine import DiversityEngine
from ..data.auctions import auctions_ordering, generate_auctions
from ..data.autos import autos_ordering, generate_autos
from ..data.workload import WorkloadGenerator, WorkloadSpec
from ..planner import RegretReport, measure_regret, total_regret

#: (name, dataset, spec overrides, k, scored) — ``queries`` is filled in by
#: the caller so the test and the benchmark can run the same mix at
#: different scales.
WORKLOAD_MIX = (
    # Probe regime: match-all, tiny k (Figs. 5-6 left edge).
    ("autos-matchall", "autos",
     dict(predicates=0, selectivity=1.0), 5, False),
    # Scan regime: narrow conjunctions, big k (the Figs. 7-8 crossover).
    ("autos-narrow-bigk", "autos",
     dict(predicates=2, selectivity=0.2), 40, False),
    # Scored: probe pays its two-pass factor, shifting the crossover.
    ("autos-scored", "autos",
     dict(predicates=1, selectivity=0.5, weighted=True), 10, True),
    # Disjunctive auction queries: OR estimates, different leaf shapes.
    ("auctions-disjunctive", "auctions",
     dict(predicates=2, selectivity=0.4, disjunctive=True), 10, False),
    # Zipf-repeated pool: the serving-traffic shape (popular queries recur).
    ("auctions-zipf", "auctions",
     dict(predicates=1, selectivity=0.5, distinct=12, zipf_s=1.1), 10, False),
)


def mixed_workloads(
    rows: int = 5000,
    queries: int = 40,
    seed: int = 1,
) -> List[Dict]:
    """Materialise the standard mix: engines built once per dataset.

    Returns a list of dicts ``{name, engine, queries, k, scored}`` ready
    for :func:`repro.planner.measure_regret`.
    """
    if rows < 1 or queries < 1:
        raise ValueError("rows and queries must be positive")
    autos = generate_autos(rows=rows, seed=seed)
    auctions = generate_auctions(rows=rows, seed=seed)
    engines = {
        "autos": DiversityEngine.from_relation(autos, autos_ordering()),
        "auctions": DiversityEngine.from_relation(auctions, auctions_ordering()),
    }
    relations = {"autos": autos, "auctions": auctions}
    workloads = []
    for name, dataset, overrides, k, scored in WORKLOAD_MIX:
        if name == "autos-narrow-bigk":
            # Keep this workload on the scan side of the Figs. 7-8
            # crossover at any bench scale: two predicates at 0.2
            # selectivity match ~4% of rows, so a k tracking 5% of rows
            # keeps the 2k+1 probe bound overshooting the scan length.
            k = min(2000, max(40, int(rows * 0.05)))
        spec = WorkloadSpec(queries=queries, k=k, seed=seed, **overrides)
        generator = WorkloadGenerator(relations[dataset], spec)
        workloads.append({
            "name": name,
            "engine": engines[dataset],
            "queries": generator.materialise(),
            "k": k,
            "scored": scored,
        })
    return workloads


def race_mix(
    workloads: Sequence[Dict],
    repeats: int = 3,
    candidates: Optional[Sequence[str]] = None,
    registry=None,
) -> List[RegretReport]:
    """Run the regret harness over every workload in the mix."""
    return [
        measure_regret(
            w["engine"], w["queries"], w["k"], scored=w["scored"],
            candidates=candidates, repeats=repeats, name=w["name"],
            registry=registry,
        )
        for w in workloads
    ]


def summarise(reports: Sequence[RegretReport]) -> Dict:
    """The benchmark report body: per-workload tables + aggregate verdict."""
    summary = total_regret(reports)
    choices: Dict[str, int] = {}
    wins = 0
    races = 0
    for report in reports:
        for algorithm, count in report.choices.items():
            choices[algorithm] = choices.get(algorithm, 0) + count
        for won in report.wins_against().values():
            races += 1
            wins += int(won)
    return {
        "workloads": [report.as_dict() for report in reports],
        "total": summary,
        "choices_total": dict(sorted(choices.items())),
        "races": races,
        "wins": wins,
    }
