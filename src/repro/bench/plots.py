"""ASCII charts for reproduced figures.

The paper's figures are line plots of response time against a swept
parameter.  With no plotting stack available offline, this renders the same
curves as terminal charts: one glyph per algorithm, optional log-scale y
axis (the paper's figures span orders of magnitude), series legend.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .figures import FigureResult

#: Plot glyphs, assigned to series in order.
GLYPHS = "ox+*#@%&"


def render_ascii_chart(
    result: FigureResult,
    width: int = 64,
    height: int = 16,
    log_y: bool = True,
) -> str:
    """Render one figure as an ASCII chart (values > 0 required for log)."""
    if width < 16 or height < 4:
        raise ValueError("chart too small to draw")
    series_names = list(result.series)
    if not series_names or not result.x_values:
        return f"== {result.figure}: {result.title} == (no data)"
    points = [
        (name, list(values)) for name, values in result.series.items()
    ]
    flat = [v for _, values in points for v in values]
    positive = [v for v in flat if v > 0]
    if log_y and not positive:
        log_y = False
    if log_y:
        floor_value = min(positive) / 1.5
        transform = lambda v: math.log10(max(v, floor_value))
    else:
        transform = lambda v: v
    lo = min(transform(v) for v in flat)
    hi = max(transform(v) for v in flat)
    if hi == lo:
        hi = lo + 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    columns = _spread(len(result.x_values), width)
    for series_index, (name, values) in enumerate(points):
        glyph = GLYPHS[series_index % len(GLYPHS)]
        for point_index, value in enumerate(values):
            column = columns[point_index]
            fraction = (transform(value) - lo) / (hi - lo)
            row = height - 1 - round(fraction * (height - 1))
            if grid[row][column] == " ":
                grid[row][column] = glyph
            else:
                grid[row][column] = "!"  # overlapping points
    y_top = _format_value(hi, log_y)
    y_bottom = _format_value(lo, log_y)
    label_width = max(len(y_top), len(y_bottom))
    lines = [f"== {result.figure}: {result.title} =="]
    if log_y:
        lines.append("   (log-scale y, seconds)")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_top.rjust(label_width)
        elif row_index == height - 1:
            label = y_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = [" "] * width
    for point_index, x in enumerate(result.x_values):
        text = str(x)
        start = min(columns[point_index], width - len(text))
        for offset, char in enumerate(text):
            x_axis[start + offset] = char
    lines.append(" " * label_width + "  " + "".join(x_axis))
    lines.append(" " * label_width + f"  {result.x_label}")
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]}={name}" for i, name in enumerate(series_names)
    )
    lines.append(f"legend: {legend}  (!=overlap)")
    return "\n".join(lines)


def _spread(count: int, width: int) -> List[int]:
    """Column positions for ``count`` points across ``width`` columns."""
    if count == 1:
        return [width // 2]
    return [round(i * (width - 1) / (count - 1)) for i in range(count)]


def _format_value(value: float, log_y: bool) -> str:
    real = 10 ** value if log_y else value
    if real >= 100:
        return f"{real:.0f}"
    if real >= 1:
        return f"{real:.2f}"
    return f"{real:.4f}"
