"""Rendering and persistence for reproduced figures."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TextIO, Union

from .figures import FigureResult


def render_text(result: FigureResult) -> str:
    """An aligned text table: one row per x value, one column per series."""
    names = list(result.series)
    header = [result.x_label] + names
    rows = []
    for i, x in enumerate(result.x_values):
        row = [str(x)]
        for name in names:
            value = result.series[name][i]
            row.append(f"{value:.4f}")
        rows.append(row)
    widths = [
        max(len(header[c]), *(len(row[c]) for row in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    lines = [f"== {result.figure}: {result.title} =="]
    if result.meta:
        meta = ", ".join(f"{key}={value}" for key, value in sorted(result.meta.items()))
        lines.append(f"   ({meta})")
    lines.append("  ".join(header[c].ljust(widths[c]) for c in range(len(header))))
    lines.append("  ".join("-" * widths[c] for c in range(len(header))))
    for row in rows:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in range(len(header))))
    return "\n".join(lines)


def write_csv(result: FigureResult, target: Union[str, Path, TextIO]) -> None:
    """Persist one figure's series as CSV (x column + one per algorithm)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", newline="", encoding="utf-8") as handle:
            write_csv(result, handle)
        return
    writer = csv.writer(target)
    names = list(result.series)
    writer.writerow([result.x_label] + names)
    for i, x in enumerate(result.x_values):
        writer.writerow([x] + [result.series[name][i] for name in names])


def to_csv_string(result: FigureResult) -> str:
    buffer = io.StringIO()
    write_csv(result, buffer)
    return buffer.getvalue()
