"""Experiment drivers: one function per paper figure, plus our ablations.

Each driver returns a :class:`FigureResult` — the x axis, one timing series
per algorithm, and enough metadata to print the same curves the paper plots.
Scales default to laptop-friendly values; set ``REPRO_BENCH_ROWS`` /
``REPRO_BENCH_QUERIES`` (or pass arguments) to approach the paper's 5000
queries over 10K-100K listings.

See DESIGN.md §4 for the per-experiment index and EXPERIMENTS.md for
recorded outcomes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.onepass import one_pass_unscored
from ..core.probing import probe_scored, probe_unscored
from ..data.autos import AutosSpec, generate_autos
from ..data.workload import WorkloadGenerator, WorkloadSpec
from ..index.inverted import InvertedIndex
from ..index.merged import MergedList
from ..query.evaluate import selectivity as exact_selectivity
from .harness import WorkloadTiming, env_int, run_matrix, run_workload

UNSCORED_ALGOS = ("UNaive", "UBasic", "UOnePass", "UProbe")
SCORED_ALGOS = ("SNaive", "SBasic", "SOnePass", "SProbe")


@dataclass
class FigureResult:
    """One reproduced figure: series of total workload times (seconds)."""

    figure: str
    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]]
    meta: Dict[str, object] = field(default_factory=dict)

    def row_pairs(self) -> List[tuple]:
        """(x, {algorithm: seconds}) rows for reporting."""
        return [
            (x, {name: values[i] for name, values in self.series.items()})
            for i, x in enumerate(self.x_values)
        ]


def _build_index(rows: int, seed: int = 42) -> InvertedIndex:
    relation = generate_autos(AutosSpec(rows=rows, seed=seed))
    from ..data.autos import autos_ordering

    return InvertedIndex.build(relation, autos_ordering())


def figure5(
    rows_grid: Optional[Sequence[int]] = None,
    queries: Optional[int] = None,
    k: int = 10,
    seed: int = 42,
) -> FigureResult:
    """Figure 5: response time vs data size, unscored, default workload.

    Paper shape: UNaive grows with the number of listings; UOnePass and
    UProbe are flat and indistinguishable from UBasic.
    """
    queries = queries or env_int("REPRO_BENCH_QUERIES", 100)
    if rows_grid is None:
        base = env_int("REPRO_BENCH_ROWS", 50_000)
        rows_grid = [base // 5, (2 * base) // 5, (3 * base) // 5, (4 * base) // 5, base]
    series: Dict[str, List[float]] = {tag: [] for tag in UNSCORED_ALGOS}
    for rows in rows_grid:
        index = _build_index(rows, seed=seed)
        # One random predicate per query at the default 0.5 selectivity:
        # UNaive still scans ~half the listings (Fig. 4's "None" default
        # would make every query identical), so the growth trend is intact.
        workload = WorkloadGenerator(
            index.relation,
            WorkloadSpec(queries=queries, predicates=1, selectivity=0.5, seed=seed),
        ).materialise()
        for timing in run_matrix(index, workload, k, UNSCORED_ALGOS):
            series[timing.algorithm].append(timing.total_seconds)
    return FigureResult(
        figure="fig5",
        title="Varying Data Size (Unscored)",
        x_label="number of listings",
        x_values=list(rows_grid),
        series=series,
        meta={"queries": queries, "k": k},
    )


def figure6(
    k_grid: Sequence[int] = (1, 5, 10, 25, 50, 100),
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    include_multq: bool = False,
    seed: int = 42,
) -> FigureResult:
    """Figure 6: response time vs k, unscored.

    Paper shape: everything beats UNaive (and MultQ); UOnePass/UProbe track
    UBasic closely even at k = 100.  MultQ is optional because it is orders
    of magnitude slower (the paper's point), which dominates runtime.
    """
    rows = rows or env_int("REPRO_BENCH_ROWS", 50_000)
    queries = queries or env_int("REPRO_BENCH_QUERIES", 100)
    tags = list(UNSCORED_ALGOS) + (["MultQ"] if include_multq else [])
    index = _build_index(rows, seed=seed)
    workload = WorkloadGenerator(
        index.relation,
        WorkloadSpec(queries=queries, predicates=2, selectivity=0.5, seed=seed),
    ).materialise()
    series: Dict[str, List[float]] = {tag: [] for tag in tags}
    for k in k_grid:
        for timing in run_matrix(index, workload, k, tags):
            series[timing.algorithm].append(timing.total_seconds)
    return FigureResult(
        figure="fig6",
        title="Varying k (Unscored)",
        x_label="number of results k",
        x_values=list(k_grid),
        series=series,
        meta={"rows": rows, "queries": queries},
    )


def figure7(
    buckets: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    k: int = 10,
    seed: int = 42,
) -> FigureResult:
    """Figure 7: response time vs query selectivity, unscored.

    The paper groups random queries by their *measured* selectivity and
    averages response times per group; we do the same, generating workloads
    aimed at each bucket and assigning queries to the nearest bucket.
    """
    rows = rows or env_int("REPRO_BENCH_ROWS", 50_000)
    queries = queries or env_int("REPRO_BENCH_QUERIES", 100)
    index = _build_index(rows, seed=seed)
    relation = index.relation
    # Pool queries from several target selectivities, then bucket by the
    # exact measured selectivity (the paper's grouping step).
    pool = []
    per_target = max(1, queries // len(buckets))
    for target in buckets:
        generator = WorkloadGenerator(
            relation,
            WorkloadSpec(
                queries=per_target, predicates=1, selectivity=target, seed=seed
            ),
        )
        pool.extend(generator.materialise())
    grouped: Dict[float, List] = {bucket: [] for bucket in buckets}
    for query in pool:
        measured = exact_selectivity(relation, query)
        nearest = min(buckets, key=lambda b: abs(b - measured))
        grouped[nearest].append(query)
    # Empty buckets (no query landed nearby) are dropped, as in the paper's
    # grouping of measured selectivities.
    filled = [bucket for bucket in buckets if grouped[bucket]]
    series: Dict[str, List[float]] = {tag: [] for tag in UNSCORED_ALGOS}
    counts = []
    for bucket in filled:
        group = grouped[bucket]
        counts.append(len(group))
        for tag in UNSCORED_ALGOS:
            timing = run_workload(index, group, k, tag)
            # Average per query so unevenly filled buckets compare.
            series[tag].append(timing.total_seconds / len(group))
    return FigureResult(
        figure="fig7",
        title="Varying Q's Selectivity (Unscored)",
        x_label="query selectivity",
        x_values=filled,
        series=series,
        meta={"rows": rows, "queries_per_bucket": counts, "k": k,
              "unit": "seconds per query"},
    )


def figure8(
    k_grid: Sequence[int] = (1, 5, 10, 25, 50, 100),
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    seed: int = 42,
) -> FigureResult:
    """Figure 8: response time vs k, scored (disjunctive weighted queries).

    Paper shape: SOnePass and SProbe grow roughly linearly with k but beat
    SNaive; SProbe stays close to SBasic.
    """
    rows = rows or env_int("REPRO_BENCH_ROWS", 50_000)
    queries = queries or env_int("REPRO_BENCH_QUERIES", 100)
    index = _build_index(rows, seed=seed)
    workload = WorkloadGenerator(
        index.relation,
        WorkloadSpec(
            queries=queries,
            predicates=3,
            selectivity=0.3,
            disjunctive=True,
            weighted=True,
            seed=seed,
        ),
    ).materialise()
    series: Dict[str, List[float]] = {tag: [] for tag in SCORED_ALGOS}
    for k in k_grid:
        for timing in run_matrix(index, workload, k, SCORED_ALGOS):
            series[timing.algorithm].append(timing.total_seconds)
    return FigureResult(
        figure="fig8",
        title="Varying k (Scored)",
        x_label="number of results k",
        x_values=list(k_grid),
        series=series,
        meta={"rows": rows, "queries": queries},
    )


def summary_table(
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    k: int = 10,
    seed: int = 42,
) -> FigureResult:
    """The Experiments Summary: every algorithm on the default workload.

    Paper: MultQ / UNaive / SNaive are orders of magnitude slower; UProbe
    matches UBasic; SProbe comes close to SBasic.
    """
    rows = rows or env_int("REPRO_BENCH_ROWS", 20_000)
    queries = queries or env_int("REPRO_BENCH_QUERIES", 30)
    index = _build_index(rows, seed=seed)
    unscored_workload = WorkloadGenerator(
        index.relation,
        WorkloadSpec(queries=queries, predicates=2, selectivity=0.5, seed=seed),
    ).materialise()
    scored_workload = WorkloadGenerator(
        index.relation,
        WorkloadSpec(
            queries=queries, predicates=3, selectivity=0.3,
            disjunctive=True, weighted=True, seed=seed,
        ),
    ).materialise()
    tags_unscored = ["MultQ", "UNaive", "UBasic", "UOnePass", "UProbe"]
    tags_scored = ["SNaive", "SBasic", "SOnePass", "SProbe"]
    series: Dict[str, List[float]] = {}
    for timing in run_matrix(index, unscored_workload, k, tags_unscored):
        series[timing.algorithm] = [timing.total_seconds]
    for timing in run_matrix(index, scored_workload, k, tags_scored):
        series[timing.algorithm] = [timing.total_seconds]
    return FigureResult(
        figure="summary",
        title="Experiments Summary (total workload seconds)",
        x_label="workload",
        x_values=["default"],
        series=series,
        meta={"rows": rows, "queries": queries, "k": k},
    )


def ablation_probe_counts(
    k_grid: Sequence[int] = (1, 5, 10, 25, 50, 100),
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    seed: int = 42,
) -> FigureResult:
    """Ablation: measured ``next`` probes per query vs the 2k bound
    (Theorem 2)."""
    rows = rows or env_int("REPRO_BENCH_ROWS", 20_000)
    queries = queries or env_int("REPRO_BENCH_QUERIES", 50)
    index = _build_index(rows, seed=seed)
    workload = WorkloadGenerator(
        index.relation,
        WorkloadSpec(queries=queries, predicates=2, selectivity=0.5, seed=seed),
    ).materialise()
    probes: List[float] = []
    bound: List[float] = []
    for k in k_grid:
        calls = 0
        for query in workload:
            merged = MergedList(query, index)
            probe_unscored(merged, k)
            calls += merged.next_calls
        probes.append(calls / len(workload))
        bound.append(float(2 * k))
    return FigureResult(
        figure="abl-probes",
        title="Probe count vs Theorem 2 bound (UProbe)",
        x_label="number of results k",
        x_values=list(k_grid),
        series={"measured next() calls": probes, "2k bound": bound},
        meta={"rows": rows, "queries": queries},
    )


def ablation_backend(
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    k: int = 10,
    seed: int = 42,
) -> FigureResult:
    """Ablation: sorted-array vs B+-tree posting lists (UOnePass/UProbe)."""
    rows = rows or env_int("REPRO_BENCH_ROWS", 20_000)
    queries = queries or env_int("REPRO_BENCH_QUERIES", 50)
    from ..data.autos import autos_ordering

    relation = generate_autos(AutosSpec(rows=rows, seed=seed))
    workload = WorkloadGenerator(
        relation,
        WorkloadSpec(queries=queries, predicates=2, selectivity=0.5, seed=seed),
    ).materialise()
    series: Dict[str, List[float]] = {}
    for backend in ("array", "bptree"):
        index = InvertedIndex.build(relation, autos_ordering(), backend=backend)
        for timing in run_matrix(index, workload, k, ("UOnePass", "UProbe")):
            series[f"{timing.algorithm}/{backend}"] = [timing.total_seconds]
    return FigureResult(
        figure="abl-backend",
        title="Posting-list backend ablation",
        x_label="workload",
        x_values=["default"],
        series=series,
        meta={"rows": rows, "queries": queries, "k": k},
    )


def ablation_skipping(
    k_grid: Sequence[int] = (1, 10, 50),
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    seed: int = 42,
) -> FigureResult:
    """Ablation: one-pass with and without the skip-ahead rule."""
    rows = rows or env_int("REPRO_BENCH_ROWS", 20_000)
    queries = queries or env_int("REPRO_BENCH_QUERIES", 50)
    index = _build_index(rows, seed=seed)
    workload = WorkloadGenerator(
        index.relation,
        WorkloadSpec(queries=queries, predicates=1, selectivity=0.5, seed=seed),
    ).materialise()
    series: Dict[str, List[float]] = {"UOnePass": [], "UOnePassNoSkip": []}
    for k in k_grid:
        for timing in run_matrix(index, workload, k, ("UOnePass", "UOnePassNoSkip")):
            series[timing.algorithm].append(timing.total_seconds)
    return FigureResult(
        figure="abl-skip",
        title="One-pass skip-ahead ablation",
        x_label="number of results k",
        x_values=list(k_grid),
        series=series,
        meta={"rows": rows, "queries": queries},
    )


def ablation_cxk(
    c_values: Sequence[int] = (1, 2, 5, 10, 50),
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    k: int = 10,
    seed: int = 42,
) -> FigureResult:
    """Ablation: the introduction's web-search baseline (retrieve c*k, then
    MMR-rerank) vs exact diversity.

    Reports the mean number of water-fill violations per query for each
    window factor c — the paper argues c must reach "1000s or 10000s" on
    duplicate-heavy structured data before the window even *contains* a
    diverse subset; UProbe has zero violations at ~2k probes.
    """
    from ..core.baselines import collect_all
    from ..core.mmr import retrieve_ck_diverse
    from ..core.similarity import balance_violations

    rows = rows or env_int("REPRO_BENCH_ROWS", 20_000)
    queries = queries or env_int("REPRO_BENCH_QUERIES", 30)
    index = _build_index(rows, seed=seed)
    workload = WorkloadGenerator(
        index.relation,
        WorkloadSpec(queries=queries, predicates=1, selectivity=0.5, seed=seed),
    ).materialise()
    violations: Dict[int, float] = {c: 0.0 for c in c_values}
    probe_violations = 0.0
    counted = 0
    for query in workload:
        merged = MergedList(query, index)
        full = collect_all(merged)
        if not full:
            continue
        counted += 1
        for c in c_values:
            selected = retrieve_ck_diverse(MergedList(query, index), k, c)
            violations[c] += balance_violations(selected, full)
        exact = probe_unscored(MergedList(query, index), k)
        probe_violations += balance_violations(exact, full)
    counted = max(1, counted)
    series = {
        "retrieve-c*k + MMR": [violations[c] / counted for c in c_values],
        "UProbe (exact)": [probe_violations / counted] * len(c_values),
    }
    return FigureResult(
        figure="abl-cxk",
        title="Retrieve-c*k-and-rerank vs exact diversity (violations/query)",
        x_label="window factor c",
        x_values=list(c_values),
        series=series,
        meta={"rows": rows, "queries": queries, "k": k,
              "unit": "mean water-fill violations per query"},
    )


ALL_FIGURES = {
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "summary": summary_table,
    "abl-probes": ablation_probe_counts,
    "abl-backend": ablation_backend,
    "abl-skip": ablation_skipping,
    "abl-cxk": ablation_cxk,
}
