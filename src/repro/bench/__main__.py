"""Command-line driver: regenerate the paper's figures.

Usage::

    python -m repro.bench                 # every figure, laptop scale
    python -m repro.bench fig5 fig6       # selected figures
    python -m repro.bench --list
    REPRO_BENCH_ROWS=100000 REPRO_BENCH_QUERIES=5000 \
        python -m repro.bench fig5        # paper scale

Writes one CSV per figure next to the text report when ``--out`` is given.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .figures import ALL_FIGURES
from .report import render_text, write_csv


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the figures of the ICDE 2008 diversity paper.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        help=f"figures to run (default: all of {', '.join(ALL_FIGURES)})",
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument(
        "--out", type=Path, default=None, help="directory for CSV outputs"
    )
    parser.add_argument(
        "--plot", action="store_true", help="also render ASCII charts"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in ALL_FIGURES:
            print(name)
        return 0
    selected = args.figures or list(ALL_FIGURES)
    unknown = [name for name in selected if name not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown}; use --list")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in selected:
        started = time.perf_counter()
        result = ALL_FIGURES[name]()
        elapsed = time.perf_counter() - started
        print(render_text(result))
        print(f"   [generated in {elapsed:.1f}s]")
        print()
        if args.plot:
            from .plots import render_ascii_chart

            print(render_ascii_chart(result))
            print()
        if args.out is not None:
            path = args.out / f"{name}.csv"
            write_csv(result, path)
            print(f"   wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
