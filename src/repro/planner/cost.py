"""The cost model behind ``algorithm="auto"``.

The paper's own experiments (Figs. 5-8) show no algorithm dominates: probe
wins when many rows match and k is small (its Theorem 2 bound of ``2k+1``
probes is independent of the match count), one-pass/naive win when few rows
match (a short scan beats the probing driver's bidirectional region
bookkeeping), and the crossover moves with k, selectivity and scoring.
This module prices each algorithm for one prepared query from the exact
statistics the index already keeps — posting-list lengths — plus the
independence-assumption selectivity estimates of :mod:`repro.query.estimate`,
and picks the cheapest *diversity-preserving* algorithm.

The currency is the **seek unit**: one positioned lookup into one posting
list (what a single leaf-cursor ``next`` costs, up to a logarithmic bisect
factor).  All constants are relative weights in that unit; absolute wall
clock cancels out of the comparison.  The model only has to *rank*
correctly — and only has to rank correctly where the costs diverge, since
near the crossover either choice is within the regret budget (the oracle
tests gate auto at 1.05x the best fixed algorithm).

Costs per algorithm (``M`` = estimated matches, ``k`` = result size,
``d`` = diversity-tree depth, ``c`` = seek units per merged ``next``):

* ``naive``   — full evaluation, ``(M+1)·c``, plus the exact diverse
  selection over all ``M`` matches (``M·d`` cheap dict operations).
* ``basic``   — first-k / WAND: ``(min(k,M)+1)`` nexts.  Not diversity
  preserving; priced for ``plan explain`` but excluded from auto's
  default candidates.
* ``onepass`` — single scan with skips: between ``k`` and ``M`` visits;
  modelled as ``k + min(1, k/skip_k)·(M-k)`` (skips prune a lot of the
  scan at small k but almost none of it once k approaches ``skip_k``),
  each visit paying one next plus per-level one-pass tree bookkeeping.
* ``probe``   — ``2·min(k,M)+1`` probes (Theorem 2), each paying one next
  plus per-level probe-region bookkeeping.  Independent of ``M`` — the
  whole reason auto exists.
* ``multq``   — the rewrite baseline issues one sub-query per value
  combination of the first ordering levels; priced from vocabulary sizes,
  excluded from auto's default candidates (not an index-driven diverse
  algorithm).

Scored variants pay a per-leaf surcharge on every next (the WAND driver
sorts leaf states and accumulates scores) and naive additionally scores
every match.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..query.estimate import estimate_cardinality, leaf_cardinality
from ..query.query import AND, LEAF, OR, Query

#: Every algorithm the model can price (mirrors ``repro.core.ALGORITHMS``;
#: not imported from there to keep this module engine-independent).
PRICEABLE = ("onepass", "probe", "naive", "basic", "multq")

#: Algorithms auto picks among by default: the diversity-preserving ones.
#: ``basic`` (first-k, no diversity) and ``multq`` (rewrite baseline) answer
#: a different question, so auto never silently substitutes them — they
#: remain reachable as explicit ``algorithm=`` choices and are still priced
#: for ``plan explain``.
DEFAULT_CANDIDATES = ("onepass", "probe", "naive")

#: Deterministic tie-break when two candidates price identically: prefer the
#: paper's bounded algorithms over the baseline.
_PREFERENCE = {"probe": 0, "onepass": 1, "naive": 2, "basic": 3, "multq": 4}


@dataclass(frozen=True)
class CostConstants:
    """Relative weights of the cost model, in seek units.

    Calibrated once against the repo's own benchmarks (bench_autoselect);
    the differential tests do not depend on them (auto is compared against
    whatever it picked), and the oracle tests only need the *ranking* to be
    right away from the crossover.
    """

    seek_log: float = 0.12        # marginal bisect cost per doubling of a list
    and_rounds: float = 1.6       # mean leapfrog rounds per AND next
    tree_op: float = 0.7          # one-pass tree bookkeeping per visit, per level
    probe_op: float = 1.2         # probe-region bookkeeping per probe, per level
    diversify_op: float = 0.08    # naive post-selection per match, per level
    skip_k: float = 24.0          # k at which one-pass skips stop helping
    scored_leaf: float = 0.9      # per-leaf WAND surcharge per scored next
    scored_probe_pass: float = 2.0  # scored probing's extra threshold passes
    multq_query: float = 3.0      # fixed overhead per issued rewrite sub-query


DEFAULT_CONSTANTS = CostConstants()


@dataclass(frozen=True)
class PlanFeatures:
    """The feature vector the cost model prices from.

    Everything here comes from statistics the index keeps exactly (posting
    lengths, vocabulary) or from :mod:`repro.query.estimate`'s independence
    estimates — no data is scanned to plan.
    """

    rows: int                 # |R|: live indexed tuples
    est_matches: float        # estimated match count (exact for leaves)
    selectivity: float        # est_matches / rows (0 when the index is empty)
    leaves: int               # leaf predicates in the tree
    rarest_leaf: int          # smallest exact leaf cardinality
    total_leaf_postings: int  # sum of exact leaf cardinalities
    next_cost: float          # seek units one merged next() costs
    depth: int                # diversity-tree depth
    k: int
    scored: bool
    disjunctive: bool         # any OR node in the tree

    def as_stats(self) -> Dict[str, float]:
        """The feature entries merged into ``result.stats`` / explain."""
        return {
            "plan_rows": self.rows,
            "plan_est_matches": round(self.est_matches, 2),
            "plan_selectivity": round(self.selectivity, 4),
            "plan_leaves": self.leaves,
            "plan_rarest_leaf": self.rarest_leaf,
            "plan_next_cost": round(self.next_cost, 3),
        }


@dataclass(frozen=True)
class PlanDecision:
    """One planning verdict: the chosen algorithm plus its evidence.

    ``epoch`` is the index mutation epoch the statistics were read at — the
    serving-layer decision cache rejects a decision whose epoch no longer
    matches, so mutated relations re-plan (PR 7 satellite: epoch + k +
    scored keying).
    """

    algorithm: str
    k: int
    scored: bool
    epoch: int
    costs: Mapping[str, float]          # candidate -> seek units
    features: PlanFeatures
    candidates: Tuple[str, ...]
    reason: str = "cost"                # "cost" | "forced" | "stats unavailable"

    def margin(self) -> float:
        """Chosen cost / runner-up cost (1.0 when there is no runner-up)."""
        others = [v for a, v in self.costs.items()
                  if a != self.algorithm and a in self.candidates]
        if not others:
            return 1.0
        best_other = min(others)
        mine = self.costs[self.algorithm]
        return mine / best_other if best_other > 0 else 1.0


def _leaf_seek_cost(leaf: Query, index, constants: CostConstants) -> float:
    """Seek units one ``next`` on one leaf cursor costs.

    A keyword leaf compiles to an AND over its token lists, so it pays one
    seek per token; every seek carries a logarithmic bisect surcharge that
    grows with the list it lands in.
    """
    predicate = leaf.predicate
    terms = getattr(predicate, "terms", None)
    if terms:
        cost = 0.0
        for token in terms:
            length = len(index.token_postings(predicate.attribute, token))
            cost += 1.0 + constants.seek_log * math.log2(1.0 + length)
        return cost
    length = leaf_cardinality(leaf, index)
    return 1.0 + constants.seek_log * math.log2(1.0 + length)


def _next_cost(query: Query, index, constants: CostConstants) -> float:
    """Seek units one merged-list ``next`` costs for this query shape.

    AND cursors leapfrog: each next runs ~``and_rounds`` agreement rounds
    over all children; OR cursors probe every child once per next.
    """
    if query.kind == LEAF:
        return _leaf_seek_cost(query, index, constants)
    child_cost = sum(_next_cost(child, index, constants) for child in query.children)
    if query.kind == AND and len(query.children) > 1:
        return constants.and_rounds * child_cost
    return child_cost


def extract_features(
    index,
    query: Query,
    k: int,
    scored: bool = False,
    constants: CostConstants = DEFAULT_CONSTANTS,
) -> PlanFeatures:
    """Read the planning statistics for one prepared query.

    Pure index-statistics work — O(tree size) posting-length lookups, no
    row is touched.  Works over anything implementing the index read
    protocol (including :class:`repro.sharding.ShardedIndex`, whose union
    posting views report the same global lengths as an unsharded index, so
    sharded and unsharded deployments plan identically).
    """
    rows = len(index)
    leaves = list(query.leaves())
    cardinalities = [leaf_cardinality(leaf, index) for leaf in leaves]
    est = estimate_cardinality(query, index)
    return PlanFeatures(
        rows=rows,
        est_matches=est,
        selectivity=(est / rows) if rows else 0.0,
        leaves=len(leaves),
        rarest_leaf=min(cardinalities) if cardinalities else 0,
        total_leaf_postings=sum(cardinalities),
        next_cost=_next_cost(query, index, constants),
        depth=index.depth,
        k=k,
        scored=scored,
        disjunctive=_has_or(query),
    )


def _has_or(query: Query) -> bool:
    if query.kind == OR:
        return True
    return any(_has_or(child) for child in query.children)


def _multq_issued(index, constants: CostConstants) -> float:
    """Sub-queries the rewrite baseline issues: one per value combination
    of the first rewrite levels (``MULTQ_DEFAULT_LEVELS``)."""
    from ..core.baselines import MULTQ_DEFAULT_LEVELS

    issued = 1.0
    ordering = index.ordering
    for attribute in list(ordering.attributes)[:MULTQ_DEFAULT_LEVELS]:
        issued *= max(1, len(index.vocabulary(attribute)))
    return issued


def algorithm_cost(
    algorithm: str,
    features: PlanFeatures,
    constants: CostConstants = DEFAULT_CONSTANTS,
    index=None,
) -> float:
    """Price one algorithm for one feature vector, in seek units.

    ``index`` is only needed for ``multq`` (vocabulary sizes); the other
    algorithms price from the features alone.
    """
    M = features.est_matches
    k = features.k
    d = max(1, features.depth)
    c = features.next_cost
    if features.scored:
        # Every scored next pays the WAND driver's per-leaf state work.
        c = c + features.leaves * constants.scored_leaf
    found = min(k, M)  # no algorithm can return more than matches exist

    if algorithm == "naive":
        cost = (M + 1.0) * c + M * d * constants.diversify_op
        if features.scored:
            cost += M * features.leaves * constants.scored_leaf
        return cost
    if algorithm == "basic":
        return (found + 1.0) * c
    if algorithm == "onepass":
        # The deeper into the tree the scan must descend to fill k slots,
        # the less its diversity skips prune: measured visit counts grow
        # from a few percent of the surplus at k~5 to essentially all of
        # it by k~skip_k, so the surplus fraction scales with k.
        skip_alpha = min(1.0, k / constants.skip_k)
        visits = found + skip_alpha * max(0.0, M - k)
        return (visits + 1.0) * (c + d * constants.tree_op)
    if algorithm == "probe":
        probes = 2.0 * found + 1.0
        cost = probes * (c + d * constants.probe_op)
        if features.scored:
            cost *= constants.scored_probe_pass
        return cost
    if algorithm == "multq":
        if index is None:
            raise ValueError("pricing multq needs the index (vocabulary sizes)")
        issued = _multq_issued(index, constants)
        return issued * (constants.multq_query + (found + 1.0) * c)
    raise ValueError(f"unknown algorithm {algorithm!r}; choose from {PRICEABLE}")


def estimate_costs(
    index,
    query: Query,
    k: int,
    scored: bool = False,
    algorithms: Sequence[str] = PRICEABLE,
    constants: CostConstants = DEFAULT_CONSTANTS,
    features: Optional[PlanFeatures] = None,
) -> Dict[str, float]:
    """Price several algorithms for one prepared query (``plan explain``)."""
    if features is None:
        features = extract_features(index, query, k, scored, constants)
    return {
        algorithm: algorithm_cost(algorithm, features, constants, index=index)
        for algorithm in algorithms
    }


def choose(
    index,
    query: Query,
    k: int,
    scored: bool = False,
    candidates: Optional[Sequence[str]] = None,
    constants: CostConstants = DEFAULT_CONSTANTS,
) -> PlanDecision:
    """Pick the cheapest candidate algorithm for one prepared query.

    ``candidates`` defaults to the diversity-preserving set
    (:data:`DEFAULT_CANDIDATES`); passing a single-element tuple forces
    that algorithm through the auto path (the differential tests use this
    to exercise auto against every fixed algorithm).  Deterministic given
    the query and the index statistics — exactly the property the serving
    layer's decision cache relies on.
    """
    chosen = DEFAULT_CANDIDATES if candidates is None else tuple(candidates)
    if not chosen:
        raise ValueError("auto needs at least one candidate algorithm")
    for algorithm in chosen:
        if algorithm not in PRICEABLE:
            raise ValueError(
                f"unknown candidate {algorithm!r}; choose from {PRICEABLE}"
            )
    features = extract_features(index, query, k, scored, constants)
    costs = estimate_costs(
        index, query, k, scored, algorithms=chosen,
        constants=constants, features=features,
    )
    best = min(chosen, key=lambda a: (costs[a], _PREFERENCE[a]))
    return PlanDecision(
        algorithm=best,
        k=k,
        scored=scored,
        epoch=index.epoch,
        costs=costs,
        features=features,
        candidates=chosen,
        reason="cost" if len(chosen) > 1 else "forced",
    )


def annotate_plan_stats(stats: Dict, decision: PlanDecision) -> Dict:
    """Fold one auto decision into its result's stats dict."""
    stats["algorithm_requested"] = "auto"
    stats["algorithm_selected"] = decision.algorithm
    stats["plan_reason"] = decision.reason
    stats["plan_epoch"] = decision.epoch
    for key, value in decision.features.as_stats().items():
        stats[key] = value
    for algorithm, cost in decision.costs.items():
        stats[f"plan_cost_{algorithm}"] = round(cost, 2)
    return stats


def render_explain(
    decision: PlanDecision,
    all_costs: Optional[Mapping[str, float]] = None,
) -> str:
    """Human-readable cost breakdown (the ``plan explain`` CLI output).

    ``all_costs`` may extend the table beyond the candidate set (the CLI
    prices every algorithm); non-candidates are marked excluded.
    """
    features = decision.features
    lines = [
        f"plan: {decision.algorithm} (auto, reason: {decision.reason})",
        f"epoch: {decision.epoch}   k: {decision.k}   "
        f"scored: {'yes' if decision.scored else 'no'}",
        "features:",
        f"  rows            {features.rows}",
        f"  est matches     {features.est_matches:.1f}",
        f"  selectivity     {features.selectivity:.4f}",
        f"  leaves          {features.leaves}"
        + (" (disjunctive)" if features.disjunctive else ""),
        f"  rarest leaf     {features.rarest_leaf}",
        f"  next cost       {features.next_cost:.2f} seek units",
        f"  tree depth      {features.depth}",
        "costs (seek units, lower wins):",
    ]
    table = dict(all_costs) if all_costs else dict(decision.costs)
    width = max(len(name) for name in table)
    for algorithm in sorted(table, key=lambda a: table[a]):
        marker = ""
        if algorithm == decision.algorithm:
            marker = "  <- selected"
        elif algorithm not in decision.candidates:
            marker = "  (excluded: not diversity-preserving)"
        lines.append(f"  {algorithm:<{width}}  {table[algorithm]:>12.1f}{marker}")
    return "\n".join(lines)
