"""Cost-based algorithm selection (``algorithm="auto"``).

The paper's Figs. 5-8 show the best of naive/onepass/probe flips with
selectivity, k and scoring; this package prices each algorithm from index
statistics (:mod:`repro.planner.cost`) and measures the planner against the
oracle (:mod:`repro.planner.regret`).  The engines integrate it through
``DiversityEngine.plan`` / ``algorithm="auto"``; the serving layer memoises
decisions in the plan cache keyed by index epoch + k + scored.
"""

from .cost import (
    DEFAULT_CANDIDATES,
    DEFAULT_CONSTANTS,
    CostConstants,
    PlanDecision,
    PlanFeatures,
    algorithm_cost,
    annotate_plan_stats,
    choose,
    estimate_costs,
    extract_features,
    render_explain,
)
from .regret import RegretReport, measure_regret, total_regret

__all__ = [
    "CostConstants",
    "DEFAULT_CANDIDATES",
    "DEFAULT_CONSTANTS",
    "PlanDecision",
    "PlanFeatures",
    "RegretReport",
    "algorithm_cost",
    "annotate_plan_stats",
    "choose",
    "estimate_costs",
    "extract_features",
    "measure_regret",
    "render_explain",
    "total_regret",
]
