"""Oracle-regret measurement for ``algorithm="auto"``.

The only honest way to score a planner is against the oracle: run every
fixed candidate algorithm over the same workload, take the best total
wall-clock, and charge auto the difference (its *regret*).  This module is
the shared engine behind ``tests/test_autoselect_oracle.py`` (gate: auto
within 1.05x of the best fixed algorithm) and
``benchmarks/bench_autoselect.py`` (per-workload regret + win/loss tables
in ``BENCH_autoselect.json``).

Methodology matches the repo's benchmark harness: each runner (auto plus
every fixed candidate) times ``prepare`` + ``execute`` per query — auto is
charged for its own planning work — and the repeats are *interleaved*
round-robin across runners, keeping the min total per runner, so drifting
machine load lands on every runner instead of biasing whichever ran last.

Measured regret is fed back into the metrics registry as the
``repro_plan_regret_ms`` histogram (the planner cannot know its own regret
at serve time — only this harness, which actually runs the counterfactuals,
can), alongside per-workload win/loss counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..observability import get_registry
from ..query.query import Query
from .cost import DEFAULT_CANDIDATES

#: Buckets for the regret histogram: regret is a latency-shaped quantity
#: but small (milliseconds over a whole workload), so the buckets start
#: well under a millisecond.
REGRET_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, float("inf"),
)


@dataclass
class RegretReport:
    """Auto vs every fixed candidate over one workload."""

    name: str
    queries: int
    k: int
    scored: bool
    repeats: int
    auto_seconds: float = 0.0
    fixed_seconds: Dict[str, float] = field(default_factory=dict)
    choices: Dict[str, int] = field(default_factory=dict)

    @property
    def best_fixed(self) -> str:
        return min(self.fixed_seconds, key=self.fixed_seconds.get)

    @property
    def best_fixed_seconds(self) -> float:
        return min(self.fixed_seconds.values())

    @property
    def regret_seconds(self) -> float:
        """Auto's loss to the oracle (0 when auto beat every fixed run)."""
        return max(0.0, self.auto_seconds - self.best_fixed_seconds)

    @property
    def regret_ratio(self) -> float:
        """auto seconds / best fixed seconds (1.0 = matched the oracle)."""
        best = self.best_fixed_seconds
        return self.auto_seconds / best if best > 0 else 1.0

    def wins_against(self) -> Dict[str, bool]:
        """Per fixed algorithm: did auto run at least as fast?"""
        return {
            algorithm: self.auto_seconds <= seconds
            for algorithm, seconds in self.fixed_seconds.items()
        }

    def as_dict(self) -> Dict:
        return {
            "workload": self.name,
            "queries": self.queries,
            "k": self.k,
            "scored": self.scored,
            "repeats": self.repeats,
            "auto_seconds": round(self.auto_seconds, 6),
            "fixed_seconds": {
                a: round(s, 6) for a, s in sorted(self.fixed_seconds.items())
            },
            "choices": dict(sorted(self.choices.items())),
            "best_fixed": self.best_fixed,
            "regret_seconds": round(self.regret_seconds, 6),
            "regret_ratio": round(self.regret_ratio, 4),
            "wins": self.wins_against(),
        }


def _run_fixed(engine, queries: Sequence[Query], k: int,
               algorithm: str, scored: bool) -> float:
    """Total prepare+execute seconds for one fixed algorithm."""
    total = 0.0
    for query in queries:
        start = time.perf_counter()
        plan = engine.prepare(query, scored)
        engine.execute(plan, k, algorithm, scored)
        total += time.perf_counter() - start
    return total


def _run_auto(engine, queries: Sequence[Query], k: int, scored: bool,
              candidates: Optional[Sequence[str]]) -> Tuple[float, Dict[str, int]]:
    """Total prepare+plan+execute seconds for auto, plus its choice tally.

    Auto pays for its own planning: the decision is computed inside the
    timed region, exactly as a serving deployment would."""
    total = 0.0
    choices: Dict[str, int] = {}
    for query in queries:
        start = time.perf_counter()
        plan = engine.prepare(query, scored)
        decision = engine.plan(plan, k, scored, candidates=candidates)
        result = engine.execute(plan, k, "auto", scored, decision=decision)
        total += time.perf_counter() - start
        selected = result.stats.get("algorithm_selected", result.algorithm)
        choices[selected] = choices.get(selected, 0) + 1
    return total, choices


def measure_regret(
    engine,
    queries: Sequence[Query],
    k: int,
    scored: bool = False,
    candidates: Optional[Sequence[str]] = None,
    repeats: int = 3,
    name: str = "workload",
    registry=None,
) -> RegretReport:
    """Race auto against every fixed candidate over one workload.

    Runs ``repeats`` rounds, interleaving the runners within each round and
    keeping each runner's *minimum* total (the repo's standard defence
    against machine-load drift).  The measured regret is recorded into the
    ``repro_plan_regret_ms`` histogram of ``registry`` (default: the
    process registry) labelled by workload.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    fixed = tuple(DEFAULT_CANDIDATES if candidates is None else candidates)
    queries = list(queries)
    report = RegretReport(
        name=name, queries=len(queries), k=k, scored=scored, repeats=repeats
    )
    best_auto: Optional[float] = None
    best_fixed: Dict[str, float] = {}
    for _ in range(repeats):
        elapsed, choices = _run_auto(engine, queries, k, scored, fixed)
        if best_auto is None or elapsed < best_auto:
            best_auto = elapsed
            report.choices = choices
        for algorithm in fixed:
            elapsed = _run_fixed(engine, queries, k, algorithm, scored)
            if algorithm not in best_fixed or elapsed < best_fixed[algorithm]:
                best_fixed[algorithm] = elapsed
    report.auto_seconds = best_auto or 0.0
    report.fixed_seconds = best_fixed
    _record_regret(registry, report)
    return report


def _record_regret(registry, report: RegretReport) -> None:
    """Export one workload's measured regret through the metrics registry."""
    if registry is None:
        registry = get_registry()
    if not registry.enabled:
        return
    registry.histogram(
        "repro_plan_regret_ms",
        help="Measured auto-vs-oracle regret per workload (regret harness)",
        buckets=REGRET_BUCKETS_MS,
        workload=report.name,
    ).observe(report.regret_seconds * 1000.0)
    for algorithm, won in report.wins_against().items():
        registry.counter(
            "repro_plan_races_total",
            help="Regret-harness races of auto against a fixed algorithm",
            versus=algorithm,
            outcome="win" if won else "loss",
        ).inc()


def total_regret(reports: Sequence[RegretReport]) -> Dict:
    """Aggregate verdict over several workloads.

    ``best_fixed`` here is the *single* fixed algorithm that minimises the
    total across all workloads — the honest counterfactual ("what if we had
    hard-coded one algorithm?"), which is exactly the deployment auto
    replaces.  Per-workload oracles are stricter and reported per
    workload.
    """
    algorithms = set()
    for report in reports:
        algorithms.update(report.fixed_seconds)
    totals = {
        algorithm: sum(r.fixed_seconds.get(algorithm, 0.0) for r in reports)
        for algorithm in sorted(algorithms)
    }
    auto_total = sum(r.auto_seconds for r in reports)
    best = min(totals, key=totals.get) if totals else ""
    best_total = totals.get(best, 0.0)
    return {
        "auto_seconds": round(auto_total, 6),
        "fixed_totals": {a: round(s, 6) for a, s in totals.items()},
        "best_fixed": best,
        "best_fixed_seconds": round(best_total, 6),
        "regret_ratio": round(auto_total / best_total, 4) if best_total > 0 else 1.0,
    }
