"""A tiny catalog mapping names to relations (and their default orderings).

Real deployments of the paper's engine host many verticals (autos, cameras,
auctions); each registers its relation together with the domain expert's
diversity ordering (Definition 1).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from .relation import Relation


class CatalogError(KeyError):
    """Raised when a catalog lookup or registration fails."""


class Catalog:
    """Name -> (relation, default diversity ordering) registry."""

    def __init__(self):
        self._relations: dict[str, Relation] = {}
        self._orderings: dict[str, tuple[str, ...]] = {}

    def register(
        self,
        relation: Relation,
        ordering: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register ``relation`` under ``name`` (defaults to its own name)."""
        key = name if name is not None else relation.name
        if key in self._relations:
            raise CatalogError(f"relation {key!r} already registered")
        if ordering is not None:
            for attribute in ordering:
                relation.validate_attribute(attribute)
            self._orderings[key] = tuple(ordering)
        self._relations[key] = relation
        return key

    def unregister(self, name: str) -> None:
        if name not in self._relations:
            raise CatalogError(f"no relation named {name!r}")
        del self._relations[name]
        self._orderings.pop(name, None)

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"no relation named {name!r}") from None

    def default_ordering(self, name: str) -> Optional[tuple[str, ...]]:
        """The registered diversity ordering, or ``None`` if none was given."""
        if name not in self._relations:
            raise CatalogError(f"no relation named {name!r}")
        return self._orderings.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)
