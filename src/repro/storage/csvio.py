"""CSV import/export for relations.

Lets examples and benchmarks persist generated listings, and lets users load
their own inventory dumps into the engine.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TextIO, Union

from .relation import Relation
from .schema import Attribute, AttributeKind, Schema

_KIND_TAGS = {kind.value: kind for kind in AttributeKind}


def _header_field(attribute: Attribute) -> str:
    return f"{attribute.name}:{attribute.kind.value}"


def _parse_header_field(field: str) -> Attribute:
    name, _, tag = field.partition(":")
    if not name:
        raise ValueError(f"bad CSV header field {field!r}")
    kind = _KIND_TAGS.get(tag or AttributeKind.CATEGORICAL.value)
    if kind is None:
        raise ValueError(f"unknown attribute kind {tag!r} in header {field!r}")
    return Attribute(name, kind)


def write_csv(relation: Relation, target: Union[str, Path, TextIO]) -> None:
    """Write ``relation`` to CSV with a typed ``name:kind`` header row."""
    if isinstance(target, (str, Path)):
        with open(target, "w", newline="", encoding="utf-8") as handle:
            write_csv(relation, handle)
        return
    writer = csv.writer(target)
    writer.writerow(_header_field(a) for a in relation.schema)
    for _, row in relation.iter_live():
        writer.writerow(row)


def read_csv(source: Union[str, Path, TextIO], name: str = "R") -> Relation:
    """Read a relation previously written by :func:`write_csv`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="", encoding="utf-8") as handle:
            return read_csv(handle, name=name)
    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV: no header row") from None
    schema = Schema(_parse_header_field(field) for field in header)
    relation = Relation(schema, name=name)
    for row in reader:
        relation.insert(row)
    return relation


def to_csv_string(relation: Relation) -> str:
    """Render ``relation`` as a CSV string (round-trips via :func:`from_csv_string`)."""
    buffer = io.StringIO()
    write_csv(relation, buffer)
    return buffer.getvalue()


def from_csv_string(text: str, name: str = "R") -> Relation:
    """Parse a relation from a CSV string produced by :func:`to_csv_string`."""
    return read_csv(io.StringIO(text), name=name)
