"""An append-only in-memory row store.

The paper stores car listings in a main-memory table (Section V-A); this is
that substrate.  Rows are immutable tuples addressed by a dense integer
*row id* (``rid``), which the index layer maps to and from Dewey IDs.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .schema import Schema, SchemaError


class Relation:
    """A named relation: a :class:`Schema` plus a list of row tuples.

    Rows are addressed by a dense rid that is stable for the relation's
    lifetime; deletion is by tombstone (``delete``), so rids of later rows
    never shift.  ``len`` counts *slots* (live + deleted) because rids index
    into them; use :attr:`live_count` for the number of live rows.
    Iteration (``__iter__``) yields every slot, deleted or not — use
    :meth:`iter_live` to walk only live rows with their rids.
    """

    def __init__(self, schema: Schema, name: str = "R"):
        self._schema = schema
        self._name = name
        self._rows: list[tuple] = []
        self._deleted: set[int] = set()

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Sequence[Any] | Mapping[str, Any]],
        name: str = "R",
    ) -> "Relation":
        relation = cls(schema, name=name)
        relation.extend(rows)
        return relation

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def name(self) -> str:
        return self._name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __getitem__(self, rid: int) -> tuple:
        return self._rows[rid]

    def __repr__(self) -> str:
        return f"Relation({self._name!r}, {len(self._rows)} rows, {self._schema!r})"

    @property
    def live_count(self) -> int:
        """Number of non-deleted rows."""
        return len(self._rows) - len(self._deleted)

    def insert(self, row: Sequence[Any] | Mapping[str, Any]) -> int:
        """Append one row; returns its rid."""
        coerced = self._schema.coerce_row(row)
        self._rows.append(coerced)
        return len(self._rows) - 1

    def delete(self, rid: int) -> bool:
        """Tombstone row ``rid``; returns False if already deleted.

        The slot (and every other rid) stays valid; ``scan``/``iter_live``
        and the query evaluator skip tombstoned rows.
        """
        if not 0 <= rid < len(self._rows):
            raise IndexError(f"rid {rid} out of range")
        if rid in self._deleted:
            return False
        self._deleted.add(rid)
        return True

    def is_deleted(self, rid: int) -> bool:
        return rid in self._deleted

    def deleted_rids(self) -> list[int]:
        return sorted(self._deleted)

    def iter_live(self) -> Iterator[tuple[int, tuple]]:
        """Yield ``(rid, row)`` for every live row, in rid order."""
        for rid, row in enumerate(self._rows):
            if rid not in self._deleted:
                yield rid, row

    def extend(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> list[int]:
        """Append many rows; returns their rids."""
        return [self.insert(row) for row in rows]

    def value(self, rid: int, attribute: str) -> Any:
        """The value of ``attribute`` in row ``rid``."""
        return self._rows[rid][self._schema.position(attribute)]

    def row_dict(self, rid: int) -> dict[str, Any]:
        """Row ``rid`` as an attribute-name -> value mapping."""
        return dict(zip(self._schema.names, self._rows[rid]))

    def scan(
        self, predicate: Callable[[tuple], bool] | None = None
    ) -> Iterator[int]:
        """Yield live rids, optionally filtered by a row predicate."""
        for rid, row in self.iter_live():
            if predicate is None or predicate(row):
                yield rid

    def distinct_values(self, attribute: str) -> list[Any]:
        """Distinct live values of ``attribute`` in first-appearance order."""
        position = self._schema.position(attribute)
        seen: dict[Any, None] = {}
        for _, row in self.iter_live():
            seen.setdefault(row[position], None)
        return list(seen)

    def project(self, attributes: Sequence[str]) -> list[tuple]:
        """All rows restricted to ``attributes`` (no dedup)."""
        positions = [self._schema.position(name) for name in attributes]
        return [tuple(row[p] for p in positions) for row in self._rows]

    def validate_attribute(self, name: str) -> None:
        """Raise ``SchemaError`` unless ``name`` is an attribute of this relation."""
        if name not in self._schema:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {name!r}"
            )
