"""Typed schemas for the in-memory relations queried by the engine.

The paper's data model (Section II-A) is a single relation ``R`` whose
attributes are targeted by scalar (``att = value``) and keyword
(``att CONTAINS kw``) predicates.  A :class:`Schema` names the attributes and
assigns each a :class:`AttributeKind`, which determines how it is indexed:

* ``CATEGORICAL`` / ``NUMERIC`` attributes get one posting list per distinct
  value (scalar predicates).
* ``TEXT`` attributes are additionally tokenised into one posting list per
  (attribute, token) pair (keyword predicates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence


class AttributeKind(enum.Enum):
    """How an attribute is stored and indexed."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"
    TEXT = "text"


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    kind: AttributeKind = AttributeKind.CATEGORICAL

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this attribute's storage type.

        Raises ``TypeError`` for values that cannot represent the kind.
        """
        if value is None:
            raise TypeError(f"attribute {self.name!r} does not allow NULLs")
        if self.kind is AttributeKind.NUMERIC:
            if isinstance(value, bool):
                raise TypeError(f"attribute {self.name!r} is numeric, got bool")
            if isinstance(value, (int, float)):
                return value
            try:
                return int(value)
            except (TypeError, ValueError):
                try:
                    return float(value)
                except (TypeError, ValueError):
                    raise TypeError(
                        f"attribute {self.name!r} is numeric, got {value!r}"
                    ) from None
        return str(value)


class SchemaError(ValueError):
    """Raised for schema construction or row validation failures."""


class Schema:
    """An ordered collection of :class:`Attribute` with fast name lookup."""

    def __init__(self, attributes: Iterable[Attribute]):
        self._attributes = tuple(attributes)
        if not self._attributes:
            raise SchemaError("a schema needs at least one attribute")
        self._index = {}
        for position, attribute in enumerate(self._attributes):
            if attribute.name in self._index:
                raise SchemaError(f"duplicate attribute name {attribute.name!r}")
            self._index[attribute.name] = position

    @classmethod
    def of(cls, **kinds: str) -> "Schema":
        """Shorthand constructor: ``Schema.of(make='categorical', desc='text')``."""
        return cls(
            Attribute(name, AttributeKind(kind)) for name, kind in kinds.items()
        )

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self):
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{attribute.name}:{attribute.kind.value}"
            for attribute in self._attributes
        )
        return f"Schema({fields})"

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name, raising ``SchemaError`` if missing."""
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def position(self, name: str) -> int:
        """Column position of attribute ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def coerce_row(self, row: Sequence[Any] | Mapping[str, Any]) -> tuple:
        """Validate and coerce one row (sequence or mapping) to a tuple."""
        if isinstance(row, Mapping):
            missing = [name for name in self.names if name not in row]
            if missing:
                raise SchemaError(f"row missing attributes {missing}")
            extra = [name for name in row if name not in self._index]
            if extra:
                raise SchemaError(f"row has unknown attributes {extra}")
            values = [row[name] for name in self.names]
        else:
            values = list(row)
            if len(values) != len(self._attributes):
                raise SchemaError(
                    f"row has {len(values)} values, schema has "
                    f"{len(self._attributes)} attributes"
                )
        return tuple(
            attribute.coerce(value)
            for attribute, value in zip(self._attributes, values)
        )
