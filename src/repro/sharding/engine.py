"""The sharded serving engine: fan-out, per-shard top-k, diverse-merge.

:class:`ShardedEngine` is a :class:`~repro.core.engine.DiversityEngine`
over a :class:`~repro.sharding.sharded_index.ShardedIndex`.  Two execution
strategies, picked per algorithm so every answer stays bit-identical to an
unsharded engine:

* **Scatter-gather** (``naive``, and unscored ``basic``): the query fans
  out to all shards — sequentially or on a thread pool (``workers``) —
  each shard computes its *local* diverse top-k (the canonical Definitions
  1-2 selection over its rows), and the coordinator re-applies Definitions
  1-2 to the union (:mod:`repro.sharding.merge`).  Subtree co-location +
  the shared Dewey space make each shard's answer a superset of its
  contribution to the global answer, so the merge is exact.

* **Coordinator-driven scan** (``onepass``, ``probe``, scored ``basic``,
  ``multq``): these algorithms' outputs depend on the scan/probing order
  over the merged list, not just on the match set — a maximally diverse
  subset is not unique, and one-pass keeps whichever representative it
  meets first.  Gathering per-shard one-pass answers and re-merging would
  return a *valid* diverse set but not *the* set the unsharded scan
  returns.  Instead the unmodified algorithm runs on the coordinator
  against the sharded index's union cursors: every ``next`` probe fans out
  to all shards and takes the min/max — a distributed leapfrog whose probe
  responses (and therefore whose answers, probe counts included) are
  identical to the unsharded run.

Mutations (``insert``/``delete``) route to exactly one shard and bump only
that shard's epoch; the serving caches of PR 1 attach unchanged, keying on
the global (summed) epoch.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Union

from ..core import baselines
from ..core.dewey import DeweyId
from ..core.diversify import diverse_subset, scored_diverse_subset
from ..core.engine import ALGORITHMS, DiversityEngine
from ..core.ordering import DiversityOrdering
from ..core.result import DiverseResult
from ..index.inverted import InvertedIndex
from ..index.merged import MergedList
from ..index.postings import ARRAY_BACKEND
from ..query.query import Query
from ..storage.relation import Relation
from .merge import diverse_merge, merge_first_k, scored_diverse_merge
from .router import ShardRouter
from .sharded_index import ShardedIndex

#: Algorithms served by scatter-gather + diverse-merge (their unsharded
#: output is the canonical Definitions 1-2 selection, which the merge
#: reconstructs exactly); the rest run coordinator-driven.
GATHER_ALGORITHMS = ("naive", "basic")


class ShardedEngine(DiversityEngine):
    """Diverse top-k over a sharded index, answer-identical to unsharded.

    ``workers`` > 1 fans scatter-gather queries out on a thread pool of
    that size (0 or 1 = sequential).  Everything else — caching, prepare/
    execute split, weighted search, explain — is inherited: the sharded
    index implements the single-index read protocol.
    """

    def __init__(
        self,
        index: ShardedIndex,
        cache=None,
        workers: int = 0,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        super().__init__(index, cache=cache)
        self._workers = workers

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        ordering: Union[DiversityOrdering, Sequence[str]],
        shards: int = 2,
        backend: str = ARRAY_BACKEND,
        router: Union[str, ShardRouter] = "hash",
        cache=None,
        workers: int = 0,
    ) -> "ShardedEngine":
        """Build the sharded index (offline step) and wrap it in an engine."""
        index = ShardedIndex.build(
            relation, ordering, shards=shards, backend=backend, router=router
        )
        return cls(index, cache=cache, workers=workers)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sharded_index(self) -> ShardedIndex:
        return self._index

    @property
    def num_shards(self) -> int:
        return self._index.num_shards

    @property
    def workers(self) -> int:
        return self._workers

    def shard_epochs(self) -> List[int]:
        return self._index.shard_epochs()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        k: int,
        algorithm: str = "probe",
        scored: bool = False,
    ) -> DiverseResult:
        """Sharded execution of an already-prepared plan.

        Scatter-gather for the canonical algorithms, coordinator-driven
        union-cursor scan (inherited) for the scan-order-dependent ones.
        """
        if algorithm == "naive":
            return self._execute_gather_naive(query, k, scored)
        if algorithm == "basic" and not scored:
            return self._execute_gather_basic(query, k)
        return super().execute(query, k, algorithm, scored)

    def _fan_out(self, task) -> list:
        """Run ``task(shard_index)`` for every shard, possibly on a pool."""
        shards = self._index.shards
        if self._workers > 1 and len(shards) > 1:
            with ThreadPoolExecutor(
                max_workers=min(self._workers, len(shards))
            ) as pool:
                return list(pool.map(task, shards))
        return [task(shard) for shard in shards]

    def _execute_gather_naive(
        self, query: Query, k: int, scored: bool
    ) -> DiverseResult:
        """Per-shard canonical diverse top-k, then Definitions 1-2 re-merge."""

        def local_topk(shard: InvertedIndex):
            merged = MergedList(query, shard)
            if scored:
                matches = baselines.collect_all_scored(merged)
                chosen = scored_diverse_subset(matches, k)
                local: Union[Dict[DeweyId, float], List[DeweyId]] = {
                    dewey: matches[dewey] for dewey in chosen
                }
            else:
                local = diverse_subset(baselines.collect_all(merged), k)
            return local, merged.next_calls, merged.scored_next_calls

        gathered = self._fan_out(local_topk)
        candidates = [local for local, _, _ in gathered]
        stats = self._gather_stats(gathered, candidates)
        if scored:
            scores = scored_diverse_merge(candidates, k)
            deweys = sorted(scores)
        else:
            scores = None
            deweys = diverse_merge(candidates, k)
        return self._package(deweys, scores, stats, k, "naive", scored)

    def _execute_gather_basic(self, query: Query, k: int) -> DiverseResult:
        """Per-shard first-k, merged to the global document-order first-k."""

        def local_firstk(shard: InvertedIndex):
            merged = MergedList(query, shard)
            local = baselines.basic_unscored(merged, k)
            return local, merged.next_calls, merged.scored_next_calls

        gathered = self._fan_out(local_firstk)
        candidates = [local for local, _, _ in gathered]
        stats = self._gather_stats(gathered, candidates)
        deweys = merge_first_k(candidates, k)
        return self._package(deweys, None, stats, k, "basic", False)

    def _gather_stats(self, gathered, candidates) -> Dict[str, int]:
        return {
            "next_calls": sum(calls for _, calls, _ in gathered),
            "scored_next_calls": sum(calls for _, _, calls in gathered),
            "shards_queried": len(gathered),
            "merge_candidates": sum(len(local) for local in candidates),
        }
