"""The sharded serving engine: fan-out, per-shard top-k, diverse-merge.

:class:`ShardedEngine` is a :class:`~repro.core.engine.DiversityEngine`
over a :class:`~repro.sharding.sharded_index.ShardedIndex`.  Two execution
strategies, picked per algorithm so every answer stays bit-identical to an
unsharded engine:

* **Scatter-gather** (``naive``, and unscored ``basic``): the query fans
  out to all shards — sequentially or on a persistent thread pool
  (``workers``) — each shard computes its *local* diverse top-k (the
  canonical Definitions 1-2 selection over its rows), and the coordinator
  re-applies Definitions 1-2 to the union (:mod:`repro.sharding.merge`).
  Subtree co-location + the shared Dewey space make each shard's answer a
  superset of its contribution to the global answer, so the merge is exact.

* **Coordinator-driven scan** (``onepass``, ``probe``, scored ``basic``,
  ``multq``): these algorithms' outputs depend on the scan/probing order
  over the merged list, not just on the match set — a maximally diverse
  subset is not unique, and one-pass keeps whichever representative it
  meets first.  Gathering per-shard one-pass answers and re-merging would
  return a *valid* diverse set but not *the* set the unsharded scan
  returns.  Instead the unmodified algorithm runs on the coordinator
  against the sharded index's union cursors: every ``next`` probe fans out
  to all shards and takes the min/max — a distributed leapfrog whose probe
  responses (and therefore whose answers, probe counts included) are
  identical to the unsharded run.

**Failure story** (:mod:`repro.resilience`): every shard call runs under
the engine's :class:`~repro.resilience.policy.ResiliencePolicy` — deadline
budget, bounded retries with jittered exponential backoff for transient
faults, and a per-shard circuit breaker.  The two strategies degrade
differently:

* Scatter-gather *drops* a shard that is crashed, open-circuit, out of
  retries, or past deadline, and diverse-merges the survivors — still a
  valid Definitions 1-2 diverse top-k over the reachable rows
  (docs/paper_mapping.md), flagged ``degraded`` in ``result.stats``.  Only
  a total loss raises.
* The coordinator-driven scan needs every shard (union cursors have no
  survivors-only mode that preserves bit-identity), so it retries whole
  runs on transient faults and otherwise **fails fast** with a structured
  :class:`~repro.resilience.errors.ShardUnavailableError` naming the lost
  shards.

Mutations (``insert``/``delete``) route to exactly one shard and bump only
that shard's epoch; the serving caches of PR 1 attach unchanged, keying on
the global (summed) epoch (degraded answers are never cached).
"""

from __future__ import annotations

import random
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from ..core import baselines
from ..core.dewey import DeweyId
from ..core.diversify import diverse_subset, scored_diverse_subset
from ..core.engine import AUTO, DiversityEngine, run_algorithm
from ..core.ordering import DiversityOrdering
from ..core.result import DiverseResult
from ..index.merged import MergedList
from ..index.postings import ARRAY_BACKEND
from ..observability import MONOTONIC, Clock, get_registry, span
from ..observability.spans import SPAN_DURATION_METRIC, SpanRecord
from ..parallel import (
    CRASHED,
    DEADLINE,
    OK,
    PROCESS_MODES,
    STALE,
    ProcessShardPool,
    UnsupportedWorkerModeError,
    WORKER_MODES,
    resolve_worker_mode,
)
from ..query.parser import parse_query
from ..query.query import Query
from ..query.rewrite import normalise
from ..resilience import (
    ChaosPolicy,
    Deadline,
    DeadlineExceededError,
    HealthBoard,
    ResilienceError,
    ResiliencePolicy,
    ShardCrashedError,
    ShardUnavailableError,
    TransientShardError,
)
from ..resilience.policy import DEFAULT_POLICY, deadline_scope
from ..storage.relation import Relation
from .merge import diverse_merge, merge_first_k, scored_diverse_merge
from .router import ShardRouter
from .sharded_index import ShardedIndex

#: Algorithms served by scatter-gather + diverse-merge (their unsharded
#: output is the canonical Definitions 1-2 selection, which the merge
#: reconstructs exactly); the rest run coordinator-driven.
GATHER_ALGORITHMS = ("naive", "basic")


class _ZeroStats:
    """The index read protocol over nothing: every posting list empty.

    The degraded-plan path prices its fallback decision against this
    instead of touching an unreachable shard — the resulting feature
    vector is honestly all-zero rather than partially read.
    """

    depth = 1
    epoch = 0

    def __len__(self) -> int:
        return 0

    def scalar_postings(self, attribute: str, value: Any):
        return ()

    def token_postings(self, attribute: str, token: str):
        return ()

    def all_postings(self):
        return ()


_EMPTY_STATS = _ZeroStats()


def _register_health_collector(registry, engine: "ShardedEngine"):
    """Publish the health board as per-shard gauges at export time.

    Weakref'd like the serving cache collector: a collected engine
    unhooks itself from the registry on the next export.
    """
    if registry is None or not registry.enabled:
        return None
    ref = weakref.ref(engine)

    def collect() -> None:
        target = ref()
        if target is None:
            registry.unregister_collector(collect)
            return
        gauge = registry.gauge
        for entry in target.health.snapshot():
            shard = str(entry["shard_id"])
            if entry.get("replica_id") is not None:
                # Physical-copy rows (replicated deployments): their own
                # metric family, keyed {shard, replica} — the logical
                # per-shard gauges below stay exactly as before.
                replica = str(entry["replica_id"])
                gauge("repro_replica_requests",
                      "Reads attempted on the replica",
                      shard=shard, replica=replica).set(entry["requests"])
                gauge("repro_replica_successes",
                      "Successful replica reads",
                      shard=shard, replica=replica).set(entry["successes"])
                gauge("repro_replica_transient_failures",
                      "Transient replica faults observed",
                      shard=shard, replica=replica
                      ).set(entry["transient_failures"])
                gauge("repro_replica_hard_failures",
                      "Crashes / non-retryable replica errors",
                      shard=shard, replica=replica).set(entry["hard_failures"])
                gauge("repro_replica_skipped_open",
                      "Reads rejected by the replica's open circuit",
                      shard=shard, replica=replica).set(entry["skipped_open"])
                gauge("repro_replica_breaker_open",
                      "1 while the replica's circuit breaker is open",
                      shard=shard, replica=replica
                      ).set(1.0 if entry["breaker"] == "open" else 0.0)
                gauge("repro_replica_ewma_latency_ms",
                      "Smoothed replica read latency",
                      shard=shard, replica=replica
                      ).set(entry.get("ewma_ms", 0.0))
                continue
            gauge("repro_shard_requests",
                  "Calls admitted to the shard", shard=shard
                  ).set(entry["requests"])
            gauge("repro_shard_successes",
                  "Successful shard calls", shard=shard
                  ).set(entry["successes"])
            gauge("repro_shard_transient_failures",
                  "Transient shard faults observed", shard=shard
                  ).set(entry["transient_failures"])
            gauge("repro_shard_hard_failures",
                  "Crashes / non-retryable shard errors", shard=shard
                  ).set(entry["hard_failures"])
            gauge("repro_shard_retries",
                  "Re-attempts spent on the shard", shard=shard
                  ).set(entry["retries"])
            gauge("repro_shard_skipped_open",
                  "Calls rejected by an open circuit", shard=shard
                  ).set(entry["skipped_open"])
            gauge("repro_shard_deadline_drops",
                  "Calls abandoned for deadline reasons", shard=shard
                  ).set(entry["deadline_drops"])
            gauge("repro_shard_breaker_open",
                  "1 while the shard's circuit breaker is open", shard=shard
                  ).set(1.0 if entry["breaker"] == "open" else 0.0)

    registry.register_collector(collect)
    return (registry, collect)


@dataclass
class ShardOutcome:
    """One shard's fate within a single scatter-gather fan-out."""

    shard_id: int
    value: Any = None
    ok: bool = False
    reason: str = ""          # "" | "crashed" | "circuit open" |
                              # "retries exhausted" | "deadline" | "error"
    retries: int = 0


class _RetryingReads:
    """The sharded index's read protocol with per-read transient retries.

    The coordinator-driven scan makes many small index reads (multq can
    make hundreds); retrying the *whole run* on one flaky read would need
    a fault-free pass through all of them — exponentially unlikely.  Each
    read is idempotent, so retrying just the failed read is both cheap and
    exactly answer-preserving: once it succeeds the scan proceeds as if
    the fault never happened.  All reads share one deadline budget.
    """

    __slots__ = ("_engine", "_deadline", "retries")

    def __init__(self, engine: "ShardedEngine", deadline: Deadline):
        self._engine = engine
        self._deadline = deadline
        self.retries = 0

    def _read(self, operation):
        value, attempts = self._engine._run_with_retries(operation, self._deadline)
        self.retries += attempts
        return value

    def scalar_postings(self, attribute: str, value: Any):
        index = self._engine.sharded_index
        return self._read(lambda: index.scalar_postings(attribute, value))

    def token_postings(self, attribute: str, token: str):
        index = self._engine.sharded_index
        return self._read(lambda: index.token_postings(attribute, token))

    def all_postings(self):
        index = self._engine.sharded_index
        return self._read(index.all_postings)

    def vocabulary(self, attribute: str) -> list:
        index = self._engine.sharded_index
        return self._read(lambda: index.vocabulary(attribute))

    def __len__(self) -> int:
        return len(self._engine.sharded_index)

    def __getattr__(self, name: str):
        # Control plane (relation, ordering, dewey, depth, epoch, ...)
        # passes through untouched.
        return getattr(self._engine.sharded_index, name)


class ShardedEngine(DiversityEngine):
    """Diverse top-k over a sharded index, answer-identical to unsharded.

    ``workers`` > 1 fans scatter-gather queries out on a persistent thread
    pool of that size (0 or 1 = sequential); :meth:`close` (or use as a
    context manager) releases it.  ``policy`` sets the failure-handling
    budgets (:class:`ResiliencePolicy`); per-shard breakers and health
    counters live in :attr:`health`.  Everything else — caching, prepare/
    execute split, weighted search, explain — is inherited: the sharded
    index implements the single-index read protocol.
    """

    def __init__(
        self,
        index: ShardedIndex,
        cache=None,
        workers: int = 0,
        worker_mode: str = "thread",
        policy: Optional[ResiliencePolicy] = None,
        clock: Clock = MONOTONIC,
        sleep=time.sleep,
        registry=None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        super().__init__(index, cache=cache, registry=registry)
        self._workers = workers
        self._worker_mode = worker_mode
        self._resolved_mode = resolve_worker_mode(worker_mode)
        if (self._resolved_mode in PROCESS_MODES
                and index.replication_factor > 1):
            raise UnsupportedWorkerModeError(
                "process workers cannot fan out over a replicated deployment "
                "(replica failover is coordinator-side state); use "
                "worker_mode='thread' with replicas > 1"
            )
        self._policy = policy if policy is not None else DEFAULT_POLICY
        # One clock drives deadlines, breakers and backoff alike (and one
        # injectable sleep serves the backoff waits), so a FakeClock fakes
        # the whole failure path end-to-end — no mixed perf_counter/
        # monotonic timelines to drift apart.
        self._clock = clock
        self._sleep = sleep
        self._health = HealthBoard(index.num_shards, self._policy, clock=clock)
        # Lazy binding: replica rows appear in health snapshots as soon as
        # the index is replicated, even when that happens after engine
        # construction (the serving path replicates after wrapping shards
        # in durable stores).
        self._health.bind_replica_source(lambda: self._index.shards)
        self._retry_rng = random.Random(self._policy.seed)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_width = 0
        self._process_pool: Optional[ProcessShardPool] = None
        self._close_lock = threading.Lock()
        self._closed = False
        self._collector = _register_health_collector(self._metrics(), self)
        self._push_worker_budget()

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        ordering: Union[DiversityOrdering, Sequence[str]],
        shards: int = 2,
        backend: str = ARRAY_BACKEND,
        router: Union[str, ShardRouter] = "hash",
        cache=None,
        workers: int = 0,
        worker_mode: str = "thread",
        policy: Optional[ResiliencePolicy] = None,
        clock: Clock = MONOTONIC,
        sleep=time.sleep,
        replicas: int = 1,
        hedge_ms: Optional[float] = None,
    ) -> "ShardedEngine":
        """Build the sharded index (offline step) and wrap it in an engine.

        ``replicas`` > 1 grows every shard to that many bit-identical
        copies behind automatic failover; ``hedge_ms`` additionally arms
        hedged reads with that cold-start delay (see
        :mod:`repro.replication`).  ``worker_mode`` picks the fan-out
        backend for the gather algorithms: ``"thread"`` (the GIL-bound
        default), or ``"process"``/``"fork"``/``"spawn"`` for true
        process parallelism (:mod:`repro.parallel`) — incompatible with
        ``replicas`` > 1 and with chaos injection, both rejected loudly.
        """
        if replicas > 1 and resolve_worker_mode(worker_mode) in PROCESS_MODES:
            raise UnsupportedWorkerModeError(
                "process workers cannot fan out over a replicated "
                "deployment; use worker_mode='thread' with replicas > 1"
            )
        index = ShardedIndex.build(
            relation, ordering, shards=shards, backend=backend, router=router
        )
        if replicas > 1:
            from ..replication import HedgePolicy

            hedge = HedgePolicy(delay_ms=hedge_ms) if hedge_ms is not None else None
            index.replicate(replicas, policy=policy, clock=clock, hedge=hedge)
        return cls(index, cache=cache, workers=workers,
                   worker_mode=worker_mode, policy=policy,
                   clock=clock, sleep=sleep)

    # ------------------------------------------------------------------
    # Lifecycle (persistent fan-out pool)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the fan-out thread pool down.

        Idempotent and concurrency-safe (callable from a signal handler
        while a search is in flight): callers serialise on the close
        lock, the first one tears down, the rest block until it has
        finished and then return."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            collector, self._collector = self._collector, None
            if collector is not None:
                registry, collect = collector
                registry.unregister_collector(collect)
            pool, self._pool = self._pool, None
            self._pool_width = 0
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            process_pool, self._process_pool = self._process_pool, None
            if process_pool is not None:
                # Joins every worker (terminate after a bounded grace),
                # including after a failed fan-out left the pool broken.
                process_pool.close()
            for shard in self._index.shards:
                # Release replica-set hedge pools; the replicas themselves
                # (and their WALs) belong to the serving layer's close.
                close_pool = getattr(shard, "close_pool", None)
                if callable(close_pool):
                    close_pool()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # The pool width tracks the live config: min(workers, num_shards)
        # is re-derived on every call and a mismatch rebuilds the pool —
        # sizing it once at first use and never again would serve forever
        # from a stale width after set_workers() or a topology change.
        width = min(self._workers, self._index.num_shards)
        if self._pool is not None and self._pool_width != width:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=width,
                thread_name_prefix="repro-shard",
            )
            self._pool_width = width
        return self._pool

    def _ensure_process_pool(self) -> ProcessShardPool:
        pool = self._process_pool
        if pool is not None and not pool.matches(
            self._workers, self._resolved_mode, self.num_shards
        ):
            # Worker config or topology changed: tear down and start over.
            pool.close()
            pool = self._process_pool = None
        if pool is None:
            pool = ProcessShardPool(
                self._index, self._workers, self._resolved_mode,
                registry=self._metrics(),
            )
            self._process_pool = pool
        elif pool.stale():
            # The index mutated (or a worker died) since the replicas were
            # built: re-bootstrap at the current epoch *before* fanning
            # out, so the common path never round-trips a stale answer.
            reason = "worker-loss" if pool.broken else "epoch-drift"
            pool.rebuild(reason)
        return pool

    def _push_worker_budget(self) -> None:
        """Publish the engine's worker budget to the index and its replica
        sets, so hedge pools derive their width from it (never a width
        that oversubscribes replicated + parallel fan-out)."""
        from ..replication.replica_set import ReplicaSet

        index = self._index
        try:
            index.worker_budget = self._workers
        except AttributeError:
            pass  # plain/duck-typed indexes without the budget slot
        for shard in index.shards:
            if isinstance(shard, ReplicaSet):
                shard.set_pool_budget(ReplicaSet.derive_pool_width(
                    shard.num_replicas, index.num_shards, self._workers
                ))

    def set_workers(self, workers: int) -> None:
        """Re-size the fan-out worker budget at runtime.

        The thread and process pools are lazily rebuilt at the new width
        on the next fan-out; replica-set hedge pools re-derive theirs
        immediately.
        """
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self._workers = workers
        self._push_worker_budget()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sharded_index(self) -> ShardedIndex:
        return self._index

    @property
    def num_shards(self) -> int:
        return self._index.num_shards

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def worker_mode(self) -> str:
        """The configured fan-out backend (as passed: ``process`` stays
        ``process``; see :attr:`resolved_worker_mode` for the concrete one)."""
        return self._worker_mode

    @property
    def resolved_worker_mode(self) -> str:
        """The concrete backend: ``thread``, ``fork`` or ``spawn``."""
        return self._resolved_mode

    @property
    def policy(self) -> ResiliencePolicy:
        return self._policy

    @property
    def health(self) -> HealthBoard:
        """Per-shard health counters + circuit breakers."""
        return self._health

    def shard_epochs(self) -> List[int]:
        return self._index.shard_epochs()

    # ------------------------------------------------------------------
    # Fault injection pass-through
    # ------------------------------------------------------------------
    def inject_chaos(self, chaos: ChaosPolicy) -> ChaosPolicy:
        """Make shard reads fail per ``chaos`` (tests/benchmarks/CLI)."""
        if self._uses_process_fanout():
            # Worker replicas answer the gather fan-out, and a fault plan
            # injected here would never reach them — the experiment would
            # silently run fault-free.  Refuse instead.
            raise UnsupportedWorkerModeError(
                f"chaos injection is not supported with process workers "
                f"(worker_mode={self._worker_mode!r}): injected faults "
                f"would never reach the worker replicas; use "
                f"worker_mode='thread' for chaos experiments"
            )
        # Latency injection sleeps on the engine's injectable sleep, so a
        # FakeClock-driven test fakes chaos delays too (no real blocking).
        chaos.bind_sleep(self._sleep)
        self._index.inject_chaos(chaos)
        return chaos

    def clear_chaos(self) -> None:
        self._index.clear_chaos()

    # ------------------------------------------------------------------
    # Coordinator-side retry loop (prepare + scan algorithms)
    # ------------------------------------------------------------------
    def _deadline(self) -> Deadline:
        return Deadline(self._policy.deadline_ms, clock=self._clock)

    def _metrics(self):
        return self._registry if self._registry is not None else get_registry()

    def _count_retry(self, phase: str) -> None:
        self._metrics().counter(
            "repro_retries_total",
            "Shard-call retries spent on transient faults, by phase",
            phase=phase,
        ).inc()

    def _run_with_retries(self, operation, deadline: Deadline,
                          phase: str = "scan"):
        """Run ``operation()`` retrying transient shard faults per policy.

        Returns ``(value, retries_spent)``.  Crashes and exhausted retries
        surface as :class:`ShardUnavailableError`; an expired deadline as
        :class:`DeadlineExceededError`.  Used where the work cannot be
        split per shard: plan preparation and the coordinator-driven scan,
        both of which read through union cursors that touch every shard.
        """
        policy = self._policy
        health = self._health
        attempts = 0
        while True:
            try:
                # The deadline scope lets layers below the index read
                # protocol (a ReplicaSet timing a hedged backup read) see
                # the remaining budget without widening the protocol.
                with deadline_scope(deadline):
                    return operation(), attempts
            except TransientShardError as error:
                health.record_transient(error.shard_id)
                if attempts >= policy.max_retries:
                    raise ShardUnavailableError(
                        {error.shard_id: "retries exhausted"}, self.num_shards
                    ) from error
                if deadline.expired():
                    raise DeadlineExceededError(
                        policy.deadline_ms or 0.0, deadline.elapsed_ms()
                    ) from error
                attempts += 1
                health.record_retry(error.shard_id)
                self._count_retry(phase)
                delay_s = policy.backoff_ms(attempts, self._retry_rng) / 1000.0
                delay_s = min(delay_s, deadline.remaining_ms() / 1000.0)
                if delay_s > 0.0:
                    self._sleep(delay_s)
                if deadline.expired():
                    # The backoff consumed the rest of the budget: without
                    # this check the loop would grant one extra attempt
                    # *after* the deadline fully elapsed (drift).
                    raise DeadlineExceededError(
                        policy.deadline_ms or 0.0, deadline.elapsed_ms()
                    ) from error
            except ShardCrashedError as error:
                health.record_hard(error.shard_id)
                raise ShardUnavailableError(
                    {error.shard_id: "crashed"}, self.num_shards
                ) from error

    def prepare(
        self,
        query: Union[Query, str],
        scored: bool = False,
        optimize: bool = True,
    ) -> Query:
        """Plan step, retry-wrapped: the leapfrog ordering reads posting
        statistics through the sharded index, so a flaky shard can fault
        here too.  When a shard is hard-down (or retries run out) the
        *plan* degrades instead of the query: parse + normalise are pure,
        only the statistics-driven reordering is skipped — answers do not
        depend on predicate order, so execution can still proceed (and
        degrade, or fail fast, on its own terms).

        A shard whose breaker is already open is presumed down: the plan
        degrades *immediately*, without touching any shard.  Re-proving the
        failure here every query would charge the broken shard a fresh
        hard failure per query on top of the one the execute phase records
        — double-counting its health stats — and burn retry/backoff time
        from every caller's budget while the breaker is trying to cool
        down."""
        degraded_reason = None
        if optimize and self._health.open_shards():
            degraded_reason = "circuit open"
        else:
            parent = super()
            try:
                plan, _ = self._run_with_retries(
                    lambda: parent.prepare(query, scored, optimize),
                    self._deadline(), phase="prepare",
                )
            except ShardUnavailableError:
                if not optimize:
                    raise
                degraded_reason = "shard unavailable"
        if degraded_reason is not None:
            self._metrics().counter(
                "repro_plan_degraded_total",
                "Plans that skipped statistics-driven reordering",
                reason=degraded_reason,
            ).inc()
            plan = parse_query(query) if isinstance(query, str) else query
            if optimize and not scored:
                plan = normalise(plan)
        return plan

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def plan(
        self,
        query: Union[Query, str],
        k: int,
        scored: bool = False,
        candidates=None,
    ):
        """Plan step of ``algorithm="auto"``, retry-wrapped like
        :meth:`prepare`: the cost model reads posting statistics through the
        sharded index's union views, so a flaky shard can fault here too.
        Transient faults retry; when a shard stays unreachable (or its
        breaker is already open) the *decision* degrades to ``naive`` — the
        scatter-gather algorithm that can still answer from surviving
        shards — instead of failing the query before it even ran.

        Union posting views report global list lengths, so a healthy
        sharded deployment plans identically to an unsharded engine over
        the same rows (the differential tests assert this across shard
        counts)."""
        from ..planner import PlanDecision, choose, extract_features

        if isinstance(query, str):
            query = parse_query(query)
        degraded_reason = None
        if self._health.open_shards():
            degraded_reason = "circuit open"
        else:
            index = self._index
            try:
                decision, _ = self._run_with_retries(
                    lambda: choose(index, query, k, scored, candidates=candidates),
                    self._deadline(), phase="plan",
                )
                return decision
            except ShardUnavailableError:
                degraded_reason = "shard unavailable"
        self._metrics().counter(
            "repro_plan_degraded_total",
            "Plans that skipped statistics-driven reordering",
            reason=degraded_reason,
        ).inc()
        # Stats are unreachable: a zeroed feature vector prices nothing,
        # so fall back to the degradable gather algorithm outright.
        features = extract_features(_EMPTY_STATS, query, k, scored)
        return PlanDecision(
            algorithm="naive",
            k=k,
            scored=scored,
            epoch=self.epoch,
            costs={"naive": 0.0},
            features=features,
            candidates=("naive",),
            reason="stats unavailable",
        )

    def execute(
        self,
        query: Query,
        k: int,
        algorithm: str = "probe",
        scored: bool = False,
        decision=None,
    ) -> DiverseResult:
        """Sharded execution of an already-prepared plan.

        Scatter-gather (degradable) for the canonical algorithms,
        coordinator-driven union-cursor scan (all-shards-or-fail) for the
        scan-order-dependent ones; ``auto`` plans first (see :meth:`plan`)
        and dispatches the selected algorithm through the same split.
        """
        if algorithm == AUTO:
            return self._execute_auto(query, k, scored, decision)
        if algorithm == "naive":
            return self._execute_gather_naive(query, k, scored)
        if algorithm == "basic" and not scored:
            return self._execute_gather_basic(query, k)
        return self._execute_scan(query, k, algorithm, scored)

    def _execute_scan(
        self, query: Query, k: int, algorithm: str, scored: bool
    ) -> DiverseResult:
        """Coordinator-driven scan: needs every shard, so fail fast.

        An open circuit means a shard is presumed down — refuse before
        burning the deadline.  Transient faults retry the *failed read*
        (idempotent, so the answer stays bit-identical to the unsharded
        scan — see :class:`_RetryingReads`); crashes surface immediately
        as :class:`ShardUnavailableError` naming the dead shard.
        """
        open_shards = self._health.open_shards()
        if open_shards:
            raise ShardUnavailableError(
                {shard: "circuit open" for shard in open_shards}, self.num_shards
            )
        with span("shard.scan", registry=self._registry, algorithm=algorithm,
                  k=k, shards=self.num_shards):
            reader = _RetryingReads(self, self._deadline())
            deweys, scores, stats = run_algorithm(
                reader, query, k, algorithm, scored
            )
        # A completed scan heard back from the whole deployment: credit the
        # breakers so a recovered shard's circuit can close again.
        for shard in range(self.num_shards):
            self._health.record_success(shard)
        result = self._package(deweys, scores, stats, k, algorithm, scored)
        result.stats.update(
            degraded=False,
            shards_failed=0,
            shards_total=self.num_shards,
            replicas=self._index.replication_factor,
            retries=reader.retries,
            deadline_ms=self._policy.deadline_ms or 0,
        )
        return result

    # ------------------------------------------------------------------
    # Scatter-gather with degradation
    # ------------------------------------------------------------------
    def _run_shard_task(
        self, shard_id: int, shard, task, deadline: Deadline
    ) -> ShardOutcome:
        """Run ``task(shard)`` under the policy; never raises.

        Breaker-gated admission, bounded retries with jittered backoff on
        transient faults, deadline checks between attempts.  The outcome
        carries either the value or a machine-readable failure reason the
        gather step turns into degradation stats.
        """
        policy = self._policy
        health = self._health
        if not health.allow(shard_id):
            health.record_skip(shard_id)
            return ShardOutcome(shard_id, reason="circuit open")
        attempts = 0
        while True:
            if deadline.expired():
                health.record_deadline_drop(shard_id)
                return ShardOutcome(shard_id, reason="deadline", retries=attempts)
            health.record_admitted(shard_id)
            try:
                with deadline_scope(deadline):
                    value = task(shard)
            except TransientShardError:
                health.record_transient(shard_id)
                if attempts >= policy.max_retries:
                    return ShardOutcome(
                        shard_id, reason="retries exhausted", retries=attempts
                    )
                attempts += 1
                health.record_retry(shard_id)
                self._count_retry("gather")
                delay_s = policy.backoff_ms(attempts, self._retry_rng) / 1000.0
                delay_s = min(delay_s, deadline.remaining_ms() / 1000.0)
                if delay_s > 0.0:
                    self._sleep(delay_s)
            except ShardCrashedError:
                health.record_hard(shard_id)
                return ShardOutcome(shard_id, reason="crashed", retries=attempts)
            except ResilienceError:
                health.record_hard(shard_id)
                return ShardOutcome(shard_id, reason="error", retries=attempts)
            else:
                health.record_success(shard_id)
                return ShardOutcome(
                    shard_id, value=value, ok=True, retries=attempts
                )

    def _uses_process_fanout(self) -> bool:
        return (
            self._resolved_mode in PROCESS_MODES
            and self._workers > 1
            and self.num_shards > 1
        )

    def _scatter(self, task, request=None) -> List[ShardOutcome]:
        """Fan ``task(shard)`` out to every shard under the policy.

        Returns one outcome per shard (shard order).  Raises only on total
        loss: :class:`DeadlineExceededError` when the deadline killed every
        shard, :class:`ShardUnavailableError` when no shard survived for
        any other mix of reasons.

        ``request`` is the wire form of the task — ``(algorithm, k,
        scored, query)`` — for the process backend, which cannot ship a
        closure; the gather executors pass both, and the scatter picks
        the path the engine's ``worker_mode`` configures.
        """
        process = request is not None and self._uses_process_fanout()
        with span("shard.scatter", registry=self._registry,
                  shards=self.num_shards, workers=self._workers,
                  mode=self._resolved_mode if process else "thread"):
            if process:
                return self._scatter_process(request)
            return self._scatter_inner(task)

    def _scatter_inner(self, task) -> List[ShardOutcome]:
        deadline = self._deadline()
        shards = self._index.shards
        if self._workers > 1 and len(shards) > 1:
            pool = self._ensure_pool()
            futures = {
                pool.submit(self._run_shard_task, shard_id, shard, task, deadline):
                    shard_id
                for shard_id, shard in enumerate(shards)
            }
            try:
                timeout = deadline.remaining_ms() / 1000.0
                done, not_done = wait(
                    futures, timeout=None if timeout == float("inf") else timeout
                )
            except BaseException:
                # The fan-out itself failed (not a shard): cancel what has
                # not started and surface the error with the pool clean —
                # never leak futures into a pool we may close right after.
                for future in futures:
                    future.cancel()
                raise
            outcomes: Dict[int, ShardOutcome] = {}
            for future in done:
                shard_id = futures[future]
                error = future.exception()
                if error is not None:
                    # The runner is supposed to be total; treat a leak as a
                    # hard shard failure rather than poisoning the pool.
                    self._health.record_hard(shard_id)
                    outcomes[shard_id] = ShardOutcome(shard_id, reason="error")
                else:
                    outcomes[shard_id] = future.result()
            for future in not_done:
                # Past deadline: cancel what never started, abandon (drain
                # into the persistent pool) what is mid-flight.
                shard_id = futures[future]
                future.cancel()
                self._health.record_deadline_drop(shard_id)
                outcomes[shard_id] = ShardOutcome(shard_id, reason="deadline")
            ordered = [outcomes[shard_id] for shard_id in sorted(outcomes)]
        else:
            ordered = [
                self._run_shard_task(shard_id, shard, task, deadline)
                for shard_id, shard in enumerate(shards)
            ]
        self._check_total_loss(ordered, deadline)
        return ordered

    def _check_total_loss(self, outcomes: List[ShardOutcome], deadline) -> None:
        if not any(outcome.ok for outcome in outcomes):
            if all(outcome.reason == "deadline" for outcome in outcomes):
                raise DeadlineExceededError(
                    self._policy.deadline_ms or 0.0, deadline.elapsed_ms()
                )
            raise ShardUnavailableError(
                {outcome.shard_id: outcome.reason for outcome in outcomes},
                self.num_shards,
            )

    def _scatter_process(self, request) -> List[ShardOutcome]:
        """Process-backend fan-out: ship (query, k, algorithm, epoch) to
        the worker pool and classify each shard's reply.

        The stale path is two-level: the engine rebuilds a pool whose
        built epochs drifted *before* fanning out (:meth:`_ensure_process_pool`),
        and any worker that still answers ``stale`` (its replica raced a
        mutation) triggers one rebuild-and-retry; a shard stale even then
        degrades rather than merging the wrong epoch's candidates.
        """
        algorithm, k, scored, query = request
        deadline = self._deadline()
        pool = self._ensure_process_pool()
        responses = pool.fanout(
            query, k, algorithm, scored, self._index.shard_epochs(), deadline
        )
        if any(status == STALE for status, _, _ in responses.values()):
            self._count_stale(responses)
            pool.rebuild("stale-answer")
            responses = pool.fanout(
                query, k, algorithm, scored, self._index.shard_epochs(), deadline
            )
            if any(status == STALE for status, _, _ in responses.values()):
                self._count_stale(responses)
        registry = self._metrics()
        health = self._health
        outcomes: List[ShardOutcome] = []
        for shard_id in range(self.num_shards):
            status, value, elapsed_ms = responses.get(
                shard_id, (CRASHED, "no reply", 0.0)
            )
            registry.counter(
                "repro_parallel_tasks_total",
                "Process-worker shard tasks, by outcome",
                outcome=status,
            ).inc()
            if status == OK:
                self._record_worker_span(
                    registry, shard_id, pool.worker_of(shard_id), elapsed_ms
                )
                health.record_admitted(shard_id)
                health.record_success(shard_id)
                outcomes.append(ShardOutcome(shard_id, value=value, ok=True))
            elif status == DEADLINE:
                health.record_deadline_drop(shard_id)
                outcomes.append(ShardOutcome(shard_id, reason="deadline"))
            elif status == STALE:
                # Not a shard fault — a pool-lifecycle race.  The shard is
                # dropped from this answer (degraded) without charging its
                # breaker; the pool already rebuilt for the next query.
                outcomes.append(ShardOutcome(shard_id, reason="stale epoch"))
            else:
                health.record_hard(shard_id)
                reason = "crashed" if status == CRASHED else "error"
                outcomes.append(ShardOutcome(shard_id, reason=reason))
        self._check_total_loss(outcomes, deadline)
        return outcomes

    def _count_stale(self, responses) -> None:
        stale = sum(
            1 for status, _, _ in responses.values() if status == STALE
        )
        self._metrics().counter(
            "repro_parallel_stale_rejected_total",
            "Worker answers rejected by the epoch fence",
        ).inc(stale)

    @staticmethod
    def _record_worker_span(registry, shard_id: int, worker: int,
                            elapsed_ms: float) -> None:
        """Publish one worker task as a span record + duration histogram.

        The duration was measured *inside* the worker process, so the
        record is materialised directly instead of bracketing coordinator
        code with :class:`span` (which would time pipe waiting, not work).
        """
        if not registry.enabled:
            return
        record = SpanRecord(
            name="shard.worker",
            duration_ms=elapsed_ms,
            parent="shard.scatter",
            fields={"shard": shard_id, "worker": worker},
        )
        registry.record_span(record)
        registry.histogram(
            SPAN_DURATION_METRIC,
            help="Wall duration of instrumented pipeline spans",
            span="shard.worker",
        ).observe(elapsed_ms)
        registry.histogram(
            "repro_parallel_task_ms",
            "Per-task worker compute time (measured worker-side)",
            worker=str(worker),
        ).observe(elapsed_ms)

    def _execute_gather_naive(
        self, query: Query, k: int, scored: bool
    ) -> DiverseResult:
        """Per-shard canonical diverse top-k, then Definitions 1-2 re-merge."""

        def local_topk(shard):
            merged = MergedList(query, shard)
            if scored:
                matches = baselines.collect_all_scored(merged)
                chosen = scored_diverse_subset(matches, k)
                local: Union[Dict[DeweyId, float], List[DeweyId]] = {
                    dewey: matches[dewey] for dewey in chosen
                }
            else:
                local = diverse_subset(baselines.collect_all(merged), k)
            return local, merged.next_calls, merged.scored_next_calls

        outcomes = self._scatter(local_topk, request=("naive", k, scored, query))
        gathered = [outcome.value for outcome in outcomes if outcome.ok]
        candidates = [local for local, _, _ in gathered]
        stats = self._gather_stats(gathered, candidates)
        stats.update(self._resilience_stats(outcomes))
        if scored:
            scores = scored_diverse_merge(candidates, k)
            deweys = sorted(scores)
        else:
            scores = None
            deweys = diverse_merge(candidates, k)
        return self._package(deweys, scores, stats, k, "naive", scored)

    def _execute_gather_basic(self, query: Query, k: int) -> DiverseResult:
        """Per-shard first-k, merged to the global document-order first-k."""

        def local_firstk(shard):
            merged = MergedList(query, shard)
            local = baselines.basic_unscored(merged, k)
            return local, merged.next_calls, merged.scored_next_calls

        outcomes = self._scatter(local_firstk, request=("basic", k, False, query))
        gathered = [outcome.value for outcome in outcomes if outcome.ok]
        candidates = [local for local, _, _ in gathered]
        stats = self._gather_stats(gathered, candidates)
        stats.update(self._resilience_stats(outcomes))
        deweys = merge_first_k(candidates, k)
        return self._package(deweys, None, stats, k, "basic", False)

    def _gather_stats(self, gathered, candidates) -> Dict[str, int]:
        return {
            "next_calls": sum(calls for _, calls, _ in gathered),
            "scored_next_calls": sum(calls for _, _, calls in gathered),
            "shards_queried": len(gathered),
            "merge_candidates": sum(len(local) for local in candidates),
        }

    def _resilience_stats(self, outcomes: Sequence[ShardOutcome]) -> Dict[str, int]:
        """Per-query resilience stats for ``result.stats``.

        These count the *execute* fan-out only — one entry per shard per
        query, so a shard that also faulted during plan preparation is not
        double-counted here (prepare-phase faults show up in
        :attr:`health` and the ``repro_retries_total{phase="prepare"}`` /
        ``repro_plan_degraded_total`` metrics instead).
        """
        failed = [outcome for outcome in outcomes if not outcome.ok]
        if failed:
            registry = self._metrics()
            registry.counter(
                "repro_degraded_queries_total",
                "Scatter-gather queries answered from surviving shards only",
            ).inc()
            for outcome in failed:
                registry.counter(
                    "repro_shards_failed_total",
                    "Per-query shard losses in the execute fan-out, by reason",
                    reason=outcome.reason,
                ).inc()
        return {
            "degraded": bool(failed),
            "shards_failed": len(failed),
            "shards_total": self.num_shards,
            "replicas": self._index.replication_factor,
            "retries": sum(outcome.retries for outcome in outcomes),
            "deadline_ms": self._policy.deadline_ms or 0,
        }
