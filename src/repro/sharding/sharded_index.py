"""A horizontally partitioned inverted index in one global Dewey space.

:class:`ShardedIndex` splits a relation's rows across N independent
:class:`~repro.index.inverted.InvertedIndex` shards.  Three design points
make it a drop-in replacement for a single index:

* **One global Dewey assignment.**  All shards share a single
  :class:`~repro.index.dewey_index.DeweyIndex`, so a Dewey ID means the
  same tuple everywhere — shard answers can be unioned, merged, and
  materialised without translation, and are bit-identical to an unsharded
  build over the same rows in the same order.
* **Subtree co-location.**  Rows are routed on the value of the diversity
  ordering's *top* attribute (:mod:`repro.sharding.router`), so every
  level-1 subtree of the global Dewey tree lives wholly inside one shard —
  the invariant the diverse-merge correctness argument rests on.
* **The InvertedIndex read protocol.**  ``scalar_postings`` /
  ``token_postings`` / ``all_postings`` return k-way *union views* over the
  per-shard posting lists (level-1 lookups route straight to their owning
  shard).  Every existing consumer — the merged-list cursors, the
  selectivity estimator, WAND, MultQ's vocabulary enumeration — runs
  unmodified on a :class:`ShardedIndex`, and since the algorithms only
  observe ``seek``/``seek_floor`` results, their answers are identical to
  the unsharded engine's.

Mutations route to exactly one shard and bump only that shard's epoch;
the global ``epoch`` (the sum) preserves the serving-cache invalidation
contract of PR 1.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, List, Optional, Sequence, Union

from ..core.dewey import DeweyId
from ..core.ordering import DiversityOrdering
from ..index.dewey_index import DeweyIndex
from ..index.inverted import InvertedIndex
from ..index.postings import ARRAY_BACKEND, PostingList
from ..storage.relation import Relation
from .router import ShardRouter, make_router


class UnionPostingView(PostingList):
    """A read-only posting list presenting several shard lists as one.

    The shards partition the postings, so ``seek`` is the minimum of the
    per-shard seeks (and ``seek_floor`` the maximum) — each a logarithmic
    probe.  Mutations go through the owning shard, never through the view.
    """

    __slots__ = ("_parts",)

    def __init__(self, parts: Sequence[PostingList]):
        self._parts = parts

    def seek(self, dewey: DeweyId) -> Optional[DeweyId]:
        best: Optional[DeweyId] = None
        for part in self._parts:
            found = part.seek(dewey)
            if found is not None and (best is None or found < best):
                best = found
        return best

    def seek_floor(self, dewey: DeweyId) -> Optional[DeweyId]:
        best: Optional[DeweyId] = None
        for part in self._parts:
            found = part.seek_floor(dewey)
            if found is not None and (best is None or found > best):
                best = found
        return best

    def first(self) -> Optional[DeweyId]:
        candidates = [part.first() for part in self._parts]
        candidates = [dewey for dewey in candidates if dewey is not None]
        return min(candidates) if candidates else None

    def last(self) -> Optional[DeweyId]:
        candidates = [part.last() for part in self._parts]
        candidates = [dewey for dewey in candidates if dewey is not None]
        return max(candidates) if candidates else None

    def insert(self, dewey: DeweyId) -> None:
        raise TypeError("union posting views are read-only; route to a shard")

    def remove(self, dewey: DeweyId) -> bool:
        raise TypeError("union posting views are read-only; route to a shard")

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)

    def __iter__(self) -> Iterator[DeweyId]:
        return heapq.merge(*self._parts)

    def memory_bytes(self) -> int:
        return sum(part.memory_bytes() for part in self._parts)

    def __repr__(self) -> str:
        return f"UnionPostingView({len(self._parts)} parts, {len(self)} postings)"


class ShardedIndex:
    """N inverted-index shards behind the single-index read protocol."""

    __slots__ = (
        "_relation",
        "_ordering",
        "_backend",
        "_dewey",
        "_router",
        "_shards",
        "_route_position",
        "_worker_budget",
        "__weakref__",  # metrics collectors hold the index weakly
    )

    def __init__(
        self,
        relation: Relation,
        ordering: DiversityOrdering,
        shards: int = 2,
        backend: str = ARRAY_BACKEND,
        router: Union[str, ShardRouter] = "hash",
    ):
        if not isinstance(ordering, DiversityOrdering):
            ordering = DiversityOrdering(ordering)
        if shards < 1:
            raise ValueError("shard count must be positive")
        self._relation = relation
        self._ordering = ordering
        self._backend = backend
        self._dewey = DeweyIndex(relation, ordering)
        self._route_position = relation.schema.position(ordering.attributes[0])
        self._router = make_router(router, shards, self._route_values())
        self._worker_budget = 0
        self._shards: List[InvertedIndex] = [
            InvertedIndex(relation, ordering, backend=backend, dewey=self._dewey)
            for _ in range(shards)
        ]

    @classmethod
    def build(
        cls,
        relation: Relation,
        ordering: Union[DiversityOrdering, Sequence[str]],
        shards: int = 2,
        backend: str = ARRAY_BACKEND,
        router: Union[str, ShardRouter] = "hash",
    ) -> "ShardedIndex":
        """Offline sharded build: one global Dewey pass, then per-shard
        posting lists over each shard's routed row subset."""
        if not isinstance(ordering, DiversityOrdering):
            ordering = DiversityOrdering(ordering)
        index = cls(relation, ordering, shards=shards, backend=backend, router=router)
        index._dewey = DeweyIndex.build(relation, ordering)
        routed: List[List[int]] = [[] for _ in range(shards)]
        for rid in index._dewey.iter_rids():
            routed[index.shard_of(rid)].append(rid)
        index._shards = [
            InvertedIndex.build(
                relation, ordering, backend=backend, dewey=index._dewey, rids=rids
            )
            for rids in routed
        ]
        return index

    @classmethod
    def from_parts(
        cls,
        relation: Relation,
        ordering: DiversityOrdering,
        dewey: DeweyIndex,
        router: ShardRouter,
        shards: Sequence,
        backend: str = ARRAY_BACKEND,
    ) -> "ShardedIndex":
        """Reassemble a sharded index from already-built parts.

        The recovery path (:mod:`repro.durability.sharded`) restores the
        relation, the global Dewey assignment, the persisted router, and
        each shard index separately, then stitches them back together here
        — no re-routing or re-building happens.
        """
        if router.shards != len(shards):
            raise ValueError(
                f"router covers {router.shards} shards, got {len(shards)}"
            )
        index = cls.__new__(cls)
        index._relation = relation
        index._ordering = ordering
        index._backend = backend
        index._dewey = dewey
        index._route_position = relation.schema.position(ordering.attributes[0])
        index._router = router
        index._worker_budget = 0
        index._shards = list(shards)
        return index

    def _route_values(self) -> list:
        position = self._route_position
        return [row[position] for _, row in self._relation.iter_live()]

    # ------------------------------------------------------------------
    # Introspection (the InvertedIndex protocol)
    # ------------------------------------------------------------------
    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def ordering(self) -> DiversityOrdering:
        return self._ordering

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def dewey(self) -> DeweyIndex:
        """The shared global Dewey assignment."""
        return self._dewey

    @property
    def depth(self) -> int:
        return self._ordering.depth

    @property
    def epoch(self) -> int:
        """Global mutation epoch: the sum of per-shard epochs.

        Any mutation anywhere bumps it, so the serving-layer caches keyed on
        ``epoch`` stay correct; :meth:`shard_epochs` exposes the per-shard
        counters (a mutation touches exactly one of them).
        """
        return sum(shard.epoch for shard in self._shards)

    def shard_epochs(self) -> List[int]:
        """Per-shard mutation epochs, in shard order."""
        return [shard.epoch for shard in self._shards]

    @property
    def shards(self) -> List[InvertedIndex]:
        """The shard slots, in shard order (read access for fan-out).

        A slot is a bare :class:`~repro.index.inverted.InvertedIndex`, or a
        :class:`~repro.durability.store.DurableIndex`, or — after
        :meth:`replicate` — a :class:`~repro.replication.ReplicaSet`; all
        speak the same read protocol.
        """
        return self._shards

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def replication_factor(self) -> int:
        """Copies per logical shard (1 until :meth:`replicate` is called)."""
        from ..replication.replica_set import ReplicaSet

        first = self._shards[0]
        if isinstance(first, ReplicaSet):
            return first.num_replicas
        return 1

    @property
    def worker_budget(self) -> int:
        """The owning engine's fan-out worker budget (0 = unset).

        Published by :meth:`ShardedEngine._push_worker_budget` so replica
        sets created by a later :meth:`replicate` size their hedge pools
        from it instead of the standalone default.
        """
        return self._worker_budget

    @worker_budget.setter
    def worker_budget(self, budget: int) -> None:
        if budget < 0:
            raise ValueError("worker budget must be >= 0")
        self._worker_budget = budget

    def replicate(
        self,
        count: int,
        policy=None,
        clock=None,
        hedge=None,
        registry=None,
    ) -> None:
        """Grow every logical shard to ``count`` bit-identical replicas.

        Each shard slot is swapped in place for a
        :class:`~repro.replication.ReplicaSet` wrapping the existing shard
        (which becomes replica 0, keeping any durability wrapper and its
        WAL) plus ``count - 1`` bootstrapped, sha256-verified copies — the
        same in-place ``_shards`` idiom chaos injection and the durable
        store use, so every reader through the index protocol picks up
        failover transparently.  Replicate *after* durability wrapping and
        *before* chaos injection.
        """
        from ..observability import MONOTONIC
        from ..replication.replica_set import ReplicaSet

        if count < 1:
            raise ValueError("replica count must be >= 1")
        if any(isinstance(shard, ReplicaSet) for shard in self._shards):
            raise ValueError("index is already replicated")
        if count == 1:
            return
        self._shards = [
            ReplicaSet.grow(
                shard,
                count,
                shard_id,
                policy=policy,
                clock=clock if clock is not None else MONOTONIC,
                hedge=hedge,
                registry=registry,
            )
            for shard_id, shard in enumerate(self._shards)
        ]
        if self._worker_budget:
            # Sets created after the engine published its budget pick the
            # derived width up here; _push_worker_budget covers the other
            # order (replicate first, engine construction after).
            width = ReplicaSet.derive_pool_width(
                count, self.num_shards, self._worker_budget
            )
            for replica_set in self._shards:
                replica_set.set_pool_budget(width)

    @property
    def router(self) -> ShardRouter:
        return self._router

    def memory_stats(self) -> dict:
        """Deployment-wide posting-list memory accounting (sum of shards)."""
        lists = 0
        postings = 0
        total_bytes = 0
        for shard in self._shards:
            stats = shard.memory_stats()
            lists += stats["lists"]
            postings += stats["postings"]
            total_bytes += stats["bytes"]
        return {
            "backend": self._backend,
            "lists": lists,
            "postings": postings,
            "bytes": total_bytes,
            "bytes_per_posting": (total_bytes / postings) if postings else 0.0,
        }

    def shard_of(self, rid: int) -> int:
        """The shard number owning row ``rid`` (routes on its level-1 value)."""
        return self._router.shard_of(self._relation[rid][self._route_position])

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __repr__(self) -> str:
        return (
            f"ShardedIndex({self._relation.name!r}, {len(self)} tuples, "
            f"{len(self._shards)} shards, router={self._router!r}, "
            f"backend={self._backend!r})"
        )

    # ------------------------------------------------------------------
    # Posting-list lookup (union views; level-1 lookups route directly)
    # ------------------------------------------------------------------
    def scalar_postings(self, attribute: str, value: Any) -> PostingList:
        if attribute == self._ordering.attributes[0]:
            # Level-1 postings are co-located by construction: serve the
            # owning shard's list directly, no fan-out needed.
            return self._shards[self._router.shard_of(value)].scalar_postings(
                attribute, value
            )
        return self._union(
            [shard.scalar_postings(attribute, value) for shard in self._shards]
        )

    def token_postings(self, attribute: str, token: str) -> PostingList:
        return self._union(
            [shard.token_postings(attribute, token) for shard in self._shards]
        )

    def all_postings(self) -> PostingList:
        return self._union([shard.all_postings() for shard in self._shards])

    def vocabulary(self, attribute: str) -> list:
        seen = set()
        values = []
        for shard in self._shards:
            for value in shard.vocabulary(attribute):
                if value not in seen:
                    seen.add(value)
                    values.append(value)
        return values

    @staticmethod
    def _union(parts: List[PostingList]) -> PostingList:
        if len(parts) == 1:
            return parts[0]
        return UnionPostingView(parts)

    # ------------------------------------------------------------------
    # Fault injection (see repro.resilience.chaos)
    # ------------------------------------------------------------------
    def inject_chaos(self, chaos) -> None:
        """Wrap every shard in a :class:`~repro.resilience.chaos.FaultyShard`
        driven by ``chaos``; reads start failing/slowing per its fault plan.
        Replicated shards inject *inside* the :class:`ReplicaSet` so each
        copy gets its own ``(shard, replica)``-addressed proxy.
        Idempotent-safe: injecting over an existing wrapper replaces it."""
        from ..replication.replica_set import ReplicaSet
        from ..resilience.chaos import FaultyShard

        self.clear_chaos()
        wrapped = []
        for shard_id, shard in enumerate(self._shards):
            if isinstance(shard, ReplicaSet):
                shard.inject_chaos(chaos)
                wrapped.append(shard)
            else:
                wrapped.append(FaultyShard(shard, shard_id, chaos))
        self._shards = wrapped

    def clear_chaos(self) -> None:
        """Unwrap any chaos proxies; reads go straight to the shards again."""
        from ..replication.replica_set import ReplicaSet

        cleared = []
        for shard in self._shards:
            if isinstance(shard, ReplicaSet):
                shard.clear_chaos()
                cleared.append(shard)
            else:
                cleared.append(getattr(shard, "inner", shard))
        self._shards = cleared

    @property
    def chaos(self):
        """The active :class:`ChaosPolicy`, or ``None`` when uninjected."""
        return getattr(self._shards[0], "chaos", None)

    # ------------------------------------------------------------------
    # Incremental maintenance (routes to exactly one shard)
    # ------------------------------------------------------------------
    def insert(self, rid: int) -> DeweyId:
        """Index one new relation row into its routed shard."""
        return self._shards[self.shard_of(rid)].insert(rid)

    def remove(self, rid: int) -> Optional[DeweyId]:
        """Unindex one row from its routed shard; returns its Dewey ID."""
        if rid not in self._dewey:
            return None
        return self._shards[self.shard_of(rid)].remove(rid)
