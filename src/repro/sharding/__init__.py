"""Horizontal scaling: shard the index, fan out queries, diverse-merge.

The paper's algorithms (Sections III-IV) operate per index; this package
scales them horizontally while keeping every answer bit-identical to an
unsharded engine:

* :mod:`~repro.sharding.router` — rows are routed on the diversity
  ordering's top attribute, so sibling (level-1) subtrees co-locate.
* :mod:`~repro.sharding.sharded_index` — N inverted-index shards sharing
  one global Dewey assignment, behind the single-index read protocol.
* :mod:`~repro.sharding.merge` — the diverse-merge step: Definitions 1-2
  re-applied to the union of per-shard diverse top-k candidates.
* :mod:`~repro.sharding.engine` — the fan-out engine (sequential,
  persistent thread-pool, or — for the gather algorithms — a
  :mod:`repro.parallel` process pool that sidesteps the GIL),
  cache-compatible with the serving layer and failure-aware via
  :mod:`repro.resilience` (deadlines, retries, circuit breakers,
  survivor-only degraded answers for the gather algorithms).

Correctness is proven empirically by ``tests/test_sharding_differential.py``
(and under injected faults by ``tests/test_resilience_differential.py``)
and argued in ``docs/paper_mapping.md``.
"""

from .engine import GATHER_ALGORITHMS, ShardOutcome, ShardedEngine
from .merge import diverse_merge, merge_first_k, scored_diverse_merge
from .router import HashRouter, RangeRouter, ROUTERS, ShardRouter, make_router
from .sharded_index import ShardedIndex, UnionPostingView

__all__ = [
    "GATHER_ALGORITHMS",
    "ShardOutcome",
    "HashRouter",
    "RangeRouter",
    "ROUTERS",
    "ShardRouter",
    "ShardedEngine",
    "ShardedIndex",
    "UnionPostingView",
    "diverse_merge",
    "make_router",
    "merge_first_k",
    "scored_diverse_merge",
]
