"""The diverse-merge step: Definitions 1-2 re-applied to shard candidates.

Each shard answers a diverse top-k over *its* rows; the coordinator unions
those candidate sets and re-runs the exact diverse-subset selection (the
same top-down water-fill as ``repro.core.diversify``, i.e. Definitions 1-2
of the paper) over the union.  Because

* rows are routed on the level-1 diversity value (whole level-1 subtrees
  per shard, :mod:`repro.sharding.router`),
* all shards share one global Dewey assignment
  (:mod:`repro.sharding.sharded_index`), and
* each shard returns its *canonical* local diverse top-k (water-fill with
  smallest-Dewey tie-breaks, budget ``min(k, |local matches|)``),

each shard's candidate set is a superset of its contribution to the global
answer, so the merged selection is bit-identical to running the unsharded
engine over all rows — the property the differential test harness
(``tests/test_sharding_differential.py``) checks exhaustively.  The
correctness argument is spelled out in ``docs/paper_mapping.md``.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, Iterable, List

from ..core.dewey import DeweyId
from ..core.diversify import diverse_subset, scored_diverse_subset


def diverse_merge(candidate_sets: Iterable[Iterable[DeweyId]], k: int) -> List[DeweyId]:
    """Merge per-shard unscored diverse top-k sets into the global top-k.

    Re-applies Definition 2 (maximally diverse subset) to the union; the
    shards partition the rows, so the union is duplicate-free.
    """
    return diverse_subset(chain.from_iterable(candidate_sets), k)


def scored_diverse_merge(
    candidate_sets: Iterable[Dict[DeweyId, float]], k: int
) -> Dict[DeweyId, float]:
    """Merge per-shard scored diverse top-k maps into the global top-k.

    Re-applies the scored Definition 2: everything above the union's k-th
    best score is forced in, the tied tier is completed diversely.
    """
    union: Dict[DeweyId, float] = {}
    for candidates in candidate_sets:
        union.update(candidates)
    chosen = scored_diverse_subset(union, k)
    return {dewey: union[dewey] for dewey in chosen}


def merge_first_k(candidate_sets: Iterable[Iterable[DeweyId]], k: int) -> List[DeweyId]:
    """Merge per-shard first-k candidate lists into the global first-k.

    The Basic baseline has no diversity step: the global first k matches in
    document order are the k smallest members of the union of per-shard
    first-k lists (each shard's list covers its own document-order prefix).
    """
    return sorted(chain.from_iterable(candidate_sets))[:k]
