"""Shard routing keyed on the diversity ordering's top attribute.

A row's shard is a pure function of its *level-1 diversity value* (the
highest-priority ordering attribute, e.g. ``Make``).  Routing on that value
— rather than on the rid — is what makes the sharded diverse-merge work:
every level-1 subtree of the global Dewey tree lives wholly inside one
shard, so a shard's local diverse top-k is computed over whole subtrees and
the merge step never has to reconcile a subtree split across shards (see
``docs/paper_mapping.md``, "Sharding").

Two strategies:

* :class:`HashRouter` — a stable (process-independent) CRC32 hash of the
  typed value, modulo the shard count.  The default: uniform, stateless,
  and new values route deterministically forever.
* :class:`RangeRouter` — contiguous value ranges, boundaries chosen from
  the values observed at build time.  Keeps sort-adjacent values together
  (useful when queries correlate with value ranges); unseen values fall
  into the nearest existing range.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Iterable, Sequence, Union

ROUTERS = ("hash", "range")


def _sort_key(value: Any) -> tuple:
    """Type-tagged sort key (mirrors the Dewey builder's mixed-type order)."""
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))


class ShardRouter:
    """Maps a level-1 diversity value to a shard number in ``[0, shards)``."""

    __slots__ = ("_shards",)

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError("shard count must be positive")
        self._shards = shards

    @property
    def shards(self) -> int:
        return self._shards

    def shard_of(self, value: Any) -> int:
        raise NotImplementedError


class HashRouter(ShardRouter):
    """Stable-hash partitioning: ``crc32(typed value) % shards``.

    Python's builtin ``hash`` for strings is salted per process, so it
    cannot be used — two runs (or a coordinator and its shards) must agree
    on every placement.  CRC32 over a typed repr is stable everywhere and
    keeps ``1``, ``1.0``-as-int, ``'1'`` and ``True`` distinct exactly when
    the index's value equality does not conflate them.
    """

    __slots__ = ()

    def shard_of(self, value: Any) -> int:
        tag = f"{type(value).__name__}:{value!r}"
        return zlib.crc32(tag.encode("utf-8")) % self._shards

    def __repr__(self) -> str:
        return f"HashRouter(shards={self._shards})"


class RangeRouter(ShardRouter):
    """Range partitioning over the sort order of observed values.

    ``boundaries`` holds the (exclusive) upper sort-key of each shard but
    the last; a value routes to the first shard whose boundary exceeds its
    key.  Build with :meth:`from_values` to get near-equal shards from the
    distinct values present at index time.
    """

    __slots__ = ("_boundaries",)

    def __init__(self, shards: int, boundaries: Sequence[tuple]):
        super().__init__(shards)
        if len(boundaries) != shards - 1:
            raise ValueError(
                f"{shards} shards need {shards - 1} boundaries, "
                f"got {len(boundaries)}"
            )
        if list(boundaries) != sorted(boundaries):
            raise ValueError("range boundaries must be sorted")
        self._boundaries = list(boundaries)

    @classmethod
    def from_values(cls, values: Iterable[Any], shards: int) -> "RangeRouter":
        """Split the distinct observed values into ``shards`` even ranges."""
        if shards < 1:
            raise ValueError("shard count must be positive")
        keys = sorted({_sort_key(value) for value in values})
        boundaries = []
        for cut in range(1, shards):
            position = (cut * len(keys)) // shards
            boundaries.append(keys[position] if position < len(keys) else (2, ""))
        return cls(shards, boundaries)

    def shard_of(self, value: Any) -> int:
        return bisect.bisect_right(self._boundaries, _sort_key(value))

    @property
    def boundaries(self) -> list:
        """The boundary sort-keys (for persistence: a recovered deployment
        must route exactly like the one that wrote the shards)."""
        return [tuple(boundary) for boundary in self._boundaries]

    def __repr__(self) -> str:
        return f"RangeRouter(shards={self._shards})"


def make_router(
    strategy: Union[str, ShardRouter],
    shards: int,
    values: Iterable[Any] = (),
) -> ShardRouter:
    """Resolve a router spec: an instance passes through, a name builds one."""
    if isinstance(strategy, ShardRouter):
        if strategy.shards != shards:
            raise ValueError(
                f"router covers {strategy.shards} shards, index has {shards}"
            )
        return strategy
    if strategy == "hash":
        return HashRouter(shards)
    if strategy == "range":
        return RangeRouter.from_values(values, shards)
    raise ValueError(f"unknown router {strategy!r}; choose from {ROUTERS}")
