"""Merged-list navigation over a compiled query (Section III-B).

The paper's algorithms never materialise ``RES(R, Q)``; they navigate a
conceptual *merged list* of all matches through

* ``next(id, LEFT)``  — smallest matching Dewey ID >= id,
* ``next(id, RIGHT)`` — largest matching Dewey ID <= id,
* ``next(id, dir, theta)`` — ditto, restricted to tuples scoring >= theta,

implemented here by composing posting-list seeks: leapfrog intersection for
AND nodes, k-way min/max for OR nodes.  :class:`MergedList` is the façade the
diversity algorithms use; it also counts probe calls so Theorem 2 and the
ablation benchmarks can be checked empirically.
"""

from __future__ import annotations

from typing import Optional

from ..core.dewey import LEFT, RIGHT, DeweyId, predecessor, successor, validate_direction
from ..query.predicates import KeywordPredicate, ScalarPredicate
from ..query.query import AND, LEAF, OR, Query
from .inverted import InvertedIndex
from .postings import PostingList


class Cursor:
    """A navigable view of the Dewey IDs matching some boolean expression."""

    __slots__ = ()

    def next(self, bound: DeweyId, direction: str = LEFT) -> Optional[DeweyId]:
        """Nearest match at-or-beyond ``bound`` in ``direction``."""
        raise NotImplementedError

    def contains(self, dewey: DeweyId) -> bool:
        return self.next(dewey, LEFT) == dewey


class LeafCursor(Cursor):
    """Navigates a single posting list."""

    __slots__ = ("_postings",)

    def __init__(self, postings: PostingList):
        self._postings = postings

    def next(self, bound: DeweyId, direction: str = LEFT) -> Optional[DeweyId]:
        if direction == LEFT:
            return self._postings.seek(bound)
        validate_direction(direction)
        return self._postings.seek_floor(bound)


class AndCursor(Cursor):
    """Leapfrog intersection of child cursors."""

    __slots__ = ("_children",)

    def __init__(self, children: list[Cursor]):
        if not children:
            raise ValueError("AndCursor needs at least one child")
        self._children = children

    def next(self, bound: DeweyId, direction: str = LEFT) -> Optional[DeweyId]:
        validate_direction(direction)
        candidate = bound
        while True:
            agreed = True
            for child in self._children:
                found = child.next(candidate, direction)
                if found is None:
                    return None
                if found != candidate:
                    candidate = found
                    agreed = False
                    break
            if agreed:
                return candidate


class OrCursor(Cursor):
    """k-way union of child cursors."""

    __slots__ = ("_children",)

    def __init__(self, children: list[Cursor]):
        if not children:
            raise ValueError("OrCursor needs at least one child")
        self._children = children

    def next(self, bound: DeweyId, direction: str = LEFT) -> Optional[DeweyId]:
        validate_direction(direction)
        best: Optional[DeweyId] = None
        for child in self._children:
            found = child.next(bound, direction)
            if found is None:
                continue
            if best is None:
                best = found
            elif direction == LEFT and found < best:
                best = found
            elif direction == RIGHT and found > best:
                best = found
        return best


def compile_cursor(query: Query, index: InvertedIndex) -> Cursor:
    """Compile a query tree to a cursor over the inverted index."""
    if query.kind == LEAF:
        return _compile_leaf(query, index)
    children = [compile_cursor(child, index) for child in query.children]
    if len(children) == 1:
        return children[0]
    if query.kind == AND:
        return AndCursor(children)
    if query.kind == OR:
        return OrCursor(children)
    raise ValueError(f"unknown query node kind {query.kind!r}")


def _compile_leaf(query: Query, index: InvertedIndex) -> Cursor:
    predicate = query.predicate
    if isinstance(predicate, ScalarPredicate):
        return LeafCursor(index.scalar_postings(predicate.attribute, predicate.value))
    if isinstance(predicate, KeywordPredicate):
        lists = [
            LeafCursor(index.token_postings(predicate.attribute, token))
            for token in predicate.terms
        ]
        if len(lists) == 1:
            return lists[0]
        return AndCursor(lists)
    # The match-all predicate (and any future always-true predicate).
    return LeafCursor(index.all_postings())


class MergedList:
    """The façade used by all diversity algorithms.

    Wraps the boolean cursor of a query plus the per-leaf weighted cursors
    needed for scoring, and counts every probe for instrumentation.
    """

    def __init__(self, query: Query, index: InvertedIndex):
        self._query = query
        self._index = index
        self._root = compile_cursor(query, index)
        self._leaves: list[tuple[Cursor, float]] = [
            (_compile_leaf(leaf, index), leaf.weight) for leaf in query.leaves()
        ]
        self.next_calls = 0
        self.scored_next_calls = 0
        # Always-on access accounting (repro.observability.probes): cheap
        # integer counters, aggregated once per query — never per probe.
        self.rows_touched = 0        # probes that landed on a match
        self.skip_jumps = 0          # one-pass skip-aheads (driver-reported)
        self.scan_restarts = 0       # LEFT probes issued behind the scan head
        self._scan_head: Optional[DeweyId] = None

    @property
    def query(self) -> Query:
        return self._query

    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def depth(self) -> int:
        return self._index.depth

    def reset_stats(self) -> None:
        self.next_calls = 0
        self.scored_next_calls = 0
        self.rows_touched = 0
        self.skip_jumps = 0
        self.scan_restarts = 0
        self._scan_head = None

    # ------------------------------------------------------------------
    # Unscored navigation
    # ------------------------------------------------------------------
    def next(self, bound: DeweyId, direction: str = LEFT) -> Optional[DeweyId]:
        """The paper's ``mergedList.next(id, dir)``."""
        self.next_calls += 1
        if direction == LEFT:
            # Single-scan accounting: a LEFT probe *behind* the furthest
            # LEFT probe so far means a posting region is being re-read.
            # One-pass issues monotonically increasing bounds, so for it
            # this stays 0 — the runtime form of the single-scan property.
            head = self._scan_head
            if head is None or bound > head:
                self._scan_head = bound
            elif bound < head:
                self.scan_restarts += 1
        result = self._root.next(bound, direction)
        if result is not None:
            self.rows_touched += 1
        return result

    def first(self) -> Optional[DeweyId]:
        """The leftmost match (``next(0)`` in the paper)."""
        return self.next((0,) * self._index.depth, LEFT)

    def contains(self, dewey: DeweyId) -> bool:
        """Boolean membership test (not counted as a probe)."""
        return self._root.next(dewey, LEFT) == dewey

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, dewey: DeweyId) -> float:
        """Sum of the weights of the leaf predicates containing ``dewey``."""
        total = 0.0
        for cursor, weight in self._leaves:
            if weight and cursor.next(dewey, LEFT) == dewey:
                total += weight
        return total

    def max_score(self) -> float:
        return sum(weight for _, weight in self._leaves)

    def weighted_leaves(self) -> list[tuple[Cursor, float]]:
        """Per-leaf cursors with weights (consumed by WAND)."""
        return list(self._leaves)

    def next_scored(
        self,
        bound: DeweyId,
        direction: str,
        theta: float,
        strict: bool = False,
    ) -> Optional[DeweyId]:
        """Nearest match in ``direction`` whose score is >= theta (or > theta
        when ``strict``).  This is ``mergedList.next(id, dir, theta)`` from
        Sections III-D and IV-B, implemented with WAND-style pivoting
        ("our implementation of next() uses the same techniques as the WAND
        algorithm", Section III-B): regions whose summed leaf weights cannot
        reach theta are skipped without being touched.
        """
        step = self._wand_step(bound, direction, theta, strict)
        return step[0] if step is not None else None

    def _wand_step(
        self,
        bound: DeweyId,
        direction: str,
        theta: float,
        strict: bool,
    ) -> Optional[tuple[DeweyId, float]]:
        """WAND pivot search for the nearest match scoring >= / > theta."""
        self.scored_next_calls += 1
        forward = direction == LEFT
        states: list[list] = []
        for cursor, weight in self._leaves:
            if weight <= 0.0:
                continue
            position = cursor.next(bound, direction)
            if position is not None:
                states.append([position, cursor, weight])
        while states:
            states.sort(key=lambda state: state[0], reverse=not forward)
            accumulated = 0.0
            pivot_index = None
            for index, state in enumerate(states):
                accumulated += state[2]
                if accumulated > theta if strict else accumulated >= theta:
                    pivot_index = index
                    break
            if pivot_index is None:
                return None
            pivot = states[pivot_index][0]
            if states[0][0] == pivot:
                # Fully evaluate the pivot: boolean match + exact score.
                if self._root.next(pivot, direction) == pivot:
                    score = self.score(pivot)
                    if score > theta if strict else score >= theta:
                        return pivot, score
                beyond = successor(pivot) if forward else predecessor(pivot)
                if beyond is None:
                    return None
                remaining = []
                for state in states:
                    at_or_before = state[0] <= pivot if forward else state[0] >= pivot
                    if at_or_before:
                        position = state[1].next(beyond, direction)
                        if position is None:
                            continue
                        state[0] = position
                    remaining.append(state)
                states = remaining
            else:
                # Advance the lagging lists up to the pivot.
                remaining = []
                for state in states:
                    lagging = state[0] < pivot if forward else state[0] > pivot
                    if lagging:
                        position = state[1].next(pivot, direction)
                        if position is None:
                            continue
                        state[0] = position
                    remaining.append(state)
                states = remaining
        return None

    def next_onepass_scored(
        self,
        start: DeweyId,
        skip_id: Optional[DeweyId],
        min_score: float,
    ) -> Optional[tuple[DeweyId, float]]:
        """The scored one-pass step (Section III-D).

        Returns the smallest match ``id >= start`` such that either
        ``score(id) > min_score``, or ``score(id) == min_score`` and
        ``id >= skip_id``; ``None`` when the scan is exhausted (a ``None``
        ``skip_id`` disables the equal-score pickup entirely).  The result
        carries its score so the caller need not recompute it.

        Composed of two WAND pivot searches: a strict one from ``start``
        (anything beating the current minimum) and a non-strict one from
        ``skip_id`` (the diversity-driven pickup within the tied tier); the
        smaller of the two hits wins.
        """
        better = self._wand_step(start, LEFT, min_score, strict=True)
        if skip_id is None:
            return better
        tier_start = skip_id if skip_id > start else start
        tied = self._wand_step(tier_start, LEFT, min_score, strict=False)
        if better is None:
            return tied
        if tied is None or better[0] <= tied[0]:
            return better
        return tied
