"""Posting lists of Dewey IDs with bidirectional skip navigation.

Every distinct attribute value (and every text token) owns one posting list
holding the Dewey IDs of matching tuples in document order.  The paper's
algorithms only ever touch posting lists through two primitives:

* ``seek(id)``   — smallest posting >= id  (a LEFT-moving ``next``),
* ``seek_floor(id)`` — largest posting <= id (a RIGHT-moving ``next``),

which all backends implement in logarithmic time: a packed sorted array
(binary search), a B+-tree (the paper's choice, Section I), and a
delta-compressed flat-buffer layout with galloping search
(:mod:`repro.index.compressed`).  The merged multi-list navigation lives
in :mod:`repro.index.merged`.
"""

from __future__ import annotations

import bisect
import sys
from typing import Iterable, Iterator, Optional

from ..core.dewey import DeweyId
from .bptree import BPlusTree

ARRAY_BACKEND = "array"
BPTREE_BACKEND = "bptree"
COMPRESSED_BACKEND = "compressed"
BACKENDS = (ARRAY_BACKEND, BPTREE_BACKEND, COMPRESSED_BACKEND)


class PostingList:
    """Interface shared by both backends."""

    __slots__ = ()

    def seek(self, dewey: DeweyId) -> Optional[DeweyId]:
        """Smallest posting >= ``dewey``, or ``None``."""
        raise NotImplementedError

    def seek_floor(self, dewey: DeweyId) -> Optional[DeweyId]:
        """Largest posting <= ``dewey``, or ``None``."""
        raise NotImplementedError

    def insert(self, dewey: DeweyId) -> None:
        """Add one posting (idempotent)."""
        raise NotImplementedError

    def remove(self, dewey: DeweyId) -> bool:
        """Drop one posting; returns False if absent."""
        raise NotImplementedError

    def first(self) -> Optional[DeweyId]:
        raise NotImplementedError

    def last(self) -> Optional[DeweyId]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[DeweyId]:
        raise NotImplementedError

    def __contains__(self, dewey: DeweyId) -> bool:
        return self.seek(dewey) == dewey

    def memory_bytes(self) -> int:
        """Approximate resident bytes of this list's postings storage."""
        raise NotImplementedError


class ArrayPostingList(PostingList):
    """Sorted-array backend: most compact, binary-search navigation."""

    __slots__ = ("_postings",)

    def __init__(self, postings: Iterable[DeweyId] = ()):
        self._postings = sorted(set(postings))

    @classmethod
    def from_sorted(cls, postings: list[DeweyId]) -> "ArrayPostingList":
        """Adopt an already strictly-sorted list without copying or checking."""
        instance = cls.__new__(cls)
        instance._postings = postings
        return instance

    def seek(self, dewey: DeweyId) -> Optional[DeweyId]:
        index = bisect.bisect_left(self._postings, dewey)
        if index == len(self._postings):
            return None
        return self._postings[index]

    def seek_floor(self, dewey: DeweyId) -> Optional[DeweyId]:
        index = bisect.bisect_right(self._postings, dewey) - 1
        if index < 0:
            return None
        return self._postings[index]

    def insert(self, dewey: DeweyId) -> None:
        index = bisect.bisect_left(self._postings, dewey)
        if index < len(self._postings) and self._postings[index] == dewey:
            return
        self._postings.insert(index, dewey)

    def remove(self, dewey: DeweyId) -> bool:
        index = bisect.bisect_left(self._postings, dewey)
        if index < len(self._postings) and self._postings[index] == dewey:
            del self._postings[index]
            return True
        return False

    def first(self) -> Optional[DeweyId]:
        return self._postings[0] if self._postings else None

    def last(self) -> Optional[DeweyId]:
        return self._postings[-1] if self._postings else None

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[DeweyId]:
        return iter(self._postings)

    def memory_bytes(self) -> int:
        # The list object (with its pointer slots) plus one tuple per
        # posting; component ints are mostly shared small-int singletons.
        return sys.getsizeof(self._postings) + sum(
            sys.getsizeof(posting) for posting in self._postings
        )

    def __repr__(self) -> str:
        return f"ArrayPostingList({len(self._postings)} postings)"


class BTreePostingList(PostingList):
    """B+-tree backend: logarithmic inserts, the paper's skip structure."""

    __slots__ = ("_tree",)

    def __init__(self, postings: Iterable[DeweyId] = (), order: int = 64):
        unique = sorted(set(postings))
        self._tree = BPlusTree.from_sorted([(p, None) for p in unique], order=order)

    def seek(self, dewey: DeweyId) -> Optional[DeweyId]:
        entry = self._tree.ceiling(dewey)
        return entry[0] if entry is not None else None

    def seek_floor(self, dewey: DeweyId) -> Optional[DeweyId]:
        entry = self._tree.floor(dewey)
        return entry[0] if entry is not None else None

    def insert(self, dewey: DeweyId) -> None:
        self._tree.insert(dewey, None)

    def remove(self, dewey: DeweyId) -> bool:
        return self._tree.delete(dewey)

    def first(self) -> Optional[DeweyId]:
        entry = self._tree.first()
        return entry[0] if entry is not None else None

    def last(self) -> Optional[DeweyId]:
        entry = self._tree.last()
        return entry[0] if entry is not None else None

    def __len__(self) -> int:
        return len(self._tree)

    def __iter__(self) -> Iterator[DeweyId]:
        return self._tree.keys()

    def memory_bytes(self) -> int:
        return self._tree.memory_bytes()

    def __repr__(self) -> str:
        return f"BTreePostingList({len(self._tree)} postings)"


def make_posting_list(
    postings: Iterable[DeweyId],
    backend: str = ARRAY_BACKEND,
    depth: Optional[int] = None,
) -> PostingList:
    """Factory used by the inverted index builder.

    ``depth`` (the diversity ordering's attribute count) is required by the
    compressed backend when ``postings`` may be empty — packed buffers need
    a fixed Dewey depth up front; the other backends ignore it.
    """
    if backend == ARRAY_BACKEND:
        return ArrayPostingList(postings)
    if backend == BPTREE_BACKEND:
        return BTreePostingList(postings)
    if backend == COMPRESSED_BACKEND:
        # Imported lazily: repro.index.compressed subclasses PostingList.
        from .compressed import CompressedPostingList

        return CompressedPostingList(postings, depth=depth)
    raise ValueError(f"unknown posting-list backend {backend!r}")
