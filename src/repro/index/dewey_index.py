"""Dewey ID assignment for a relation under a diversity ordering.

This is the paper's "index generation module which generates an in-memory
Dewey tree which stores the Dewey of each tuple in the base table"
(Section V-A).  Each tuple's Dewey ID has one component per ordering
attribute (its sibling number among values sharing the same prefix,
Figure 2) plus a final uniqueness component so that tuples with identical
attribute values still receive distinct IDs.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from ..core.dewey import DeweyId
from ..core.ordering import DiversityOrdering
from ..storage.relation import Relation
from .dictionary import SiblingDictionary


class DeweyAssignmentError(ValueError):
    """A forced Dewey assignment conflicts with the existing tree state."""


class DeweyIndex:
    """Bidirectional rid <-> Dewey ID mapping for one relation."""

    __slots__ = (
        "_relation",
        "_ordering",
        "_positions",
        "_dictionary",
        "_uniqueness",
        "_dewey_by_rid",
        "_rid_by_dewey",
    )

    def __init__(self, relation: Relation, ordering: DiversityOrdering):
        ordering.validate_against(relation.schema)
        self._relation = relation
        self._ordering = ordering
        self._positions = [
            relation.schema.position(name) for name in ordering.attributes
        ]
        self._dictionary = SiblingDictionary()
        self._uniqueness: dict[tuple, int] = {}
        self._dewey_by_rid: dict[int, DeweyId] = {}
        self._rid_by_dewey: dict[DeweyId, int] = {}

    @classmethod
    def build(cls, relation: Relation, ordering: DiversityOrdering) -> "DeweyIndex":
        """Offline bulk build: sibling numbers follow sorted value order."""
        index = cls(relation, ordering)
        keyed = sorted(
            (rid for rid, _ in relation.iter_live()),
            key=lambda rid: tuple(
                _sort_key(relation[rid][p]) for p in index._positions
            ),
        )
        for rid in keyed:
            index.add(rid)
        return index

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def ordering(self) -> DiversityOrdering:
        return self._ordering

    @property
    def depth(self) -> int:
        """Dewey depth (#ordering attributes + 1 uniqueness level)."""
        return self._ordering.depth

    def __len__(self) -> int:
        return len(self._dewey_by_rid)

    def __contains__(self, rid: int) -> bool:
        return rid in self._dewey_by_rid

    def add(self, rid: int) -> DeweyId:
        """Assign (or return the existing) Dewey ID for row ``rid``.

        Incremental: values unseen under their prefix get the next sibling
        number, exactly as an online listings feed would be indexed.
        """
        existing = self._dewey_by_rid.get(rid)
        if existing is not None:
            return existing
        row = self._relation[rid]
        encode = self._dictionary.encode
        components: list[int] = []
        for position in self._positions:
            components.append(encode(tuple(components), row[position]))
        prefix = tuple(components)
        ordinal = self._uniqueness.get(prefix, 0)
        self._uniqueness[prefix] = ordinal + 1
        components.append(ordinal)
        dewey = tuple(components)
        self._dewey_by_rid[rid] = dewey
        self._rid_by_dewey[dewey] = rid
        return dewey

    def peek(self, rid: int) -> DeweyId:
        """The Dewey ID :meth:`add` *would* assign to ``rid``, without
        assigning it.

        This is the write-ahead hook: the durability layer logs the
        predicted assignment before any in-memory structure mutates, then
        applies it — :meth:`add` is deterministic given the current
        dictionary and uniqueness state, so the prediction is exact.
        """
        existing = self._dewey_by_rid.get(rid)
        if existing is not None:
            return existing
        row = self._relation[rid]
        lookup = self._dictionary.lookup
        components: list[int] = []
        for position in self._positions:
            prefix = tuple(components)
            number = lookup(prefix, row[position])
            if number is None:
                number = self._dictionary.next_number(prefix)
            components.append(number)
        prefix = tuple(components)
        components.append(self._uniqueness.get(prefix, 0))
        return tuple(components)

    def force(self, rid: int, dewey: DeweyId) -> DeweyId:
        """Adopt a persisted assignment ``rid -> dewey`` exactly.

        The restore path (snapshot load, WAL replay): sibling-dictionary
        entries and uniqueness counters are reconstructed from the recorded
        components instead of allocated.  Inconsistencies — wrong depth,
        duplicate IDs, a value mapping to two components under one prefix —
        raise :class:`DeweyAssignmentError`.
        """
        dewey = tuple(int(component) for component in dewey)
        if len(dewey) != self.depth:
            raise DeweyAssignmentError(
                f"Dewey {dewey} has depth {len(dewey)}, expected {self.depth}"
            )
        existing = self._dewey_by_rid.get(rid)
        if existing is not None:
            if existing != dewey:
                raise DeweyAssignmentError(
                    f"rid {rid} already assigned {existing}, cannot force {dewey}"
                )
            return dewey
        if dewey in self._rid_by_dewey:
            raise DeweyAssignmentError(f"duplicate Dewey ID {dewey}")
        row = self._relation[rid]
        prefix: tuple = ()
        for position, component in zip(self._positions, dewey):
            value = row[position]
            known = self._dictionary.lookup(prefix, value)
            if known is None:
                try:
                    self._dictionary.force(prefix, value, component)
                except ValueError as error:
                    raise DeweyAssignmentError(str(error)) from None
            elif known != component:
                raise DeweyAssignmentError(
                    f"value {value!r} maps to both {known} and {component} "
                    f"under prefix {prefix}"
                )
            prefix = prefix + (component,)
        self._dewey_by_rid[rid] = dewey
        self._rid_by_dewey[dewey] = rid
        stem = dewey[:-1]
        current = self._uniqueness.get(stem, 0)
        self._uniqueness[stem] = max(current, dewey[-1] + 1)
        return dewey

    def remove(self, rid: int) -> Optional[DeweyId]:
        """Forget row ``rid``'s Dewey ID (tombstoned listing); returns it.

        Sibling dictionary entries are retained — re-inserting the same
        values later reuses the same components, keeping old snapshots and
        logs meaningful.
        """
        dewey = self._dewey_by_rid.pop(rid, None)
        if dewey is not None:
            del self._rid_by_dewey[dewey]
        return dewey

    def dewey_of(self, rid: int) -> DeweyId:
        try:
            return self._dewey_by_rid[rid]
        except KeyError:
            raise KeyError(f"rid {rid} not indexed") from None

    def rid_of(self, dewey: DeweyId) -> int:
        try:
            return self._rid_by_dewey[dewey]
        except KeyError:
            raise KeyError(f"no tuple with Dewey ID {dewey}") from None

    def rids_of(self, deweys: Iterable[DeweyId]) -> list[int]:
        return [self.rid_of(dewey) for dewey in deweys]

    def all_deweys(self) -> list[DeweyId]:
        """All assigned Dewey IDs in document order."""
        return sorted(self._rid_by_dewey)

    def iter_rids(self) -> Iterator[int]:
        return iter(self._dewey_by_rid)

    def component_of(self, attribute: str, prefix_values: tuple, value: Any) -> Optional[int]:
        """Sibling number of ``value`` for ``attribute`` under the given
        *value* prefix (values of all higher-priority attributes), or ``None``
        if that value never occurred there.  Mostly a testing/debugging aid.
        """
        level = self._ordering.level_of(attribute)
        if len(prefix_values) != level - 1:
            raise ValueError(
                f"attribute {attribute!r} is at level {level}; expected "
                f"{level - 1} prefix values, got {len(prefix_values)}"
            )
        prefix: tuple = ()
        for depth, prefix_value in enumerate(prefix_values):
            number = self._dictionary.lookup(prefix, prefix_value)
            if number is None:
                return None
            prefix = prefix + (number,)
        return self._dictionary.lookup(prefix, value)

    def values_of(self, dewey: DeweyId) -> tuple:
        """Decode a Dewey ID back to its ordering-attribute values."""
        values = []
        prefix: tuple = ()
        for component in dewey[: len(self._positions)]:
            values.append(self._dictionary.decode(prefix, component))
            prefix = prefix + (component,)
        return tuple(values)

    def fanout(self, prefix: tuple) -> int:
        """Number of distinct children under a Dewey *component* prefix."""
        return self._dictionary.fanout(prefix)


def _sort_key(value: Any) -> tuple:
    """Type-tagged sort key so mixed int/str columns never raise."""
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))
