"""The Dewey-keyed inverted index (Section III-A).

One posting list per distinct ``(attribute, value)`` pair (scalar
predicates), one per ``(attribute, token)`` pair of TEXT attributes (keyword
predicates), plus the full document-order list (for predicate-free queries).
Posting lists hold Dewey IDs, so every list is sorted in diversity-tree
document order and supports bidirectional skip navigation.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..core.dewey import DeweyId
from ..core.ordering import DiversityOrdering
from ..storage.relation import Relation
from ..storage.schema import AttributeKind
from .dewey_index import DeweyIndex
from .postings import (
    ARRAY_BACKEND,
    ArrayPostingList,
    BACKENDS,
    PostingList,
    make_posting_list,
)
from .tokenize import token_set

_EMPTY = ArrayPostingList()


class InvertedIndex:
    """Dewey index + posting lists for one relation."""

    __slots__ = (
        "_relation",
        "_ordering",
        "_backend",
        "_dewey",
        "_scalar",
        "_token",
        "_all",
        "_text_attributes",
        "_epoch",
        "__weakref__",  # metrics collectors hold the index weakly
    )

    def __init__(
        self,
        relation: Relation,
        ordering: DiversityOrdering,
        backend: str = ARRAY_BACKEND,
        dewey: Optional[DeweyIndex] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        self._relation = relation
        self._ordering = ordering
        self._backend = backend
        # ``dewey`` lets several indexes share one Dewey assignment: a
        # sharded deployment keeps a single global DeweyIndex so that every
        # shard speaks the same Dewey coordinates (see repro.sharding).
        self._dewey = dewey if dewey is not None else DeweyIndex(relation, ordering)
        self._scalar: dict[tuple[str, Any], PostingList] = {}
        self._token: dict[tuple[str, str], PostingList] = {}
        self._all: PostingList = make_posting_list((), backend, depth=ordering.depth)
        self._text_attributes = tuple(
            attribute.name
            for attribute in relation.schema
            if attribute.kind is AttributeKind.TEXT
        )
        self._epoch = 0

    @classmethod
    def build(
        cls,
        relation: Relation,
        ordering: DiversityOrdering,
        backend: str = ARRAY_BACKEND,
        dewey: Optional[DeweyIndex] = None,
        rids: Optional[Iterable[int]] = None,
    ) -> "InvertedIndex":
        """Offline index generation (the paper's build module, Section V-A).

        ``dewey`` adopts an existing (shared) Dewey assignment instead of
        building a fresh one; ``rids`` restricts the posting lists to a
        subset of rows — together they let :class:`repro.sharding.ShardedIndex`
        build per-shard indexes that all live in one global Dewey space.
        """
        index = cls(relation, ordering, backend=backend, dewey=dewey)
        if dewey is None:
            index._dewey = DeweyIndex.build(relation, ordering)
        keep = None if rids is None else set(rids)
        scalar_acc: dict[tuple[str, Any], list[DeweyId]] = {}
        token_acc: dict[tuple[str, str], list[DeweyId]] = {}
        everything: list[DeweyId] = []
        names = relation.schema.names
        for dewey_id in index._dewey.all_deweys():
            rid = index._dewey.rid_of(dewey_id)
            if keep is not None and rid not in keep:
                continue
            row = relation[rid]
            everything.append(dewey_id)
            for name, value in zip(names, row):
                scalar_acc.setdefault((name, value), []).append(dewey_id)
            for name in index._text_attributes:
                text = relation.value(rid, name)
                for token in token_set(text):
                    token_acc.setdefault((name, token), []).append(dewey_id)
        # The accumulators were filled in Dewey order, so lists are sorted.
        depth = ordering.depth
        index._scalar = {
            key: make_posting_list(postings, backend, depth=depth)
            for key, postings in scalar_acc.items()
        }
        index._token = {
            key: make_posting_list(postings, backend, depth=depth)
            for key, postings in token_acc.items()
        }
        index._all = make_posting_list(everything, backend, depth=depth)
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def ordering(self) -> DiversityOrdering:
        return self._ordering

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def dewey(self) -> DeweyIndex:
        return self._dewey

    @property
    def depth(self) -> int:
        return self._ordering.depth

    @property
    def epoch(self) -> int:
        """Mutation epoch: bumped by every successful :meth:`insert` /
        :meth:`remove`.  Caches key their entries by this counter so stale
        results can be rejected lazily instead of flushing eagerly."""
        return self._epoch

    def __len__(self) -> int:
        return len(self._all)

    def __repr__(self) -> str:
        return (
            f"InvertedIndex({self._relation.name!r}, {len(self._all)} tuples, "
            f"{len(self._scalar)} value lists, {len(self._token)} token lists, "
            f"backend={self._backend!r})"
        )

    # ------------------------------------------------------------------
    # Posting-list lookup
    # ------------------------------------------------------------------
    def scalar_postings(self, attribute: str, value: Any) -> PostingList:
        """Postings of ``attribute = value`` (empty list if unseen)."""
        self._relation.validate_attribute(attribute)
        return self._scalar.get((attribute, value), _EMPTY)

    def token_postings(self, attribute: str, token: str) -> PostingList:
        """Postings of one keyword token in a TEXT attribute."""
        self._relation.validate_attribute(attribute)
        if attribute not in self._text_attributes:
            raise ValueError(
                f"attribute {attribute!r} is not TEXT; keyword predicates "
                f"need a TEXT attribute"
            )
        return self._token.get((attribute, token.lower()), _EMPTY)

    def all_postings(self) -> PostingList:
        """Every indexed Dewey ID, in document order."""
        return self._all

    def vocabulary(self, attribute: str) -> list[Any]:
        """Distinct indexed values of ``attribute`` (arbitrary order)."""
        return [value for (name, value) in self._scalar if name == attribute]

    def posting_lists(self) -> Iterable[PostingList]:
        """Every posting list in the index (the full-document list, every
        scalar-value list, every token list)."""
        yield self._all
        yield from self._scalar.values()
        yield from self._token.values()

    def memory_stats(self) -> dict:
        """Aggregate resident-memory accounting over all posting lists.

        Postings are counted with multiplicity (a row appears once per
        list containing it), matching what the buffers actually store.
        """
        lists = 0
        postings = 0
        total_bytes = 0
        for posting_list in self.posting_lists():
            lists += 1
            postings += len(posting_list)
            total_bytes += posting_list.memory_bytes()
        return {
            "backend": self._backend,
            "lists": lists,
            "postings": postings,
            "bytes": total_bytes,
            "bytes_per_posting": (total_bytes / postings) if postings else 0.0,
        }

    # ------------------------------------------------------------------
    # Restore hooks (snapshot load / WAL replay)
    # ------------------------------------------------------------------
    def restore_epoch(self, epoch: int) -> None:
        """Adopt a persisted mutation epoch.

        Recovery must land the index on the *same* epoch the crashed
        process had, or every serving-cache entry computed before the
        restart would be wrongly invalidated (or, worse, wrongly kept).
        """
        if epoch < self._epoch:
            raise ValueError(
                f"cannot move epoch backwards ({self._epoch} -> {epoch})"
            )
        self._epoch = epoch

    def restore_posting_lists(
        self,
        all_postings: PostingList,
        scalar: dict,
        token: dict,
    ) -> None:
        """Adopt fully-built posting lists (snapshot packed fast path).

        Snapshots of the compressed backend persist the delta-encoded
        buffers directly; restore decodes each buffer once and hands the
        finished lists here, skipping the per-row
        :meth:`index_restored_row` loop entirely.  The Dewey assignment
        must already be restored — the adopted lists are cross-checked
        against it.
        """
        expected = len(self._dewey)
        if len(all_postings) != expected:
            raise ValueError(
                f"adopted posting lists cover {len(all_postings)} rows, "
                f"Dewey index has {expected}"
            )
        self._all = all_postings
        self._scalar = dict(scalar)
        self._token = dict(token)

    def index_restored_row(self, rid: int) -> DeweyId:
        """Add one restored row to the posting lists.

        Unlike :meth:`insert`, the Dewey ID must already be force-assigned
        (see :meth:`DeweyIndex.force`) and the epoch is *not* bumped — the
        caller restores the persisted epoch separately.
        """
        dewey = self._dewey.dewey_of(rid)
        if dewey in self._all:
            return dewey
        row = self._relation[rid]
        self._all.insert(dewey)
        for name, value in zip(self._relation.schema.names, row):
            key = (name, value)
            postings = self._scalar.get(key)
            if postings is None:
                postings = make_posting_list(
                    (), self._backend, depth=self._ordering.depth
                )
                self._scalar[key] = postings
            postings.insert(dewey)
        for name in self._text_attributes:
            for token in token_set(self._relation.value(rid, name)):
                key = (name, token)
                postings = self._token.get(key)
                if postings is None:
                    postings = make_posting_list(
                        (), self._backend, depth=self._ordering.depth
                    )
                    self._token[key] = postings
                postings.insert(dewey)
        return dewey

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def remove(self, rid: int) -> Optional[DeweyId]:
        """Unindex one row (a sold/expired listing); returns its Dewey ID.

        The caller is responsible for tombstoning the relation row (see
        :meth:`DiversityEngine.delete`); this removes the Dewey ID from
        every posting list so queries stop returning it immediately.
        """
        if rid not in self._dewey:
            return None
        dewey = self._dewey.dewey_of(rid)
        row = self._relation[rid]
        self._all.remove(dewey)
        for name, value in zip(self._relation.schema.names, row):
            postings = self._scalar.get((name, value))
            if postings is not None:
                postings.remove(dewey)
        for name in self._text_attributes:
            for token in token_set(self._relation.value(rid, name)):
                postings = self._token.get((name, token))
                if postings is not None:
                    postings.remove(dewey)
        self._dewey.remove(rid)
        self._epoch += 1
        return dewey

    def remove_mirrored(self, rid: int, dewey: DeweyId) -> DeweyId:
        """Replica-side removal: drop ``dewey`` from this copy's posting
        lists and bump the epoch, leaving the (shared) Dewey assignment
        alone.  In a replicated shard the primary's :meth:`remove` retires
        the global assignment exactly once; the follower copies — which
        share that assignment — mirror only the posting-list effect here,
        so every replica lands on the same epoch and content.
        """
        row = self._relation[rid]
        self._all.remove(dewey)
        for name, value in zip(self._relation.schema.names, row):
            postings = self._scalar.get((name, value))
            if postings is not None:
                postings.remove(dewey)
        for name in self._text_attributes:
            for token in token_set(self._relation.value(rid, name)):
                postings = self._token.get((name, token))
                if postings is not None:
                    postings.remove(dewey)
        self._epoch += 1
        return dewey

    def insert(self, rid: int) -> DeweyId:
        """Index one new row of the underlying relation."""
        dewey = self._dewey.add(rid)
        if dewey in self._all:
            return dewey
        self.index_restored_row(rid)
        self._epoch += 1
        return dewey
