"""Per-level sibling dictionaries for Dewey assignment.

Figure 2 of the paper assigns "a distinct integer identifier to each value in
an attribute", re-initialising the numbering at 0 for each parent: the Dewey
component of a value is its sibling number *within its prefix*.  A
:class:`SiblingDictionary` owns that mapping for one tree: for every prefix
(a tuple of parent components) it maps child values to dense ints and back.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional


class SiblingDictionary:
    """value <-> sibling-number maps, keyed by parent Dewey prefix."""

    __slots__ = ("_forward", "_reverse")

    def __init__(self):
        self._forward: dict[tuple, dict[Hashable, int]] = {}
        self._reverse: dict[tuple, list[Hashable]] = {}

    def encode(self, prefix: tuple, value: Hashable) -> int:
        """Sibling number of ``value`` under ``prefix``, allocating if new."""
        children = self._forward.get(prefix)
        if children is None:
            children = {}
            self._forward[prefix] = children
            self._reverse[prefix] = []
        number = children.get(value)
        if number is None:
            number = len(children)
            children[value] = number
            self._reverse[prefix].append(value)
        return number

    def lookup(self, prefix: tuple, value: Hashable) -> Optional[int]:
        """Sibling number of ``value`` under ``prefix`` or ``None`` if unseen."""
        children = self._forward.get(prefix)
        if children is None:
            return None
        return children.get(value)

    def decode(self, prefix: tuple, number: int) -> Any:
        """The value with sibling ``number`` under ``prefix``."""
        values = self._reverse.get(prefix)
        if values is None or not 0 <= number < len(values):
            raise KeyError(f"no sibling {number} under prefix {prefix}")
        return values[number]

    def fanout(self, prefix: tuple) -> int:
        """Number of distinct children observed under ``prefix``."""
        children = self._forward.get(prefix)
        return len(children) if children is not None else 0

    def prefixes(self) -> list[tuple]:
        """All parent prefixes observed so far."""
        return list(self._forward)
