"""Per-level sibling dictionaries for Dewey assignment.

Figure 2 of the paper assigns "a distinct integer identifier to each value in
an attribute", re-initialising the numbering at 0 for each parent: the Dewey
component of a value is its sibling number *within its prefix*.  A
:class:`SiblingDictionary` owns that mapping for one tree: for every prefix
(a tuple of parent components) it maps child values to dense ints and back.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional


class SiblingDictionary:
    """value <-> sibling-number maps, keyed by parent Dewey prefix."""

    __slots__ = ("_forward", "_reverse")

    def __init__(self):
        self._forward: dict[tuple, dict[Hashable, int]] = {}
        self._reverse: dict[tuple, list[Hashable]] = {}

    def encode(self, prefix: tuple, value: Hashable) -> int:
        """Sibling number of ``value`` under ``prefix``, allocating if new.

        New numbers come from the *reverse* table length, not the forward
        count: a restored dictionary (snapshot load, WAL replay) may hold
        gaps where a deleted row's value was forgotten, and those sibling
        numbers must never be reissued to a different value.
        """
        children = self._forward.get(prefix)
        if children is None:
            children = {}
            self._forward[prefix] = children
            self._reverse[prefix] = []
        number = children.get(value)
        if number is None:
            number = len(self._reverse[prefix])
            children[value] = number
            self._reverse[prefix].append(value)
        return number

    def lookup(self, prefix: tuple, value: Hashable) -> Optional[int]:
        """Sibling number of ``value`` under ``prefix`` or ``None`` if unseen."""
        children = self._forward.get(prefix)
        if children is None:
            return None
        return children.get(value)

    def decode(self, prefix: tuple, number: int) -> Any:
        """The value with sibling ``number`` under ``prefix``."""
        values = self._reverse.get(prefix)
        if values is None or not 0 <= number < len(values):
            raise KeyError(f"no sibling {number} under prefix {prefix}")
        return values[number]

    def force(self, prefix: tuple, value: Hashable, number: int) -> None:
        """Register ``value -> number`` under ``prefix`` exactly (restore path).

        Used when replaying a persisted assignment (snapshot restore, WAL
        replay): the component is dictated by the record, not allocated.
        The reverse table is kept dense — gaps are filled with placeholders
        and overwritten as their real values arrive.  Conflicts (the slot
        already holds a different value) raise ``ValueError``.
        """
        forward = self._forward.setdefault(prefix, {})
        reverse = self._reverse.setdefault(prefix, [])
        while len(reverse) <= number:
            reverse.append(None)
        if reverse[number] is not None and reverse[number] != value:
            raise ValueError(
                f"sibling {number} under prefix {prefix} assigned to both "
                f"{reverse[number]!r} and {value!r}"
            )
        forward[value] = number
        reverse[number] = value

    def next_number(self, prefix: tuple) -> int:
        """The sibling number :meth:`encode` would allocate to a new value."""
        values = self._reverse.get(prefix)
        return len(values) if values is not None else 0

    def fanout(self, prefix: tuple) -> int:
        """Number of distinct children observed under ``prefix``."""
        children = self._forward.get(prefix)
        return len(children) if children is not None else 0

    def prefixes(self) -> list[tuple]:
        """All parent prefixes observed so far."""
        return list(self._forward)
