"""WAND: two-level top-k retrieval over weighted posting lists.

Broder et al.'s WAND algorithm (CIKM 2003, reference [1] of the paper) finds
the k highest-scoring matches of a weighted disjunction without scanning
every posting: lists are kept sorted by their current position, and the
*pivot* — the first list at which the cumulative score upper bound reaches
the current threshold — lower-bounds the next document that could possibly
enter the top-k, so everything before it is skipped.

The paper uses WAND both as the ``SBasic`` baseline engine and as the
bootstrap phase of the scored probing algorithm (Algorithm 4, line 1).

Scores here follow the engine's model: ``score(t) = sum of weights of the
query leaves containing t``; each leaf cursor's upper bound is its weight.
Boolean filtering (tuples must also *match* the query, e.g. satisfy a
conjunction) is applied on top of the candidate stream.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..core.dewey import LEFT, DeweyId, successor
from .merged import Cursor, MergedList


class _ListState:
    """One posting cursor with its weight and current position."""

    __slots__ = ("cursor", "weight", "position")

    def __init__(self, cursor: Cursor, weight: float, position: Optional[DeweyId]):
        self.cursor = cursor
        self.weight = weight
        self.position = position


def wand_topk(merged: MergedList, k: int) -> List[Tuple[DeweyId, float]]:
    """Top-k ``(dewey, score)`` of ``merged``'s query, best score first.

    Ties at the threshold are broken toward smaller Dewey IDs (the ones WAND
    encounters first).  Returns fewer than k pairs when the query has fewer
    matches.  Exact: verified against exhaustive scoring in the tests.
    """
    if k <= 0:
        return []
    depth = merged.depth
    start = (0,) * depth
    states = [
        _ListState(cursor, weight, cursor.next(start, LEFT))
        for cursor, weight in merged.weighted_leaves()
        if weight > 0.0
    ]
    # Min-heap of the current top-k as (score, negated-dewey, dewey): among
    # score ties the heap minimum is the *largest* Dewey ID, so evictions
    # keep the first-encountered (smallest) IDs — matching the oracle.
    heap: List[Tuple[float, DeweyId, DeweyId]] = []
    while True:
        states = [s for s in states if s.position is not None]
        if not states:
            break
        states.sort(key=lambda s: s.position)
        threshold = heap[0][0] if len(heap) == k else float("-inf")
        pivot_index = None
        accumulated = 0.0
        for index, state in enumerate(states):
            accumulated += state.weight
            if accumulated > threshold:
                pivot_index = index
                break
        if pivot_index is None:
            # No remaining document can beat the threshold: done.
            break
        pivot_id = states[pivot_index].position
        if states[0].position == pivot_id:
            # Fully evaluate the pivot document (boolean match + exact score).
            if merged.contains(pivot_id):
                score = merged.score(pivot_id)
                _offer(heap, k, score, pivot_id)
            bound = successor(pivot_id)
            for state in states:
                if state.position is not None and state.position <= pivot_id:
                    state.position = state.cursor.next(bound, LEFT)
        else:
            # Advance the lagging lists up to the pivot.
            for state in states:
                if state.position is None or state.position >= pivot_id:
                    break
                state.position = state.cursor.next(pivot_id, LEFT)
    return sorted(
        ((d, s) for s, _, d in heap), key=lambda pair: (-pair[1], pair[0])
    )


def _offer(
    heap: List[Tuple[float, DeweyId, DeweyId]], k: int, score: float, dewey: DeweyId
) -> None:
    """Keep the k best (score, dewey) pairs, smaller IDs winning ties."""
    entry = (score, tuple(-component for component in dewey), dewey)
    if len(heap) < k:
        heapq.heappush(heap, entry)
    elif entry > heap[0]:
        heapq.heapreplace(heap, entry)
