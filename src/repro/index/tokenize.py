"""Tokenisation for keyword predicates (``att CONTAINS keywords``).

The paper's keyword predicates match descriptions like ``'Low miles'``; we
use a deliberately simple, deterministic tokenizer: lowercase, alphanumeric
runs, no stemming.  Both the indexer and the query side must use the same
function, so it lives here.
"""

from __future__ import annotations

import re
from typing import Iterator

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokens(text: str) -> Iterator[str]:
    """Yield normalised tokens of ``text`` in order (duplicates preserved)."""
    yield from _TOKEN_PATTERN.findall(str(text).lower())


def token_set(text: str) -> frozenset[str]:
    """The distinct tokens of ``text``."""
    return frozenset(tokens(text))


def contains_all(text: str, keywords: str) -> bool:
    """Keyword-containment semantics: every token of ``keywords`` occurs in
    ``text``.  This is the reference predicate the index must agree with."""
    have = token_set(text)
    return all(token in have for token in tokens(keywords))
