"""A B+-tree keyed by arbitrary comparable keys (we use Dewey ID tuples).

Section III of the paper relies on "B+-trees to skip over similar answers":
posting lists must support jumping to the smallest entry >= some Dewey ID
(and, for the bidirectional probing algorithm, the largest entry <= some
Dewey ID).  This module provides that substrate: a classic main-memory
B+-tree with doubly linked leaves, ``ceiling``/``floor`` search, range scans
and bulk loading.

The tree maps keys to values; posting lists store ``key = Dewey ID`` and
``value = rid`` (plus an optional score payload at higher layers).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional, Tuple

DEFAULT_ORDER = 32


class _Node:
    __slots__ = ("keys",)

    def __init__(self):
        self.keys: list = []


class _Leaf(_Node):
    __slots__ = ("values", "next", "prev")

    def __init__(self):
        super().__init__()
        self.values: list = []
        self.next: Optional[_Leaf] = None
        self.prev: Optional[_Leaf] = None


class _Internal(_Node):
    """Internal node: ``children[i]`` holds keys < ``keys[i]``; the last child
    holds keys >= ``keys[-1]``.  (Standard right-biased separators.)"""

    __slots__ = ("children",)

    def __init__(self):
        super().__init__()
        self.children: list[_Node] = []


class BPlusTree:
    """Sorted key/value map with B+-tree complexity guarantees.

    ``order`` is the maximum number of keys in a node; nodes split at
    ``order`` keys and (on delete) merge below ``order // 2``.
    """

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 3:
            raise ValueError("B+-tree order must be at least 3")
        self._order = order
        self._root: _Node = _Leaf()
        self._size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sorted(
        cls, pairs: list[Tuple[Any, Any]], order: int = DEFAULT_ORDER
    ) -> "BPlusTree":
        """Bulk-load from key-sorted, duplicate-free ``(key, value)`` pairs.

        Builds packed leaves bottom-up; much faster than repeated inserts for
        offline index generation (the paper's index build, Section V-A).
        """
        tree = cls(order=order)
        if not pairs:
            return tree
        for i in range(1, len(pairs)):
            if not pairs[i - 1][0] < pairs[i][0]:
                raise ValueError("from_sorted requires strictly increasing keys")
        fill = max(2, (order * 2) // 3)
        leaves: list[_Leaf] = []
        for start in range(0, len(pairs), fill):
            leaf = _Leaf()
            chunk = pairs[start : start + fill]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
                leaf.prev = leaves[-1]
            leaves.append(leaf)
        # Avoid an under-full final leaf (steal from its left sibling).
        if len(leaves) > 1 and len(leaves[-1].keys) < 2:
            prev, last = leaves[-2], leaves[-1]
            move = 1
            last.keys[:0] = prev.keys[-move:]
            last.values[:0] = prev.values[-move:]
            del prev.keys[-move:], prev.values[-move:]
        level: list[_Node] = list(leaves)
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), fill):
                group = level[start : start + fill]
                if len(group) == 1 and parents:
                    # Fold a lone trailing child into the previous parent.
                    parent = parents[-1]
                    parent.keys.append(_smallest_key(group[0]))
                    parent.children.append(group[0])
                    continue
                parent = _Internal()
                parent.children = group
                parent.keys = [_smallest_key(child) for child in group[1:]]
                parents.append(parent)
            level = parents
        tree._root = level[0]
        tree._size = len(pairs)
        return tree

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def __repr__(self) -> str:
        return f"BPlusTree(order={self._order}, size={self._size})"

    @property
    def order(self) -> int:
        return self._order

    def height(self) -> int:
        """Number of levels (1 for a lone leaf)."""
        node, levels = self._root, 1
        while isinstance(node, _Internal):
            node = node.children[0]
            levels += 1
        return levels

    def memory_bytes(self) -> int:
        """Resident bytes of the tree structure and its key objects.

        Counts every node object, its key/value/children lists, and the key
        payloads (value payloads are shared or ``None`` in posting-list use,
        so only a pointer slot is charged for them).
        """
        import sys

        total = sys.getsizeof(self)
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            total += sys.getsizeof(node) + sys.getsizeof(node.keys)
            total += sum(sys.getsizeof(key) for key in node.keys)
            if isinstance(node, _Internal):
                total += sys.getsizeof(node.children)
                stack.extend(node.children)
            else:
                total += sys.getsizeof(node.values)
        return total

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            root = _Internal()
            root.keys = [separator]
            root.children = [self._root, right]
            self._root = root

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns False if it was absent.

        Uses lazy deletion structure-wise: entries are removed from leaves
        and under-full nodes are rebalanced with borrow/merge.
        """
        removed = self._delete(self._root, key)
        if removed:
            self._size -= 1
            if isinstance(self._root, _Internal) and len(self._root.children) == 1:
                self._root = self._root.children[0]
        return removed

    # ------------------------------------------------------------------
    # Navigation (the operations the paper's algorithms rely on)
    # ------------------------------------------------------------------
    def ceiling(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Smallest ``(key', value)`` with ``key' >= key``, else ``None``."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index == len(leaf.keys):
            leaf = leaf.next
            index = 0
        if leaf is None or index >= len(leaf.keys):
            return None
        return leaf.keys[index], leaf.values[index]

    def floor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Largest ``(key', value)`` with ``key' <= key``, else ``None``."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_right(leaf.keys, key) - 1
        if index < 0:
            leaf = leaf.prev
            if leaf is None:
                return None
            index = len(leaf.keys) - 1
        return leaf.keys[index], leaf.values[index]

    def first(self) -> Optional[Tuple[Any, Any]]:
        """Smallest entry, or ``None`` when empty."""
        if not self._size:
            return None
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node.keys[0], node.values[0]

    def last(self) -> Optional[Tuple[Any, Any]]:
        """Largest entry, or ``None`` when empty."""
        if not self._size:
            return None
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def items(
        self, low: Any = None, high: Any = None, reverse: bool = False
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high``."""
        if not self._size:
            return
        if not reverse:
            if low is None:
                node = self._root
                while isinstance(node, _Internal):
                    node = node.children[0]
                leaf, index = node, 0
            else:
                leaf = self._find_leaf(low)
                index = bisect.bisect_left(leaf.keys, low)
            while leaf is not None:
                while index < len(leaf.keys):
                    key = leaf.keys[index]
                    if high is not None and key > high:
                        return
                    yield key, leaf.values[index]
                    index += 1
                leaf, index = leaf.next, 0
        else:
            if high is None:
                node = self._root
                while isinstance(node, _Internal):
                    node = node.children[-1]
                leaf, index = node, len(node.keys) - 1
            else:
                leaf = self._find_leaf(high)
                index = bisect.bisect_right(leaf.keys, high) - 1
                if index < 0:
                    leaf = leaf.prev
                    index = len(leaf.keys) - 1 if leaf is not None else -1
            while leaf is not None:
                while index >= 0:
                    key = leaf.keys[index]
                    if low is not None and key < low:
                        return
                    yield key, leaf.values[index]
                    index -= 1
                leaf = leaf.prev
                index = len(leaf.keys) - 1 if leaf is not None else -1

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def _insert(self, node: _Node, key: Any, value: Any):
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._size += 1
            if len(node.keys) <= self._order:
                return None
            return self._split_leaf(node)
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) <= self._order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        del leaf.keys[middle:], leaf.values[middle:]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        del node.keys[middle:], node.children[middle + 1 :]
        return separator, right

    def _delete(self, node: _Node, key: Any) -> bool:
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            del node.keys[index], node.values[index]
            return True
        index = bisect.bisect_right(node.keys, key)
        child = node.children[index]
        removed = self._delete(child, key)
        if removed:
            self._rebalance(node, index)
        return removed

    def _rebalance(self, parent: _Internal, index: int) -> None:
        child = parent.children[index]
        minimum = max(1, self._order // 2)
        if len(child.keys) >= minimum:
            return
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None
        if isinstance(child, _Leaf):
            if left is not None and len(left.keys) > minimum:
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[index - 1] = child.keys[0]
            elif right is not None and len(right.keys) > minimum:
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[index] = right.keys[0]
            elif left is not None:
                left.keys.extend(child.keys)
                left.values.extend(child.values)
                left.next = child.next
                if child.next is not None:
                    child.next.prev = left
                del parent.children[index], parent.keys[index - 1]
            elif right is not None:
                child.keys.extend(right.keys)
                child.values.extend(right.values)
                child.next = right.next
                if right.next is not None:
                    right.next.prev = child
                del parent.children[index + 1], parent.keys[index]
        else:
            if left is not None and len(left.keys) > minimum:
                child.keys.insert(0, parent.keys[index - 1])
                parent.keys[index - 1] = left.keys.pop()
                child.children.insert(0, left.children.pop())
            elif right is not None and len(right.keys) > minimum:
                child.keys.append(parent.keys[index])
                parent.keys[index] = right.keys.pop(0)
                child.children.append(right.children.pop(0))
            elif left is not None:
                left.keys.append(parent.keys[index - 1])
                left.keys.extend(child.keys)
                left.children.extend(child.children)
                del parent.children[index], parent.keys[index - 1]
            elif right is not None:
                child.keys.append(parent.keys[index])
                child.keys.extend(right.keys)
                child.children.extend(right.children)
                del parent.children[index + 1], parent.keys[index]


def _smallest_key(node: _Node) -> Any:
    while isinstance(node, _Internal):
        node = node.children[0]
    return node.keys[0]


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()
