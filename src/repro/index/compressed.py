"""Compressed, array-backed posting lists (``backend="compressed"``).

The array and B+-tree backends spend ~90 bytes per posting on Python
object headers (one tuple per Dewey ID plus a pointer slot), which caps
in-memory indexes at a few thousand rows per benchmark.  This backend
stores postings in flat buffers with **no per-posting Python objects**:

* ``_data`` — the canonical compressed store: Dewey components
  delta-encoded against the previous posting (shared-prefix length, then
  the strictly-greater first divergent component as a delta, then the
  absolute remainder) as LEB128 varints in one ``bytes`` buffer.  The
  first posting of every :data:`BLOCK`-sized block is stored absolute, so
  any block decodes independently.
* ``_offsets`` — ``array("Q")`` of per-block byte offsets into ``_data``
  (random block access for iteration and integrity checks).
* ``_keys`` — the seek accelerator: every posting bit-packed into one
  integer using per-level field widths sized to the segment's largest
  component per level.  Packing is strictly order-preserving for
  equal-depth Dewey IDs, so ``seek``/``seek_floor`` are a **galloping**
  (exponential-then-binary) search over a flat ``array("Q")`` — or a
  plain list of ints when the packed width exceeds 64 bits.

Why delta-encoded Dewey *prefixes* are safe: Definitions 1–2 and the
2k+1 probe bound of Theorem 2 only ever compare Dewey IDs
lexicographically and ask for floor/ceiling neighbours.  Both the
prefix-delta stream and the fixed-width packing are monotone bijections
of the posting sequence — sibling order and subtree containment (shared
prefixes) survive encoding exactly, so every ``seek`` answer is
bit-identical to the array backend's.

Mutations go through a small uncompressed **tail** (sorted list of
inserted Dewey tuples) plus a **tombstone** set for postings removed from
the packed segment; when either outgrows the compaction threshold the
segment is rebuilt from the merged content.  Queries see the merge of
segment-minus-tombstones and tail, so interleaved insert/delete behaves
exactly like the uncompressed backends.

Seek bounds may carry the ``MAX_COMPONENT`` sentinel (region edges,
``nextId(…, RIGHT)``), which exceeds any packed field width; such
components *saturate* their field, and the search switches from
bisect-left to bisect-right semantics — see :func:`_compile_codecs`
for the order argument.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.dewey import DeweyId
from .postings import PostingList

#: Postings per independently-decodable block of the delta stream.
BLOCK = 64

#: Compaction fires when tail + tombstones exceed
#: ``max(MIN_COMPACTION, len(segment) >> COMPACTION_SHIFT)``.
MIN_COMPACTION = 32
COMPACTION_SHIFT = 3

#: Version tag of the packed wire format (snapshot serialisation).
PACKED_FORMAT = "repro-packed-postings"
PACKED_VERSION = 1

#: Widest bracket the Python gallop loop may open before handing the
#: rest of the array to C bisect (8 probes ≈ the loop's break-even).
_GALLOP_CAP = 8


# ----------------------------------------------------------------------
# LEB128 varints
# ----------------------------------------------------------------------
def _encode_varint(value: int, out: bytearray) -> None:
    """Append ``value`` (non-negative) to ``out`` as an LEB128 varint."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _decode_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one varint at ``pos``; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _compile_codecs(widths: Tuple[int, ...]):
    """Generate ``(pack_exact, decode_key, ceil_key, floor_key)``
    specialised to ``widths``.

    ``pack_exact(dewey)`` returns the packed key, or ``None`` when any
    component overflows its field (the id cannot be in the segment);
    ``decode_key(key)`` inverts it.  ``ceil_key``/``floor_key`` map an
    arbitrary seek bound to the ``upper_bound`` argument answering
    ``seek``/``seek_floor``, folding sentinel *saturation* into the same
    expression: when some component exceeds its field width (the
    ``MAX_COMPONENT`` region bounds the probing driver emits on nearly
    every call), every stored posting sharing the pre-overflow prefix is
    strictly smaller than the bound — its component at that level fits
    the field, the bound's does not — so the bound is equivalent to
    "just past the largest encodable id under that prefix": the
    overflowing and all later fields saturate to ones, and both seek
    flavours want bisect-right of that key.  Exact (in-range) bounds
    differ only in ``seek``, where bisect-left is ``upper_bound(key-1)``.

    All four are single generated expressions — seeks call one each, so
    avoiding a per-level Python loop roughly halves seek latency.
    """
    depth = len(widths)
    shifts = [sum(widths[level + 1 :]) for level in range(depth)]
    terms = []
    guards = []
    for level, (width, shift) in enumerate(zip(widths, shifts)):
        field = f"d[{level}]"
        terms.append(f"({field} << {shift})" if shift else field)
        guards.append(f"{field} < {1 << width}")
    pack = " | ".join(terms)
    guard = " and ".join(guards)
    pack_source = f"lambda d: ({pack}) if ({guard}) else None"
    parts = []
    for level, (width, shift) in enumerate(zip(widths, shifts)):
        if level == 0:
            parts.append(f"(k >> {shift})" if shift else "k")
        elif shift:
            parts.append(f"((k >> {shift}) & {(1 << width) - 1})")
        else:
            parts.append(f"(k & {(1 << width) - 1})")
    decode_source = f"lambda k: ({', '.join(parts)},)"

    def saturated(level: int) -> str:
        """Key for a bound overflowing at ``level``: packed prefix, ones after."""
        mask = (1 << sum(widths[level:])) - 1
        if level == 0:
            return str(mask)
        return f"(({' | '.join(terms[:level])}) | {mask})"

    # Ternary chain: exact pack when every field fits, else the first
    # overflowing level (scanned left to right) picks the saturated key.
    ceil = f"(({pack}) - 1) if ({guard})"
    floor = f"({pack}) if ({guard})"
    for level in range(depth - 1):
        branch = f" else {saturated(level)} if not ({guards[level]})"
        ceil += branch
        floor += branch
    ceil += f" else {saturated(depth - 1)}"
    floor += f" else {saturated(depth - 1)}"
    return (
        eval(pack_source),
        eval(decode_source),
        eval(f"lambda d: {ceil}"),
        eval(f"lambda d: {floor}"),
    )


# ----------------------------------------------------------------------
# The immutable packed segment
# ----------------------------------------------------------------------
class _Segment:
    """An immutable run of delta-encoded postings plus its key array."""

    __slots__ = (
        "depth",
        "count",
        "data",
        "offsets",
        "widths",
        "keys",
        "pack_exact",
        "decode_key",
        "ceil_key",
        "floor_key",
    )

    def __init__(
        self,
        depth: int,
        count: int,
        data: bytes,
        offsets: "array",
        widths: Tuple[int, ...],
        postings: Optional[Sequence[DeweyId]] = None,
    ):
        self.depth = depth
        self.count = count
        self.data = data
        self.offsets = offsets
        self.widths = widths
        # Pack/unpack run once per seek, so they are generated as single
        # expressions specialised to this segment's field widths (the
        # namedtuple technique) instead of a generic per-level loop.
        (
            self.pack_exact,
            self.decode_key,
            self.ceil_key,
            self.floor_key,
        ) = _compile_codecs(widths)
        pack = self.pack_exact
        source = postings if postings is not None else self
        packed = [pack(dewey) for dewey in source]
        self.keys = array("Q", packed) if sum(widths) <= 64 else packed

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, postings: Sequence[DeweyId], depth: int) -> "_Segment":
        """Encode strictly-increasing, equal-depth postings."""
        data = bytearray()
        offsets = array("Q")
        maxima = [0] * depth
        previous: Optional[DeweyId] = None
        for index, dewey in enumerate(postings):
            for level, component in enumerate(dewey):
                if component > maxima[level]:
                    maxima[level] = component
            if index % BLOCK == 0:
                offsets.append(len(data))
                for component in dewey:
                    _encode_varint(component, data)
            else:
                shared = 0
                while dewey[shared] == previous[shared]:
                    shared += 1
                _encode_varint(shared, data)
                # Document order guarantees the first divergent component
                # is strictly greater than the previous posting's.
                _encode_varint(dewey[shared] - previous[shared] - 1, data)
                for component in dewey[shared + 1 :]:
                    _encode_varint(component, data)
            previous = dewey
        widths = tuple(max(1, value.bit_length()) for value in maxima)
        return cls(
            depth, len(postings), bytes(data), offsets, widths, postings=postings
        )

    @classmethod
    def empty(cls, depth: int) -> "_Segment":
        return cls(depth, 0, b"", array("Q"), (1,) * depth, postings=())

    # ------------------------------------------------------------------
    # Galloping search
    # ------------------------------------------------------------------
    def upper_bound(self, key: int, hint: int) -> int:
        """Exponential-then-binary search: the first index whose packed
        key is strictly greater than ``key``.

        Since packed keys are non-negative integers, both bisect flavours
        reduce to this one primitive: ``bisect_left(keys, k)`` equals
        ``upper_bound(k - 1)``.

        ``hint`` is the last answered position; successive seeks of a
        scan land near it, so the gallop pays ``O(1)`` for gaps within
        ``_GALLOP_CAP`` instead of ``O(log n)``.  The gallop makes a
        single probe at the cap distance rather than looping through
        doubling steps: each Python-level probe boxes an ``array('Q')``
        element, so once the answer is outside the cap the remaining
        range goes straight to :func:`bisect_right`, whose C-speed
        comparisons beat any further Python probes.
        """
        keys = self.keys
        count = self.count
        if not count:
            return 0
        if hint >= count:
            hint = count - 1
        elif hint < 0:
            hint = 0
        if keys[hint] <= key:
            # Answer lies right of the hint: gallop up.
            jump = hint + _GALLOP_CAP
            if jump < count and keys[jump] <= key:
                return bisect_right(keys, key, jump + 1, count)
            return bisect_right(keys, key, hint + 1, min(jump + 1, count))
        # Answer lies at or left of the hint: gallop down.
        jump = hint - _GALLOP_CAP
        if jump >= 0 and keys[jump] > key:
            return bisect_right(keys, key, 0, jump)
        return bisect_right(keys, key, max(jump + 1, 0), hint)

    # ------------------------------------------------------------------
    # Block decode / iteration
    # ------------------------------------------------------------------
    def decode_block(self, block: int) -> List[DeweyId]:
        """Decode one block of the delta stream into Dewey tuples."""
        data = self.data
        pos = self.offsets[block]
        depth = self.depth
        end = min(self.count, (block + 1) * BLOCK)
        out: List[DeweyId] = []
        previous: Optional[DeweyId] = None
        for _ in range(block * BLOCK, end):
            if previous is None:
                components = []
                for _ in range(depth):
                    value, pos = _decode_varint(data, pos)
                    components.append(value)
            else:
                shared, pos = _decode_varint(data, pos)
                delta, pos = _decode_varint(data, pos)
                components = list(previous[:shared])
                components.append(previous[shared] + delta + 1)
                for _ in range(shared + 1, depth):
                    value, pos = _decode_varint(data, pos)
                    components.append(value)
            previous = tuple(components)
            out.append(previous)
        return out

    def __iter__(self) -> Iterator[DeweyId]:
        for block in range(len(self.offsets)):
            yield from self.decode_block(block)

    def memory_bytes(self) -> int:
        total = len(self.data) + self.offsets.itemsize * len(self.offsets)
        if isinstance(self.keys, array):
            total += self.keys.itemsize * len(self.keys)
        else:  # big-key fallback: pointer slot + int object per posting
            total += sum(sys.getsizeof(key) + 8 for key in self.keys)
        return total


# ----------------------------------------------------------------------
# The mutable posting list
# ----------------------------------------------------------------------
class CompressedPostingList(PostingList):
    """Packed-segment + tail-buffer posting list (third backend)."""

    __slots__ = ("_depth", "_segment", "_tail", "_deleted", "_hint")

    def __init__(self, postings: Iterable[DeweyId] = (), depth: Optional[int] = None):
        unique = sorted(set(postings))
        if depth is None:
            if not unique:
                raise ValueError(
                    "CompressedPostingList needs an explicit depth when "
                    "built without postings"
                )
            depth = len(unique[0])
        for dewey in unique:
            if len(dewey) != depth:
                raise ValueError(
                    f"posting {dewey!r} has depth {len(dewey)}, expected {depth}"
                )
        self._depth = depth
        self._segment = (
            _Segment.build(unique, depth) if unique else _Segment.empty(depth)
        )
        self._tail: List[DeweyId] = []
        self._deleted: Set[DeweyId] = set()
        self._hint = 0

    @classmethod
    def from_sorted(
        cls, postings: List[DeweyId], depth: Optional[int] = None
    ) -> "CompressedPostingList":
        """Adopt an already strictly-sorted, duplicate-free list."""
        if depth is None:
            if not postings:
                raise ValueError("from_sorted needs postings or an explicit depth")
            depth = len(postings[0])
        instance = cls.__new__(cls)
        instance._depth = depth
        instance._segment = (
            _Segment.build(postings, depth) if postings else _Segment.empty(depth)
        )
        instance._tail = []
        instance._deleted = set()
        instance._hint = 0
        return instance

    # ------------------------------------------------------------------
    # Seek primitives
    # ------------------------------------------------------------------
    def seek(self, dewey: DeweyId) -> Optional[DeweyId]:
        segment = self._segment
        best: Optional[DeweyId] = None
        if segment.count:
            index = segment.upper_bound(segment.ceil_key(dewey), self._hint)
            self._hint = index
            if index < segment.count:
                deleted = self._deleted
                if not deleted:
                    best = segment.decode_key(segment.keys[index])
                else:
                    keys = segment.keys
                    while index < segment.count:
                        found = segment.decode_key(keys[index])
                        if found not in deleted:
                            best = found
                            break
                        index += 1
        tail = self._tail
        if tail:
            position = bisect_left(tail, dewey)
            if position < len(tail):
                candidate = tail[position]
                if best is None or candidate < best:
                    best = candidate
        return best

    def seek_floor(self, dewey: DeweyId) -> Optional[DeweyId]:
        segment = self._segment
        best: Optional[DeweyId] = None
        if segment.count:
            index = segment.upper_bound(segment.floor_key(dewey), self._hint) - 1
            self._hint = index + 1
            if index >= 0:
                deleted = self._deleted
                if not deleted:
                    best = segment.decode_key(segment.keys[index])
                else:
                    keys = segment.keys
                    while index >= 0:
                        found = segment.decode_key(keys[index])
                        if found not in deleted:
                            best = found
                            break
                        index -= 1
        tail = self._tail
        if tail:
            position = bisect_right(tail, dewey) - 1
            if position >= 0:
                candidate = tail[position]
                if best is None or candidate > best:
                    best = candidate
        return best

    # ------------------------------------------------------------------
    # Mutation (tail buffer + tombstones, merged on compaction)
    # ------------------------------------------------------------------
    def insert(self, dewey: DeweyId) -> None:
        dewey = tuple(dewey)
        if len(dewey) != self._depth:
            raise ValueError(
                f"posting {dewey!r} has depth {len(dewey)}, expected {self._depth}"
            )
        if self._in_segment(dewey):
            if dewey in self._deleted:
                self._deleted.discard(dewey)  # re-insertion: undo tombstone
            return
        position = bisect_left(self._tail, dewey)
        if position < len(self._tail) and self._tail[position] == dewey:
            return
        self._tail.insert(position, dewey)
        self._maybe_compact()

    def remove(self, dewey: DeweyId) -> bool:
        dewey = tuple(dewey)
        position = bisect_left(self._tail, dewey)
        if position < len(self._tail) and self._tail[position] == dewey:
            del self._tail[position]
            return True
        if self._in_segment(dewey) and dewey not in self._deleted:
            self._deleted.add(dewey)
            self._maybe_compact()
            return True
        return False

    def _in_segment(self, dewey: DeweyId) -> bool:
        """Exact membership in the packed segment (tombstones ignored)."""
        segment = self._segment
        if not segment.count:
            return False
        key = segment.pack_exact(dewey)
        if key is None:
            return False
        index = segment.upper_bound(key - 1, self._hint)
        return index < segment.count and segment.keys[index] == key

    def _maybe_compact(self) -> None:
        pending = len(self._tail) + len(self._deleted)
        if pending > max(MIN_COMPACTION, self._segment.count >> COMPACTION_SHIFT):
            self.compact()

    def compact(self) -> None:
        """Merge tail and tombstones into a fresh packed segment."""
        if not self._tail and not self._deleted:
            return
        merged = list(self)
        self._segment = (
            _Segment.build(merged, self._depth)
            if merged
            else _Segment.empty(self._depth)
        )
        self._tail = []
        self._deleted = set()
        self._hint = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def first(self) -> Optional[DeweyId]:
        for dewey in self:
            return dewey
        return None

    def last(self) -> Optional[DeweyId]:
        segment = self._segment
        best: Optional[DeweyId] = None
        index = segment.count - 1
        while index >= 0:
            found = segment.decode_key(segment.keys[index])
            if found not in self._deleted:
                best = found
                break
            index -= 1
        if self._tail:
            candidate = self._tail[-1]
            if best is None or candidate > best:
                best = candidate
        return best

    def __len__(self) -> int:
        return self._segment.count - len(self._deleted) + len(self._tail)

    def __iter__(self) -> Iterator[DeweyId]:
        """Document-order merge of segment-minus-tombstones and tail."""
        deleted = self._deleted
        tail = self._tail
        position = 0
        tail_len = len(tail)
        for dewey in self._segment:
            if dewey in deleted:
                continue
            while position < tail_len and tail[position] < dewey:
                yield tail[position]
                position += 1
            yield dewey
        while position < tail_len:
            yield tail[position]
            position += 1

    def memory_bytes(self) -> int:
        total = self._segment.memory_bytes()
        total += sum(sys.getsizeof(dewey) + 8 for dewey in self._tail)
        total += sum(sys.getsizeof(dewey) + 8 for dewey in self._deleted)
        return total

    def __repr__(self) -> str:
        return (
            f"CompressedPostingList({len(self)} postings, "
            f"{self._segment.count} packed, {len(self._tail)} tail, "
            f"{len(self._deleted)} tombstones)"
        )

    # ------------------------------------------------------------------
    # Packed wire format (snapshot serialisation)
    # ------------------------------------------------------------------
    def packed_state(self) -> dict:
        """The list as a JSON-able packed-buffer document.

        Compacts first, so the canonical delta stream *is* the payload —
        snapshots dump the buffer instead of re-encoding per posting.
        Block offsets, field widths and the key array are all derivable
        by one linear decode pass, so only the stream itself travels.
        """
        import base64

        self.compact()
        return {
            "format": PACKED_FORMAT,
            "version": PACKED_VERSION,
            "depth": self._depth,
            "block": BLOCK,
            "count": self._segment.count,
            "data": base64.b64encode(self._segment.data).decode("ascii"),
        }

    @classmethod
    def from_packed_state(cls, state: dict) -> "CompressedPostingList":
        """Rebuild a list from :meth:`packed_state` output.

        The delta stream is adopted verbatim; offsets, widths and keys
        are regenerated by one linear decode (no per-posting inserts).
        """
        import base64

        if state.get("format") != PACKED_FORMAT:
            raise ValueError(
                f"not a {PACKED_FORMAT} document: {state.get('format')!r}"
            )
        if state.get("version") != PACKED_VERSION:
            raise ValueError(
                f"unsupported packed-postings version {state.get('version')!r}"
            )
        if state.get("block") != BLOCK:
            raise ValueError(
                f"packed stream uses block size {state.get('block')!r}, "
                f"this build expects {BLOCK}"
            )
        depth = int(state["depth"])
        count = int(state["count"])
        data = base64.b64decode(state["data"])
        instance = cls.__new__(cls)
        instance._depth = depth
        instance._tail = []
        instance._deleted = set()
        instance._hint = 0
        if count == 0:
            if data:
                raise ValueError("packed stream declares 0 postings but has data")
            instance._segment = _Segment.empty(depth)
            return instance
        # Linear decode pass: recover offsets and per-level maxima, then
        # let the adopted buffer serve as-is.
        offsets = array("Q")
        maxima = [0] * depth
        previous: Optional[DeweyId] = None
        postings: List[DeweyId] = []
        pos = 0
        try:
            for index in range(count):
                if index % BLOCK == 0:
                    offsets.append(pos)
                    components = []
                    for _ in range(depth):
                        value, pos = _decode_varint(data, pos)
                        components.append(value)
                else:
                    shared, pos = _decode_varint(data, pos)
                    if shared >= depth:
                        raise ValueError("shared-prefix length out of range")
                    delta, pos = _decode_varint(data, pos)
                    components = list(previous[:shared])
                    components.append(previous[shared] + delta + 1)
                    for _ in range(shared + 1, depth):
                        value, pos = _decode_varint(data, pos)
                        components.append(value)
                current = tuple(components)
                if previous is not None and current <= previous:
                    raise ValueError("packed stream is not strictly increasing")
                for level, component in enumerate(current):
                    if component > maxima[level]:
                        maxima[level] = component
                postings.append(current)
                previous = current
        except IndexError:
            raise ValueError("packed stream is truncated") from None
        if pos != len(data):
            raise ValueError(
                f"packed stream has {len(data) - pos} trailing bytes"
            )
        widths = tuple(max(1, value.bit_length()) for value in maxima)
        instance._segment = _Segment(
            depth, count, data, offsets, widths, postings=postings
        )
        return instance
