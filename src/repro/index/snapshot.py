"""Index persistence: save and load a built inverted index.

The paper's deployment builds the index offline ("Index generation is done
offline and is very fast", Section V-A) and serves queries from it; this
module provides the missing piece — a snapshot format so the offline build
is done once.

The snapshot stores the relation (schema + rows), the diversity ordering,
the backend choice, and the exact rid -> Dewey assignment.  Persisting the
assignment matters: bulk builds number siblings in sorted-value order while
incremental builds number them first-come, and a restore must reproduce the
exact IDs so that previously returned Dewey IDs stay valid.

Format (version 2): a gzip-compressed JSON envelope ``{format, version,
digest, payload}`` where ``digest`` is the SHA-256 of the canonical payload
serialisation — a flipped bit anywhere in the payload fails the load
instead of silently corrupting the restored index.  Writes are atomic:
the document goes to a same-directory temp file (fsynced), which is then
renamed over the target, so a crash mid-write can never leave a truncated
snapshot under the real name.  Rows are keyed by rid, which lets a
snapshot carry a *subset* of the relation (``rids=``) — one file per shard
of a sharded deployment (see :mod:`repro.durability.sharded`).  Version-1
snapshots (whole-relation, no digest) still load.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Optional, Union

from ..core.dewey import DeweyId
from ..core.ordering import DiversityOrdering
from ..storage.relation import Relation
from ..storage.schema import Attribute, AttributeKind, Schema
from .compressed import CompressedPostingList
from .dewey_index import DeweyAssignmentError, DeweyIndex
from .inverted import InvertedIndex
from .postings import COMPRESSED_BACKEND

FORMAT_NAME = "repro-diversity-index"
FORMAT_VERSION = 2

_PAYLOAD_FIELDS = ("schema", "rows", "ordering", "deweys", "backend",
                   "row_slots", "live_rows")


class SnapshotError(ValueError):
    """Raised for malformed or incompatible snapshot files."""


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def build_payload(index: InvertedIndex, rids: Optional[Iterable[int]] = None) -> dict:
    """The version-2 snapshot payload for ``index``.

    ``rids`` restricts the row table to a subset of relation slots (a
    shard's owned rows, live and tombstoned); the Dewey table always
    reflects exactly what *this* index serves (its live postings).
    """
    relation = index.relation
    if rids is None:
        scope = range(len(relation))
        partial = False
    else:
        scope = sorted(set(int(rid) for rid in rids))
        partial = True
    rows = [[rid, list(relation[rid])] for rid in scope]
    deleted = [rid for rid in scope if relation.is_deleted(rid)]
    dewey = index.dewey
    deweys = sorted(
        (dewey.rid_of(dewey_id), list(dewey_id))
        for dewey_id in index.all_postings()
    )
    payload = {
        "name": relation.name,
        "backend": index.backend,
        "ordering": list(index.ordering.attributes),
        "schema": [
            [attribute.name, attribute.kind.value]
            for attribute in relation.schema
        ],
        "row_slots": len(relation),
        "live_rows": len(rows) - len(deleted),
        "partial": partial,
        "rows": rows,
        "deleted": deleted,
        "deweys": deweys,
        "epoch": index.epoch,
    }
    if index.backend == COMPRESSED_BACKEND and not partial:
        packed = _packed_postings_section(index)
        if packed is not None:
            payload["postings"] = packed
    return payload


def _packed_postings_section(index: InvertedIndex) -> Optional[dict]:
    """Serialise the compressed backend's buffers directly.

    Each list is compacted (folding its tail/tombstones into the canonical
    delta stream) and dumped as base64 bytes — restore adopts the buffer
    with one linear decode instead of re-encoding every posting through
    :meth:`InvertedIndex.index_restored_row`.  Entry order is made
    deterministic so the payload digest is reproducible.  Returns ``None``
    when any list is not actually a :class:`CompressedPostingList`
    (defensive; restore then falls back to the per-row path).
    """
    all_list = index.all_postings()
    if not isinstance(all_list, CompressedPostingList):
        return None
    scalar_entries = []
    for (attribute, value), posting_list in index._scalar.items():
        if not isinstance(posting_list, CompressedPostingList):
            return None
        scalar_entries.append([attribute, value, posting_list.packed_state()])
    token_entries = []
    for (attribute, token), posting_list in index._token.items():
        if not isinstance(posting_list, CompressedPostingList):
            return None
        token_entries.append([attribute, token, posting_list.packed_state()])
    scalar_entries.sort(
        key=lambda entry: (entry[0], json.dumps(entry[1], sort_keys=True))
    )
    token_entries.sort(key=lambda entry: (entry[0], entry[1]))
    return {
        "all": all_list.packed_state(),
        "scalar": scalar_entries,
        "token": token_entries,
    }


def canonical_payload_bytes(payload: dict) -> bytes:
    """The byte string the payload digest is computed over."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")


def payload_digest(payload: dict) -> str:
    return hashlib.sha256(canonical_payload_bytes(payload)).hexdigest()


def encode_snapshot(payload: dict) -> bytes:
    """Serialise a payload into the on-disk (gzip) envelope bytes."""
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "digest": payload_digest(payload),
        "payload": payload,
    }
    raw = json.dumps(document, separators=(",", ":")).encode("utf-8")
    return gzip.compress(raw)


def write_snapshot(
    payload: dict,
    target: Union[str, Path],
    fsync: bool = True,
    injector=None,
) -> None:
    """Atomically persist a payload: temp file + fsync + rename + dir fsync.

    ``injector`` is a :class:`repro.durability.crash.CrashInjector` (or
    anything with its ``reach``/``crash`` interface); production callers
    pass ``None`` and the hooks cost one identity check each.
    """
    target = Path(target)
    data = encode_snapshot(payload)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as handle:
        if injector is not None and injector.reach("snapshot-mid-write"):
            # Simulated kernel crash mid-write: half the envelope reaches
            # the platter, then the process dies.
            handle.write(data[: len(data) // 2])
            handle.flush()
            os.fsync(handle.fileno())
            injector.crash()
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    if injector is not None and injector.reach("snapshot-pre-rename"):
        injector.crash()  # temp file complete, real name still the old snapshot
    os.replace(tmp, target)
    if fsync:
        _fsync_dir(target.parent)
    if injector is not None and injector.reach("snapshot-post-rename"):
        injector.crash()  # renamed, but the caller's WAL truncation never ran


def save_index(
    index: InvertedIndex,
    target: Union[str, Path],
    rids: Optional[Iterable[int]] = None,
    fsync: bool = True,
    injector=None,
) -> None:
    """Write ``index`` (and its relation rows) to a snapshot file."""
    write_snapshot(build_payload(index, rids=rids), target, fsync=fsync,
                   injector=injector)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (the rename) to disk; best-effort on
    platforms that refuse O_RDONLY directory fds."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def read_snapshot(source: Union[str, Path]) -> dict:
    """Read, checksum-verify and normalise a snapshot into a v2 payload.

    Every failure mode — unreadable file, bad gzip, bad JSON, unknown
    format/version, missing fields, digest mismatch — surfaces as a
    :class:`SnapshotError` naming the offending path.
    """
    try:
        with gzip.open(source, "rb") as handle:
            document = json.loads(handle.read().decode("utf-8"))
    except (OSError, ValueError) as error:
        raise SnapshotError(f"cannot read snapshot {source}: {error}") from None
    try:
        return _normalise_document(document)
    except SnapshotError as error:
        raise SnapshotError(f"snapshot {source}: {error}") from None
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise SnapshotError(f"malformed snapshot {source}: {error}") from None


def _normalise_document(document) -> dict:
    if not isinstance(document, dict):
        raise SnapshotError("root must be an object")
    if document.get("format") != FORMAT_NAME:
        raise SnapshotError(
            f"not a {FORMAT_NAME} snapshot (format={document.get('format')!r})"
        )
    version = document.get("version")
    if version == 1:
        payload = _upgrade_v1(document)
    elif version == FORMAT_VERSION:
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise SnapshotError("version-2 snapshot missing payload object")
        declared = document.get("digest")
        actual = payload_digest(payload)
        if declared != actual:
            raise SnapshotError(
                f"payload digest mismatch (declared {declared!r}, "
                f"computed {actual!r}) — snapshot is corrupt"
            )
    else:
        raise SnapshotError(f"unsupported snapshot version {version!r}")
    for key in _PAYLOAD_FIELDS:
        if key not in payload:
            raise SnapshotError(f"snapshot missing field {key!r}")
    if len(payload["rows"]) != payload["row_slots"] and not payload.get("partial"):
        raise SnapshotError(
            f"row count mismatch: {payload['row_slots']} slots declared, "
            f"{len(payload['rows'])} rows present — snapshot is truncated"
        )
    return payload


def _upgrade_v1(document: dict) -> dict:
    """Rewrite a legacy whole-relation v1 document as a v2 payload."""
    for key in ("schema", "rows", "ordering", "deweys", "backend"):
        if key not in document:
            raise SnapshotError(f"snapshot missing field {key!r}")
    rows = [[rid, list(row)] for rid, row in enumerate(document["rows"])]
    deleted = [int(rid) for rid in document.get("deleted", [])]
    return {
        "name": document.get("name", "R"),
        "backend": document["backend"],
        "ordering": document["ordering"],
        "schema": document["schema"],
        "row_slots": len(rows),
        "live_rows": len(rows) - len(deleted),
        "partial": False,
        "rows": rows,
        "deleted": deleted,
        "deweys": document["deweys"],
        "epoch": 0,
    }


def restore_relation(payload: dict, label: str = "snapshot") -> Relation:
    """Rebuild the relation from a *complete* payload (every slot present).

    The declared slot and live counts are enforced: silent truncation of
    the row table (fewer rows than ``row_slots``, or tombstones that do
    not add up to ``live_rows``) raises instead of loading short.
    """
    schema = Schema(
        Attribute(name, AttributeKind(kind)) for name, kind in payload["schema"]
    )
    relation = Relation(schema, name=payload.get("name", "R"))
    expected = 0
    for rid, row in sorted((int(rid), row) for rid, row in payload["rows"]):
        if rid != expected:
            raise SnapshotError(
                f"{label} row table has a gap at rid {expected} "
                f"(next recorded rid is {rid})"
            )
        relation.insert(row)
        expected += 1
    if expected != payload["row_slots"]:
        raise SnapshotError(
            f"{label} declares {payload['row_slots']} row slots but only "
            f"{expected} rows are present — truncated document"
        )
    for rid in payload.get("deleted", []):
        relation.delete(int(rid))
    if relation.live_count != payload["live_rows"]:
        raise SnapshotError(
            f"{label} declares {payload['live_rows']} live rows but the "
            f"restored relation has {relation.live_count}"
        )
    return relation


def restore_dewey(
    relation: Relation,
    ordering: DiversityOrdering,
    assignments: dict[int, DeweyId],
) -> DeweyIndex:
    """Rebuild a DeweyIndex with the exact persisted assignment.

    Internal sibling dictionaries are reconstructed from the (row value,
    component) pairs; inconsistencies (same value mapping to two components
    under one prefix, duplicate IDs, wrong depth) are rejected.
    """
    index = DeweyIndex(relation, ordering)
    for rid, dewey in sorted(assignments.items()):
        if not 0 <= rid < len(relation):
            raise SnapshotError(f"snapshot references unknown rid {rid}")
        try:
            index.force(rid, dewey)
        except DeweyAssignmentError as error:
            raise SnapshotError(f"inconsistent snapshot: {error}") from None
    return index


def restore_index(payload: dict, label: str = "snapshot") -> InvertedIndex:
    """Materialise an :class:`InvertedIndex` from a complete payload."""
    if payload.get("partial"):
        raise SnapshotError(
            f"{label} is a shard-subset snapshot; recover the deployment "
            f"directory instead (repro.durability)"
        )
    relation = restore_relation(payload, label)
    ordering = DiversityOrdering(payload["ordering"])
    assignments = {
        int(rid): tuple(int(c) for c in components)
        for rid, components in payload["deweys"]
    }
    dewey = restore_dewey(relation, ordering, assignments)
    index = InvertedIndex(relation, ordering, backend=payload["backend"],
                          dewey=dewey)
    packed = payload.get("postings")
    if packed is not None and payload["backend"] == COMPRESSED_BACKEND:
        _adopt_packed_postings(index, packed, set(assignments.values()), label)
    else:
        for rid in sorted(assignments):
            index.index_restored_row(rid)
    index.restore_epoch(int(payload.get("epoch", 0)))
    return index


def _adopt_packed_postings(
    index: InvertedIndex,
    packed: dict,
    expected_deweys: set,
    label: str,
) -> None:
    """Restore compressed posting lists straight from their buffers.

    The packed section travels inside the digest-protected payload, but the
    buffers must still agree with the Dewey table they were saved beside —
    a writer bug that diverges them would otherwise restore an index whose
    posting lists disagree with its Dewey assignment.
    """
    try:
        all_list = CompressedPostingList.from_packed_state(packed["all"])
        scalar = {
            (attribute, value): CompressedPostingList.from_packed_state(state)
            for attribute, value, state in packed["scalar"]
        }
        token = {
            (attribute, token_text): CompressedPostingList.from_packed_state(state)
            for attribute, token_text, state in packed["token"]
        }
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(
            f"{label} has a malformed packed-postings section: {error}"
        ) from None
    if set(all_list) != expected_deweys:
        raise SnapshotError(
            f"{label} packed postings disagree with the Dewey table "
            f"({len(all_list)} packed vs {len(expected_deweys)} assigned)"
        )
    for (attribute, value), posting_list in scalar.items():
        stray = set(posting_list) - expected_deweys
        if stray:
            raise SnapshotError(
                f"{label} packed postings for {attribute}={value!r} contain "
                f"{len(stray)} Dewey IDs absent from the Dewey table"
            )
    for (attribute, token_text), posting_list in token.items():
        stray = set(posting_list) - expected_deweys
        if stray:
            raise SnapshotError(
                f"{label} packed postings for {attribute}:{token_text!r} "
                f"contain {len(stray)} Dewey IDs absent from the Dewey table"
            )
    index.restore_posting_lists(all_list, scalar, token)


def load_index(source: Union[str, Path]) -> InvertedIndex:
    """Restore an inverted index (and its relation) from a snapshot."""
    payload = read_snapshot(source)
    try:
        return restore_index(payload, label=f"snapshot {source}")
    except SnapshotError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        # Malformed structures inside a well-checksummed envelope (wrong
        # nesting, bad attribute kinds, non-numeric components) must not
        # leak raw exceptions to callers.
        raise SnapshotError(f"malformed snapshot {source}: {error}") from None
