"""Index persistence: save and load a built inverted index.

The paper's deployment builds the index offline ("Index generation is done
offline and is very fast", Section V-A) and serves queries from it; this
module provides the missing piece — a snapshot format so the offline build
is done once.

The snapshot stores the relation (schema + rows), the diversity ordering,
the backend choice, and the exact rid -> Dewey assignment.  Persisting the
assignment matters: bulk builds number siblings in sorted-value order while
incremental builds number them first-come, and a restore must reproduce the
exact IDs so that previously returned Dewey IDs stay valid.

Format: a single gzip-compressed JSON document (schema-versioned).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Union

from ..core.dewey import DeweyId
from ..core.ordering import DiversityOrdering
from ..storage.relation import Relation
from ..storage.schema import Attribute, AttributeKind, Schema
from .dewey_index import DeweyIndex
from .inverted import InvertedIndex

FORMAT_NAME = "repro-diversity-index"
FORMAT_VERSION = 1


class SnapshotError(ValueError):
    """Raised for malformed or incompatible snapshot files."""


def save_index(index: InvertedIndex, target: Union[str, Path]) -> None:
    """Write ``index`` (and its relation) to a snapshot file."""
    relation = index.relation
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": relation.name,
        "backend": index.backend,
        "ordering": list(index.ordering.attributes),
        "schema": [
            [attribute.name, attribute.kind.value]
            for attribute in relation.schema
        ],
        "rows": [list(row) for row in relation],
        "deleted": relation.deleted_rids(),
        "deweys": [
            [rid, list(index.dewey.dewey_of(rid))]
            for rid in sorted(index.dewey.iter_rids())
        ],
    }
    payload = json.dumps(document, separators=(",", ":")).encode("utf-8")
    with gzip.open(target, "wb") as handle:
        handle.write(payload)


def load_index(source: Union[str, Path]) -> InvertedIndex:
    """Restore an inverted index (and its relation) from a snapshot."""
    try:
        with gzip.open(source, "rb") as handle:
            document = json.loads(handle.read().decode("utf-8"))
    except (OSError, ValueError) as error:
        raise SnapshotError(f"cannot read snapshot {source}: {error}") from None
    _validate_header(document)
    schema = Schema(
        Attribute(name, AttributeKind(kind)) for name, kind in document["schema"]
    )
    relation = Relation(schema, name=document.get("name", "R"))
    for row in document["rows"]:
        relation.insert(row)
    for rid in document.get("deleted", []):
        relation.delete(int(rid))
    ordering = DiversityOrdering(document["ordering"])
    assignments = {
        int(rid): tuple(int(c) for c in components)
        for rid, components in document["deweys"]
    }
    dewey = _restore_dewey(relation, ordering, assignments)
    index = InvertedIndex(relation, ordering, backend=document["backend"])
    index._dewey = dewey  # noqa: SLF001 - restoring internal state
    for rid in sorted(assignments):
        _index_row(index, rid)
    return index


def _validate_header(document) -> None:
    if not isinstance(document, dict):
        raise SnapshotError("snapshot root must be an object")
    if document.get("format") != FORMAT_NAME:
        raise SnapshotError(
            f"not a {FORMAT_NAME} snapshot (format={document.get('format')!r})"
        )
    if document.get("version") != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {document.get('version')!r}"
        )
    for key in ("schema", "rows", "ordering", "deweys", "backend"):
        if key not in document:
            raise SnapshotError(f"snapshot missing field {key!r}")


def _restore_dewey(
    relation: Relation,
    ordering: DiversityOrdering,
    assignments: dict[int, DeweyId],
) -> DeweyIndex:
    """Rebuild a DeweyIndex with the exact persisted assignment.

    Internal sibling dictionaries are reconstructed from the (row value,
    component) pairs; inconsistencies (same value mapping to two components
    under one prefix, duplicate IDs, wrong depth) are rejected.
    """
    index = DeweyIndex(relation, ordering)
    positions = [relation.schema.position(name) for name in ordering.attributes]
    seen_ids: set[DeweyId] = set()
    for rid, dewey in sorted(assignments.items()):
        if not 0 <= rid < len(relation):
            raise SnapshotError(f"snapshot references unknown rid {rid}")
        if len(dewey) != ordering.depth:
            raise SnapshotError(
                f"Dewey {dewey} has depth {len(dewey)}, expected {ordering.depth}"
            )
        if dewey in seen_ids:
            raise SnapshotError(f"duplicate Dewey ID {dewey} in snapshot")
        seen_ids.add(dewey)
        row = relation[rid]
        prefix: tuple = ()
        for position, component in zip(positions, dewey):
            value = row[position]
            known = index._dictionary.lookup(prefix, value)  # noqa: SLF001
            if known is None:
                _force_component(index, prefix, value, component)
            elif known != component:
                raise SnapshotError(
                    f"inconsistent snapshot: value {value!r} maps to both "
                    f"{known} and {component} under prefix {prefix}"
                )
            prefix = prefix + (component,)
        index._dewey_by_rid[rid] = dewey  # noqa: SLF001
        index._rid_by_dewey[dewey] = rid  # noqa: SLF001
        stem = dewey[:-1]
        current = index._uniqueness.get(stem, 0)  # noqa: SLF001
        index._uniqueness[stem] = max(current, dewey[-1] + 1)  # noqa: SLF001
    return index


def _force_component(index: DeweyIndex, prefix: tuple, value, component: int) -> None:
    """Register ``value -> component`` in the sibling dictionary, keeping the
    reverse table dense (gaps are filled with placeholders and overwritten
    as their real values arrive)."""
    dictionary = index._dictionary  # noqa: SLF001
    forward = dictionary._forward.setdefault(prefix, {})  # noqa: SLF001
    reverse = dictionary._reverse.setdefault(prefix, [])  # noqa: SLF001
    while len(reverse) <= component:
        reverse.append(None)
    if reverse[component] is not None and reverse[component] != value:
        raise SnapshotError(
            f"inconsistent snapshot: component {component} under {prefix} "
            f"assigned to both {reverse[component]!r} and {value!r}"
        )
    forward[value] = component
    reverse[component] = value


def _index_row(index: InvertedIndex, rid: int) -> None:
    """Add one restored row to the posting lists (Dewey already assigned)."""
    from ..storage.schema import AttributeKind as AK
    from .postings import make_posting_list
    from .tokenize import token_set

    dewey = index.dewey.dewey_of(rid)
    relation = index.relation
    index._all.insert(dewey)  # noqa: SLF001
    for name, value in zip(relation.schema.names, relation[rid]):
        key = (name, value)
        postings = index._scalar.get(key)  # noqa: SLF001
        if postings is None:
            postings = make_posting_list((), index.backend)
            index._scalar[key] = postings  # noqa: SLF001
        postings.insert(dewey)
    for attribute in relation.schema:
        if attribute.kind is not AK.TEXT:
            continue
        for token in token_set(relation.value(rid, attribute.name)):
            key = (attribute.name, token)
            postings = index._token.get(key)  # noqa: SLF001
            if postings is None:
                postings = make_posting_list((), index.backend)
                index._token[key] = postings  # noqa: SLF001
            postings.insert(dewey)
