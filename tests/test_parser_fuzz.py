"""Randomised round-trip and robustness fuzzing of the query parser.

Two properties:

* **Round-trip fixed point.**  For any query tree ``q``,
  ``parse_query(to_query_string(q)) == q``; and the rendered text is itself
  a fixed point — rendering the re-parsed tree reproduces it byte-for-byte.
  (:func:`repro.query.rewrite.to_query_string` is documented as
  round-trippable; this pins it against every literal kind, weights,
  escaping and arbitrary nesting.)

* **Total on garbage.**  Malformed input raises :class:`QueryParseError`
  (the documented error, a ``ValueError``) — never ``KeyError``,
  ``IndexError``, ``AttributeError`` or any other internal crash — whatever
  bytes arrive.  Fuzzed inputs are random mutations of valid query strings
  plus outright random character soup.
"""

from __future__ import annotations

import random
import string

import pytest

from repro import Query, parse_query, to_query_string
from repro.query.parser import QueryParseError

ATTRIBUTES = ["make", "model", "color", "desc", "year", "price"]
WORDS = ["low", "miles", "price", "rare", "fun", "clean", "Honda", "Civic"]
# Weights that survive the '%g' render / float() re-parse exactly.
WEIGHTS = [1.0, 2.0, 3.0, 0.5, 2.5, 10.0, 0.25]
NASTY_STRINGS = [
    "it's",
    'say "hi"',
    "back\\slash",
    "tab\there",
    "mixed 'q' and \\\\ too",
    "Ünïcode blå",
    "AND",          # looks like an operator
    "123abc",
]


def _random_scalar_value(rng: random.Random):
    kind = rng.randrange(4)
    if kind == 0:
        return rng.randint(-5000, 5000)
    if kind == 1:
        return rng.choice([0.5, 2.25, -3.125, 1999.0, 0.1])
    if kind == 2:
        return rng.choice(NASTY_STRINGS)
    return rng.choice(WORDS)


def random_query_tree(rng: random.Random, depth: int = 0) -> Query:
    """A random query tree covering both predicate kinds, weights, escaping
    and nesting up to three levels."""
    if depth < 3 and rng.random() < 0.45:
        combinator = Query.conjunction if rng.random() < 0.5 else Query.disjunction
        children = [
            random_query_tree(rng, depth + 1) for _ in range(rng.randint(2, 3))
        ]
        return combinator(*children)
    weight = rng.choice(WEIGHTS)
    if rng.random() < 0.5:
        return Query.scalar(
            rng.choice(ATTRIBUTES), _random_scalar_value(rng), weight=weight
        )
    keywords = " ".join(rng.sample(WORDS, rng.randint(1, 3)))
    return Query.keyword(rng.choice(ATTRIBUTES), keywords, weight=weight)


# ----------------------------------------------------------------------
# Round-tripping
# ----------------------------------------------------------------------
def test_parse_render_parse_is_identity():
    rng = random.Random(2024)
    for _ in range(300):
        query = random_query_tree(rng)
        rendered = to_query_string(query)
        reparsed = parse_query(rendered)
        assert reparsed == query, rendered


def test_rendered_text_is_a_fixed_point():
    """render(parse(render(q))) == render(q): one render canonicalises."""
    rng = random.Random(4048)
    for _ in range(300):
        query = random_query_tree(rng)
        rendered = to_query_string(query)
        assert to_query_string(parse_query(rendered)) == rendered


def test_match_all_round_trips():
    assert parse_query(to_query_string(Query.match_all())) == Query.match_all()
    assert parse_query("*") == Query.match_all()
    assert parse_query("   ") == Query.match_all()


@pytest.mark.parametrize("value", NASTY_STRINGS)
def test_escaped_literals_round_trip(value):
    query = Query.scalar("desc", value)
    assert parse_query(to_query_string(query)) == query


def test_default_weight_is_omitted_and_restored():
    query = Query.scalar("make", "Honda")  # weight 1.0
    rendered = to_query_string(query)
    assert "[" not in rendered
    assert parse_query(rendered).weight == 1.0


# ----------------------------------------------------------------------
# Robustness: mutated and garbage inputs
# ----------------------------------------------------------------------
_ALLOWED = (QueryParseError,)
_SOUP = string.ascii_letters + string.digits + " '\"()[]=\\.,<>!?*-_\t"


def _assert_total(text: str) -> None:
    """parse_query must either succeed or raise the documented error."""
    try:
        parse_query(text)
    except _ALLOWED:
        pass
    except Exception as error:  # pragma: no cover - the failure we hunt
        pytest.fail(
            f"parse_query({text!r}) raised undocumented "
            f"{type(error).__name__}: {error}"
        )


def _mutate(rng: random.Random, text: str) -> str:
    op = rng.randrange(4)
    if not text:
        return rng.choice(_SOUP)
    position = rng.randrange(len(text))
    if op == 0:  # delete a character
        return text[:position] + text[position + 1:]
    if op == 1:  # insert a random character
        return text[:position] + rng.choice(_SOUP) + text[position:]
    if op == 2:  # replace a character
        return text[:position] + rng.choice(_SOUP) + text[position + 1:]
    return text[:position]  # truncate


def test_mutated_valid_queries_never_crash():
    rng = random.Random(9090)
    for _ in range(150):
        text = to_query_string(random_query_tree(rng))
        for _ in range(rng.randint(1, 6)):
            text = _mutate(rng, text)
        _assert_total(text)


def test_random_character_soup_never_crashes():
    rng = random.Random(1234)
    for _ in range(300):
        text = "".join(
            rng.choice(_SOUP) for _ in range(rng.randint(0, 40))
        )
        _assert_total(text)


@pytest.mark.parametrize(
    "text",
    [
        "Make =",                      # dangling operator
        "Make",                        # dangling attribute
        "= 'Honda'",                   # missing attribute
        "(Make = 'Honda'",             # unclosed paren
        "Make = 'Honda')",             # trailing paren
        "Make = 'Honda' OR",           # dangling OR
        "Make = 'Honda' [",            # unclosed weight
        "Make = 'Honda' [x]",          # non-numeric weight
        "Make = 'Honda' [-1]",         # negative weight (semantic reject)
        "Make ? 'Honda'",              # unknown operator
        "desc CONTAINS '!!'",          # keyword text with no tokens
        "desc CONTAINS",               # missing keyword literal
        "Make = 'Honda' Toyota",       # trailing tokens
        "'Honda' = Make",              # literal where attribute expected
        "((((",
        "]]]]",
    ],
)
def test_malformed_inputs_raise_the_documented_error(text):
    with pytest.raises(QueryParseError):
        parse_query(text)


def test_parse_error_is_a_value_error():
    """Callers catching ValueError (the pre-existing contract) still work."""
    with pytest.raises(ValueError):
        parse_query("Make =")
