"""Smoke tests for the benchmark harness and figure drivers (tiny scales)."""

import io

import pytest

from repro.bench.figures import (
    ALL_FIGURES,
    FigureResult,
    ablation_backend,
    ablation_probe_counts,
    ablation_skipping,
    figure5,
    figure6,
    figure7,
    figure8,
    summary_table,
)
from repro.bench.harness import (
    ALGORITHM_TAGS,
    env_int,
    run_matrix,
    run_one,
    run_sharded_workload,
    run_workload,
)
from repro.core.engine import DiversityEngine
from repro.sharding import ShardedEngine
from repro.bench.report import render_text, to_csv_string, write_csv
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def small_index():
    relation = generate_autos(AutosSpec(rows=400, seed=7))
    return InvertedIndex.build(relation, autos_ordering())


@pytest.fixture(scope="module")
def small_workload(small_index):
    return WorkloadGenerator(
        small_index.relation,
        WorkloadSpec(queries=4, predicates=1, selectivity=0.5, seed=2),
    ).materialise()


class TestHarness:
    def test_all_tags_run(self, small_index, small_workload):
        for tag in ALGORITHM_TAGS:
            timing = run_workload(small_index, small_workload, 5, tag)
            assert timing.algorithm == tag
            assert timing.total_seconds >= 0
            assert timing.queries == len(small_workload)

    def test_unknown_tag(self, small_index, small_workload):
        with pytest.raises(ValueError):
            run_workload(small_index, small_workload, 5, "UQuantum")

    def test_run_one_stats(self, small_index, small_workload):
        elapsed, count, stats = run_one(small_index, small_workload[0], 5, "UProbe")
        assert elapsed >= 0 and count <= 5
        assert stats["next_calls"] <= 10 + 1

    def test_run_sharded_workload(self, small_index, small_workload):
        """The sharded runner reports shard/worker metadata and returns the
        same result counts as the plain runner (answers are identical)."""
        sharded = ShardedEngine.from_relation(
            small_index.relation, autos_ordering(), shards=3, workers=2
        )
        plain = run_workload(small_index, small_workload, 5, "UProbe")
        timing = run_sharded_workload(sharded, small_workload, 5, "UProbe")
        assert timing.shards == 3 and timing.workers == 2
        assert timing.queries == plain.queries
        assert timing.results_returned == plain.results_returned
        assert timing.total_seconds >= 0

    def test_run_sharded_workload_accepts_plain_engine(self, small_index, small_workload):
        engine = DiversityEngine(small_index)
        timing = run_sharded_workload(engine, small_workload, 5, "UNaive")
        assert timing.shards == 1 and timing.workers == 0
        assert timing.queries == len(small_workload)

    def test_run_sharded_workload_rejects_bad_tags(self, small_index, small_workload):
        engine = DiversityEngine(small_index)
        with pytest.raises(ValueError):
            run_sharded_workload(engine, small_workload, 5, "NoSuchTag")
        with pytest.raises(ValueError):
            run_sharded_workload(engine, small_workload, 5, "UOnePassNoSkip")

    def test_multq_counts_queries(self, small_index, small_workload):
        timing = run_workload(small_index, small_workload[:1], 3, "MultQ")
        assert timing.queries_issued > 0

    def test_run_matrix(self, small_index, small_workload):
        timings = run_matrix(small_index, small_workload, 3, ["UBasic", "UProbe"])
        assert [t.algorithm for t in timings] == ["UBasic", "UProbe"]

    def test_mean_ms(self, small_index, small_workload):
        timing = run_workload(small_index, small_workload, 3, "UBasic")
        assert timing.mean_ms == pytest.approx(
            1000 * timing.total_seconds / timing.queries
        )

    def test_env_int(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_ENV", "42")
        assert env_int("REPRO_TEST_ENV", 7) == 42
        monkeypatch.delenv("REPRO_TEST_ENV")
        assert env_int("REPRO_TEST_ENV", 7) == 7
        monkeypatch.setenv("REPRO_TEST_ENV", "zero")
        with pytest.raises(ValueError):
            env_int("REPRO_TEST_ENV", 7)
        monkeypatch.setenv("REPRO_TEST_ENV", "-3")
        with pytest.raises(ValueError):
            env_int("REPRO_TEST_ENV", 7)


class TestFigureDrivers:
    def test_figure5_shape(self):
        result = figure5(rows_grid=[200, 400], queries=2, k=4)
        assert result.figure == "fig5"
        assert result.x_values == [200, 400]
        assert set(result.series) == {"UNaive", "UBasic", "UOnePass", "UProbe"}
        for series in result.series.values():
            assert len(series) == 2

    def test_figure6_shape(self):
        result = figure6(k_grid=[1, 5], rows=300, queries=2)
        assert result.x_values == [1, 5]
        assert all(len(v) == 2 for v in result.series.values())

    def test_figure6_with_multq(self):
        result = figure6(k_grid=[2], rows=200, queries=2, include_multq=True)
        assert "MultQ" in result.series

    def test_figure7_shape(self):
        result = figure7(buckets=(0.2, 0.8), rows=300, queries=4)
        # Empty buckets are dropped; whatever remains is a subset in order.
        assert set(result.x_values) <= {0.2, 0.8}
        assert result.x_values
        assert "queries_per_bucket" in result.meta
        assert all(count > 0 for count in result.meta["queries_per_bucket"])

    def test_figure8_shape(self):
        result = figure8(k_grid=[1, 3], rows=300, queries=2)
        assert set(result.series) == {"SNaive", "SBasic", "SOnePass", "SProbe"}

    def test_summary_shape(self):
        result = summary_table(rows=300, queries=2, k=3)
        assert "MultQ" in result.series and "SProbe" in result.series

    def test_ablation_probe_counts_under_bound(self):
        result = ablation_probe_counts(k_grid=[2, 5], rows=300, queries=4)
        measured = result.series["measured next() calls"]
        bound = result.series["2k bound"]
        assert all(m <= b for m, b in zip(measured, bound))

    def test_ablation_backend(self):
        result = ablation_backend(rows=300, queries=2, k=3)
        assert "UProbe/array" in result.series
        assert "UProbe/bptree" in result.series

    def test_ablation_skipping(self):
        result = ablation_skipping(k_grid=[3], rows=300, queries=2)
        assert set(result.series) == {"UOnePass", "UOnePassNoSkip"}

    def test_registry_complete(self):
        assert set(ALL_FIGURES) == {
            "fig5", "fig6", "fig7", "fig8", "summary",
            "abl-probes", "abl-backend", "abl-skip", "abl-cxk",
        }

    def test_ablation_cxk(self):
        from repro.bench.figures import ablation_cxk

        result = ablation_cxk(c_values=(1, 4), rows=300, queries=3, k=4)
        assert set(result.series) == {"retrieve-c*k + MMR", "UProbe (exact)"}
        assert result.series["UProbe (exact)"] == [0.0, 0.0]


class TestReport:
    @pytest.fixture
    def result(self):
        return FigureResult(
            figure="figX",
            title="Demo",
            x_label="k",
            x_values=[1, 2],
            series={"A": [0.5, 1.0], "B": [0.25, 0.75]},
            meta={"rows": 10},
        )

    def test_render_text(self, result):
        text = render_text(result)
        assert "figX" in text and "Demo" in text
        assert "0.5000" in text and "rows=10" in text

    def test_csv(self, result, tmp_path):
        text = to_csv_string(result)
        assert text.splitlines()[0] == "k,A,B"
        assert text.splitlines()[1] == "1,0.5,0.25"
        path = tmp_path / "fig.csv"
        write_csv(result, path)
        assert path.read_text().startswith("k,A,B")

    def test_row_pairs(self, result):
        rows = result.row_pairs()
        assert rows[0] == (1, {"A": 0.5, "B": 0.25})


class TestCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "abl-skip" in out

    def test_unknown_figure(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
