"""Tests for the one-pass algorithms (Section III): the OnePassTree data
structure, the skip rule, and oracle equivalence on randomized inputs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dewey import LEFT, successor
from repro.core.onepass import OnePassTree, one_pass_scored, one_pass_unscored
from repro.core.ordering import DiversityOrdering
from repro.core.similarity import is_diverse, is_scored_diverse
from repro.index.inverted import InvertedIndex
from repro.index.merged import MergedList
from repro.query.evaluate import res, scored_res
from repro.query.parser import parse_query

from .conftest import RANDOM_ORDERING, random_query, random_relation


class TestOnePassTree:
    def test_add_and_counts(self):
        tree = OnePassTree(depth=3, k=5)
        tree.add((0, 0, 0))
        tree.add((0, 1, 0))
        tree.add((1, 0, 0))
        assert tree.num_items() == 3
        assert tree.results() == [(0, 0, 0), (0, 1, 0), (1, 0, 0)]

    def test_add_duplicate_ignored(self):
        tree = OnePassTree(depth=2, k=3)
        tree.add((0, 0))
        tree.add((0, 0))
        assert tree.num_items() == 1

    def test_add_wrong_depth(self):
        tree = OnePassTree(depth=3, k=3)
        with pytest.raises(ValueError):
            tree.add((0, 0))

    def test_remove_picks_most_redundant(self):
        tree = OnePassTree(depth=3, k=3)
        tree.add((0, 0, 0))
        tree.add((0, 0, 1))  # two under the same branch
        tree.add((1, 0, 0))
        victim = tree.remove()
        assert victim in [(0, 0, 0), (0, 0, 1)]
        assert tree.num_items() == 2

    def test_remove_respects_scores(self):
        tree = OnePassTree(depth=2, k=3)
        tree.add((0, 0), score=5.0)
        tree.add((0, 1), score=5.0)
        tree.add((1, 0), score=1.0)
        # The only minimum-score leaf is (1, 0), despite (0, *) crowding.
        assert tree.remove() == (1, 0)

    def test_remove_empty(self):
        assert OnePassTree(depth=2, k=1).remove() is None

    def test_min_score(self):
        tree = OnePassTree(depth=2, k=2)
        with pytest.raises(ValueError):
            tree.min_score()
        tree.add((0, 0), score=2.0)
        tree.add((1, 0), score=7.0)
        assert tree.min_score() == 2.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            OnePassTree(depth=0, k=1)
        with pytest.raises(ValueError):
            OnePassTree(depth=1, k=-1)

    def test_skip_terminates_when_nothing_helps(self):
        """k singletons in distinct branches: no future item can help."""
        tree = OnePassTree(depth=2, k=2)
        tree.add((0, 0))
        tree.add((1, 0))
        assert tree.get_skip_id((1, 0)) is None

    def test_skip_jumps_over_saturated_branch(self):
        """Two kept under one branch: a *new* branch helps, deeper items in
        the current branch do not -> skip to the next branch."""
        tree = OnePassTree(depth=3, k=2)
        tree.add((0, 0, 0))
        tree.add((0, 1, 0))
        skip = tree.get_skip_id((0, 1, 0))
        assert skip == (1, 0, 0)

    def test_skip_stays_inside_underfull_branch(self):
        """A donor elsewhere means deeper insertions still help."""
        tree = OnePassTree(depth=2, k=3)
        tree.add((0, 0))
        tree.add((0, 1))
        tree.add((1, 0))
        # Scanning inside branch 1; branch 0 holds 2 >= 0+2... donor for
        # *new sibling branches*, and for deeper items of branch 1 only if
        # count(0) >= count(1) + 2, which is 2 >= 3: false -> new branch only.
        skip = tree.get_skip_id((1, 0))
        assert skip == (2, 0)

    def test_skip_successor_when_ancestor_donor_strong(self):
        tree = OnePassTree(depth=2, k=4)
        tree.add((0, 0))
        tree.add((0, 1))
        tree.add((0, 2))
        tree.add((1, 0))
        # Branch 0 has 3 >= 1+2: anything below branch 1 helps.
        assert tree.get_skip_id((1, 0)) == (1, 1)


def oracle_deweys(relation, index, query):
    return [index.dewey.dewey_of(rid) for rid in res(relation, query)]


class TestOnePassOnFigure1:
    def test_low_query_narrative(self, cars, cars_index):
        """Section III-C: query 'Low', k=3 -> one Civic and two distinct
        Toyota models (or two Civic colors and one Toyota; both diverse —
        the scan direction makes Hondas first)."""
        query = parse_query("Description CONTAINS 'Low'")
        merged = MergedList(query, cars_index)
        got = one_pass_unscored(merged, 3)
        full = oracle_deweys(cars, cars_index, query)
        assert is_diverse(got, full, 3)
        makes = {d[0] for d in got}
        assert len(makes) == 2  # both Honda and Toyota represented

    def test_match_all(self, cars, cars_index):
        merged = MergedList(parse_query(""), cars_index)
        got = one_pass_unscored(merged, 5)
        assert is_diverse(got, list(cars_index.all_postings()), 5)

    def test_k_zero(self, cars_index):
        merged = MergedList(parse_query(""), cars_index)
        assert one_pass_unscored(merged, 0) == []
        assert one_pass_scored(merged, 0) == {}

    def test_fewer_matches_than_k(self, cars, cars_index):
        query = parse_query("Description CONTAINS 'rare'")
        merged = MergedList(query, cars_index)
        got = one_pass_unscored(merged, 10)
        assert len(got) == 1

    def test_no_matches(self, cars_index):
        merged = MergedList(parse_query("Make = 'Tesla'"), cars_index)
        assert one_pass_unscored(merged, 3) == []
        assert one_pass_scored(merged, 3) == {}

    def test_skipping_does_not_change_results_quality(self, cars, cars_index):
        query = parse_query("Make = 'Honda'")
        full = oracle_deweys(cars, cars_index, query)
        for k in (1, 2, 3, 5, 8, 11, 20):
            with_skips = one_pass_unscored(MergedList(query, cars_index), k)
            without = one_pass_unscored(
                MergedList(query, cars_index), k, use_skips=False
            )
            assert is_diverse(with_skips, full, k)
            assert is_diverse(without, full, k)

    def test_skipping_reduces_probes(self, cars, cars_index):
        query = parse_query("Make = 'Honda'")
        fast = MergedList(query, cars_index)
        one_pass_unscored(fast, 2)
        slow = MergedList(query, cars_index)
        one_pass_unscored(slow, 2, use_skips=False)
        assert fast.next_calls <= slow.next_calls

    def test_scored_prefers_high_scores(self, cars, cars_index):
        query = parse_query(
            "Make = 'Toyota' [2] OR Description CONTAINS 'miles' [1]"
        )
        merged = MergedList(query, cars_index)
        got = one_pass_scored(merged, 4)
        # The four Toyotas score 3; everything else scores at most 1.
        assert sorted(got.values()) == [3.0, 3.0, 3.0, 3.0]

    def test_scored_diversifies_ties(self, cars, cars_index):
        query = parse_query("Year = 2007")
        merged = MergedList(query, cars_index)
        got = one_pass_scored(merged, 5)
        sres = {
            cars_index.dewey.dewey_of(rid): score
            for rid, score in scored_res(cars, parse_query("Year = 2007"))
        }
        assert is_scored_diverse(list(got), sres, 5)


@settings(max_examples=120, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_000_000),
    st.integers(min_value=1, max_value=10),
)
def test_unscored_oracle_equivalence(seed, k):
    """Property: the one-pass result is always a diverse result set of the
    full evaluation (Definition 2), on random relations and queries."""
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=45)
    index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
    query = random_query(rng)
    merged = MergedList(query, index)
    got = one_pass_unscored(merged, k)
    full = [index.dewey.dewey_of(rid) for rid in res(relation, query)]
    assert is_diverse(got, full, k)


@settings(max_examples=120, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_000_000),
    st.integers(min_value=1, max_value=10),
)
def test_scored_oracle_equivalence(seed, k):
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=45)
    index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
    query = random_query(rng, weighted=True)
    merged = MergedList(query, index)
    got = one_pass_scored(merged, k)
    sres = {
        index.dewey.dewey_of(rid): score
        for rid, score in scored_res(relation, query)
    }
    assert is_scored_diverse(list(got), sres, k)
    for dewey, score in got.items():
        assert score == pytest.approx(sres[dewey])


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000))
def test_single_pass_property(seed):
    """The scan never revisits: Dewey IDs requested from the merged list are
    strictly increasing (the defining property of a one-pass algorithm)."""
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=40)
    index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
    query = random_query(rng)

    requested = []
    merged = MergedList(query, index)
    original = merged.next

    def spy(bound, direction=LEFT):
        requested.append(bound)
        return original(bound, direction)

    merged.next = spy
    one_pass_unscored(merged, 5)
    assert requested == sorted(requested)
