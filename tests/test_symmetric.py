"""Tests for the symmetric score/diversity trade-off (Section VII)."""

import itertools

import pytest

from repro.core.symmetric import (
    SymmetricObjective,
    greedy_symmetric_select,
    hierarchy_level_weights,
    symmetric_search,
    uniform_level_weights,
)


class TestObjective:
    def test_value_counts_coverage_once(self):
        objective = SymmetricObjective([10.0, 1.0, 0.0])
        scores = {(0, 0, 0): 1.0, (0, 1, 0): 1.0, (1, 0, 0): 1.0}
        # Two items in branch 0: one level-1 prefix, two level-2 prefixes.
        value = objective.value([(0, 0, 0), (0, 1, 0)], scores)
        assert value == pytest.approx(2.0 + 10.0 + 2.0)

    def test_coverage_gain_shrinks(self):
        objective = SymmetricObjective([5.0, 1.0])
        covered = set()
        first = objective.coverage_gain(covered, (0, 0))
        objective.cover(covered, (0, 0))
        second = objective.coverage_gain(covered, (0, 1))
        assert first == 6.0 and second == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SymmetricObjective([])
        with pytest.raises(ValueError):
            SymmetricObjective([-1.0])


class TestGreedySelect:
    def test_zero_weights_reduce_to_topk(self):
        objective = SymmetricObjective([0.0, 0.0, 0.0])
        scores = {(0, 0, 0): 5.0, (0, 1, 0): 4.0, (1, 0, 0): 1.0}
        chosen = greedy_symmetric_select(scores, 2, objective)
        assert sorted(chosen) == [(0, 0, 0), (0, 1, 0)]

    def test_diversity_across_scores(self):
        """The promised behaviour: a weaker tuple from an unrepresented
        branch beats a stronger near-duplicate — impossible under the
        paper's lexicographic definition."""
        objective = SymmetricObjective([10.0, 0.0, 0.0])
        scores = {
            (0, 0, 0): 9.0,   # strong
            (0, 0, 1): 8.0,   # strong near-duplicate
            (1, 0, 0): 3.0,   # weak but novel branch
        }
        chosen = greedy_symmetric_select(scores, 2, objective)
        assert sorted(chosen) == [(0, 0, 0), (1, 0, 0)]

    def test_matches_bruteforce_on_small_instances(self):
        objective = SymmetricObjective([4.0, 1.5, 0.0])
        scores = {
            (0, 0, 0): 2.0, (0, 0, 1): 1.0, (0, 1, 0): 1.5,
            (1, 0, 0): 0.5, (1, 1, 0): 2.5, (2, 0, 0): 0.25,
        }
        for k in (1, 2, 3, 4):
            chosen = greedy_symmetric_select(scores, k, objective)
            got = objective.value(chosen, scores)
            best = max(
                objective.value(combo, scores)
                for combo in itertools.combinations(scores, k)
            )
            # Greedy is (1 - 1/e)-approximate in general; on these small
            # instances it should be exact.
            assert got == pytest.approx(best)

    def test_k_bounds(self):
        objective = SymmetricObjective([1.0])
        assert greedy_symmetric_select({}, 3, objective) == []
        assert greedy_symmetric_select({(0, 0): 1.0}, 0, objective) == []
        with pytest.raises(ValueError):
            greedy_symmetric_select({(0, 0): 1.0}, -1, objective)

    def test_deterministic(self):
        objective = SymmetricObjective([2.0, 0.0])
        scores = {(0, 0): 1.0, (1, 0): 1.0, (2, 0): 1.0}
        a = greedy_symmetric_select(scores, 2, objective)
        b = greedy_symmetric_select(dict(reversed(list(scores.items()))), 2, objective)
        assert a == b


class TestWeightHelpers:
    def test_uniform(self):
        assert uniform_level_weights(4, 2.0) == [2.0, 2.0, 2.0, 0.0]

    def test_hierarchy_decays(self):
        weights = hierarchy_level_weights(4, top=8.0, decay=0.5)
        assert weights == [8.0, 4.0, 2.0, 0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_level_weights(0, 1.0)
        with pytest.raises(ValueError):
            hierarchy_level_weights(3, 1.0, decay=0.0)


class TestSymmetricSearch:
    def test_spreads_makes_despite_score_gap(self, cars_engine):
        results = symmetric_search(
            cars_engine,
            "Make = 'Honda' [2] OR Description CONTAINS 'miles' [1]",
            k=4,
            strength=5.0,
        )
        makes = {cars_engine.index.dewey.values_of(d)[0] for d, _ in results}
        # Hondas outscore Toyotas 3-to-1, yet coverage pulls a Toyota in.
        assert makes == {"Honda", "Toyota"}

    def test_zero_strength_is_score_only(self, cars_engine):
        results = symmetric_search(
            cars_engine,
            "Make = 'Honda' [2] OR Description CONTAINS 'miles' [1]",
            k=4,
            level_weights=[0.0] * cars_engine.index.depth,
        )
        # All four picks satisfy both predicates (score 3): Honda Civics.
        assert all(score == 3.0 for _, score in results)
