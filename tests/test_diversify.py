"""Tests for the exact diversifiers (the Naive post-processing / oracle)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diversify import diverse_subset, scored_diverse_subset
from repro.core.similarity import is_diverse, is_scored_diverse


def random_ids(rng, n, fanout=3, depth=3):
    ids = set()
    for i in range(n):
        ids.add(tuple(rng.randint(0, fanout - 1) for _ in range(depth)) + (i,))
    return sorted(ids)


class TestDiverseSubset:
    def test_figure1_narrative(self):
        """Query 'Low' over Figure 1, k=3: one Honda (Civic) and two
        Toyotas — or two and one; either way all distinct models."""
        # 5 Civics under Honda, 4 distinct Toyota models (Fig. 3 shape).
        ids = [(0, 0, c, 0) for c in range(5)] + [(1, m, 0, 0) for m in range(4)]
        chosen = diverse_subset(ids, 3)
        makes = [d[0] for d in chosen]
        assert sorted(makes) in ([0, 0, 1], [0, 1, 1])
        toyotas = [d for d in chosen if d[0] == 1]
        assert len({d[1] for d in toyotas}) == len(toyotas)

    def test_k_larger_than_population(self):
        ids = [(0, 0), (1, 0)]
        assert diverse_subset(ids, 10) == ids

    def test_k_zero(self):
        assert diverse_subset([(0, 0)], 0) == []

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            diverse_subset([(0, 0)], -1)

    def test_deterministic(self):
        rng = random.Random(5)
        ids = random_ids(rng, 20)
        assert diverse_subset(ids, 7) == diverse_subset(list(reversed(ids)), 7)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_output_is_diverse(self, seed):
        rng = random.Random(seed)
        ids = random_ids(rng, rng.randint(1, 25))
        k = rng.randint(0, len(ids) + 2)
        chosen = diverse_subset(ids, k)
        assert len(chosen) == min(k, len(ids))
        assert is_diverse(chosen, ids, k)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_nested_extraction(self, seed):
        """Water-filling nestedness: a diverse k-subset's objective can only
        improve as k shrinks (sanity of the one-pass cap argument)."""
        rng = random.Random(seed)
        ids = random_ids(rng, rng.randint(2, 15))
        for k in range(len(ids), 0, -1):
            assert is_diverse(diverse_subset(ids, k), ids, k)


class TestScoredDiverseSubset:
    def test_unique_scores_reduce_to_topk(self):
        scores = {(0, 0, i): float(i) for i in range(6)}
        chosen = scored_diverse_subset(scores, 3)
        assert sorted(chosen) == [(0, 0, 3), (0, 0, 4), (0, 0, 5)]

    def test_uniform_scores_reduce_to_unscored(self):
        ids = [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 0)]
        scores = {d: 1.0 for d in ids}
        chosen = scored_diverse_subset(scores, 2)
        assert is_diverse(chosen, ids, 2)
        assert {d[0] for d in chosen} == {0, 1}

    def test_forced_plus_tier(self):
        scores = {(0, 0, 0): 9.0, (0, 1, 0): 1.0, (1, 0, 0): 1.0, (1, 1, 0): 1.0}
        chosen = scored_diverse_subset(scores, 2)
        assert (0, 0, 0) in chosen
        # The remaining slot goes to the other branch.
        assert any(d[0] == 1 for d in chosen)

    def test_k_zero_and_overflow(self):
        scores = {(0, 0): 1.0}
        assert scored_diverse_subset(scores, 0) == []
        assert scored_diverse_subset(scores, 5) == [(0, 0)]

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            scored_diverse_subset({(0, 0): 1.0}, -2)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_output_is_scored_diverse(self, seed):
        rng = random.Random(seed)
        ids = random_ids(rng, rng.randint(1, 20))
        scores = {d: float(rng.randint(1, 4)) for d in ids}
        k = rng.randint(1, len(ids))
        chosen = scored_diverse_subset(scores, k)
        assert is_scored_diverse(chosen, scores, k)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_total_score_matches_topk(self, seed):
        rng = random.Random(seed)
        ids = random_ids(rng, rng.randint(1, 15))
        scores = {d: float(rng.randint(1, 3)) for d in ids}
        k = rng.randint(1, len(ids))
        chosen = scored_diverse_subset(scores, k)
        best = sum(sorted(scores.values(), reverse=True)[:k])
        assert sum(scores[d] for d in chosen) == pytest.approx(best)
