"""Chaos differential suite: the fault story of the sharded engine.

Three contracts, each under deterministic (seeded) fault injection:

1. **Transient faults are invisible.**  With transient-only chaos and
   retries enabled, every algorithm (all 5, scored and unscored) returns
   answers bit-identical to a fault-free unsharded engine — the retries
   re-run deterministic work, so nothing leaks into the results.
2. **Hard faults degrade or fail fast, per strategy.**  With one shard
   crashed, the scatter-gather algorithms return ``degraded=True``
   answers that are *verified* diverse (Definitions 1-2) over the rows of
   the surviving shards; the coordinator-driven scan algorithms raise a
   structured :class:`ShardUnavailableError` naming the dead shard.
3. **Deadlines bound waiting.**  A shard slower than the deadline is
   dropped from the gather fan-out (degraded answer from the fast
   shards); when nothing can answer in time the query fails with
   :class:`DeadlineExceededError`.
"""

from __future__ import annotations

import random

import pytest

from repro import DiversityEngine, Query
from repro.core import baselines
from repro.core.engine import ALGORITHMS
from repro.core.similarity import is_diverse, is_scored_diverse
from repro.index.merged import MergedList
from repro.resilience import (
    ChaosPolicy,
    DeadlineExceededError,
    ResiliencePolicy,
    ShardFaultSpec,
    ShardUnavailableError,
)
from repro.sharding import ShardedEngine

from .conftest import RANDOM_ORDERING, random_query, random_relation

SHARD_COUNTS = [2, 4]
K_VALUES = [1, 3, 7]

#: Retries generous, backoff microscopic, breaker disabled (min_calls above
#: the window means the failure rate is never trusted): the policy under
#: which transient chaos must be *perfectly* transparent.
TRANSPARENT = ResiliencePolicy(
    max_retries=10,
    backoff_base_ms=0.01,
    backoff_cap_ms=0.05,
    breaker_window=8,
    breaker_min_calls=9,
)

#: Same retry posture but breakers armed with a tiny cooldown, for the
#: crash tests that exercise skip-vs-drop behaviour.
ARMED = ResiliencePolicy(
    max_retries=2,
    backoff_base_ms=0.01,
    backoff_cap_ms=0.05,
    breaker_threshold=0.5,
    breaker_window=4,
    breaker_min_calls=2,
    breaker_cooldown_ms=50.0,
)

GATHER = [("naive", False), ("naive", True), ("basic", False)]
SCAN = [("onepass", False), ("onepass", True), ("probe", False),
        ("probe", True), ("basic", True), ("multq", False), ("multq", True)]


def _payload(result):
    return [
        (item.dewey, item.rid, tuple(sorted(item.values.items())), item.score)
        for item in result
    ]


def _surviving_matches(engine: ShardedEngine, query, dead: set,
                       scored: bool = False):
    """All matches reachable without the dead shards (chaos bypassed)."""
    matches = {} if scored else []
    for shard_id, shard in enumerate(engine.sharded_index.shards):
        if shard_id in dead:
            continue
        merged = MergedList(query, getattr(shard, "inner", shard))
        if scored:
            matches.update(baselines.collect_all_scored(merged))
        else:
            matches.extend(baselines.collect_all(merged))
    return matches


# ----------------------------------------------------------------------
# 1. Transient faults + retries: bit-identical to fault-free unsharded
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_transient_chaos_with_retries_is_invisible(shards):
    rng = random.Random(600 + shards)
    relation = random_relation(rng, max_rows=50)
    reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
    engine = ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=shards, policy=TRANSPARENT
    )
    engine.inject_chaos(ChaosPolicy.transient(0.10, seed=shards))
    for trial in range(4):
        query = random_query(rng, weighted=rng.random() < 0.5)
        k = rng.choice(K_VALUES)
        for algorithm in ALGORITHMS:
            for scored in (False, True):
                expected = reference.search(query, k, algorithm=algorithm,
                                            scored=scored)
                actual = engine.search(query, k, algorithm=algorithm,
                                       scored=scored)
                assert _payload(actual) == _payload(expected), (
                    f"shards={shards} algorithm={algorithm} scored={scored} "
                    f"k={k} query={query!r}"
                )
                assert not actual.stats.get("degraded")
    # The chaos actually fired: this suite is only meaningful if faults
    # were injected and retried through.
    chaos = engine.sharded_index.chaos
    assert chaos.injected["transient"] > 0


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_transient_chaos_is_deterministic(shards):
    """Same seed, same faults, same retry counts — reproducible chaos."""
    rng = random.Random(77)
    relation = random_relation(rng, max_rows=40)
    queries = [random_query(random.Random(5 + i)) for i in range(6)]

    def run():
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=shards, policy=TRANSPARENT
        )
        engine.inject_chaos(ChaosPolicy.transient(0.15, seed=99))
        outcomes = []
        for query in queries:
            result = engine.search(query, 5, algorithm="naive")
            outcomes.append((_payload(result), result.stats["retries"]))
        return outcomes, dict(engine.sharded_index.chaos.injected)

    first, first_injected = run()
    second, second_injected = run()
    assert first == second
    assert first_injected == second_injected
    assert first_injected["transient"] > 0


# ----------------------------------------------------------------------
# 2. One shard hard-killed: gather degrades, scan fails fast
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_crashed_shard_degrades_gather_algorithms(shards):
    rng = random.Random(700 + shards)
    relation = random_relation(rng, max_rows=60)
    engine = ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=shards, policy=TRANSPARENT
    )
    dead = shards - 1
    engine.inject_chaos(ChaosPolicy.crash_shards(dead))
    for trial in range(6):
        query = random_query(rng)
        k = rng.choice(K_VALUES)
        for algorithm, scored in GATHER:
            result = engine.search(query, k, algorithm=algorithm, scored=scored)
            assert result.stats["degraded"] is True
            assert result.stats["shards_failed"] == 1
            assert result.stats["shards_total"] == shards
            if algorithm == "naive" and not scored:
                # The degraded answer is still a valid Definitions 1-2
                # diverse top-k over the reachable rows.
                survivors = _surviving_matches(engine, query, {dead})
                assert is_diverse(result.deweys, survivors, k)
            elif algorithm == "naive" and scored:
                survivors = _surviving_matches(engine, query, {dead},
                                               scored=True)
                assert is_scored_diverse(result.deweys, survivors, k)
            else:  # unscored basic: global first-k of the reachable rows
                survivors = sorted(_surviving_matches(engine, query, {dead}))
                assert result.deweys == survivors[:k]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_crashed_shard_fails_scan_algorithms_fast(shards):
    rng = random.Random(800 + shards)
    relation = random_relation(rng, max_rows=60)
    engine = ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=shards, policy=TRANSPARENT
    )
    dead = 0
    engine.inject_chaos(ChaosPolicy.crash_shards(dead))
    # Queries that must read every shard (match-all, and a disjunction over
    # non-level-1 attributes whose union views fan out).  A level-1 scalar
    # query routes to one shard and may legitimately miss the dead one.
    queries = [
        Query.match_all(),
        Query.disjunction(
            Query.scalar("model", "m1"), Query.scalar("color", "red")
        ),
    ]
    for query in queries:
        for algorithm, scored in SCAN:
            with pytest.raises(ShardUnavailableError) as excinfo:
                engine.search(query, 5, algorithm=algorithm, scored=scored)
            assert dead in excinfo.value.failures
            assert excinfo.value.shards_total == shards
            assert dead in excinfo.value.shards_lost


def test_all_shards_crashed_raises_even_for_gather():
    rng = random.Random(31)
    relation = random_relation(rng, max_rows=30)
    engine = ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=3, policy=TRANSPARENT
    )
    engine.inject_chaos(ChaosPolicy.crash_shards(0, 1, 2))
    with pytest.raises(ShardUnavailableError) as excinfo:
        engine.search(random_query(rng), 5, algorithm="naive")
    assert excinfo.value.shards_lost == [0, 1, 2]
    assert all(reason == "crashed" for reason in excinfo.value.failures.values())


def test_breaker_opens_on_crashed_shard_and_skips_it():
    """Repeated hard failures trip the breaker: later queries skip the
    shard (reason 'circuit open') instead of re-probing the corpse."""
    rng = random.Random(37)
    relation = random_relation(rng, max_rows=40)
    engine = ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=3, policy=ARMED
    )
    engine.inject_chaos(ChaosPolicy.crash_shards(1))
    for _ in range(4):
        result = engine.search(random_query(rng), 5, algorithm="naive")
        assert result.stats["degraded"] is True
    assert engine.health.breakers[1].state == "open"
    assert engine.health[1].hard_failures >= 2
    before = engine.health[1].requests
    result = engine.search(random_query(rng), 5, algorithm="naive")
    assert result.stats["degraded"] is True
    assert engine.health[1].requests == before  # skipped, not re-probed
    assert engine.health[1].skipped_open >= 1
    # Scan algorithms fail fast on the open circuit without touching it.
    with pytest.raises(ShardUnavailableError) as excinfo:
        engine.search(random_query(rng), 5, algorithm="probe")
    assert excinfo.value.failures == {1: "circuit open"}


def test_revived_shard_recovers_through_half_open():
    """Cooldown -> half-open trial -> closed: the deployment heals."""
    rng = random.Random(41)
    relation = random_relation(rng, max_rows=40)
    engine = ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=2, policy=ARMED
    )
    chaos = engine.inject_chaos(ChaosPolicy.crash_shards(1))
    reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
    query = random_query(rng)
    while engine.health.breakers[1].state != "open":
        engine.search(query, 5, algorithm="naive")
    chaos.revive(1)
    import time

    time.sleep(0.06)  # past ARMED's 50 ms cooldown -> half-open
    result = engine.search(query, 5, algorithm="naive")  # trial call succeeds
    assert result.stats["degraded"] is False
    assert engine.health.breakers[1].state == "closed"
    full = engine.search(query, 5, algorithm="naive")
    expected = reference.search(query, 5, algorithm="naive")
    assert _payload(full) == _payload(expected)


# ----------------------------------------------------------------------
# 3. Deadlines
# ----------------------------------------------------------------------
def test_slow_shard_is_dropped_at_deadline_in_threaded_gather():
    rng = random.Random(43)
    relation = random_relation(rng, max_rows=50)
    policy = ResiliencePolicy(
        deadline_ms=80.0, max_retries=0,
        breaker_window=8, breaker_min_calls=9,
    )
    with ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=3, workers=3, policy=policy
    ) as engine:
        engine.inject_chaos(ChaosPolicy.slow_shards(400.0, 2))
        query = random_query(rng)
        result = engine.search(query, 5, algorithm="naive")
        assert result.stats["degraded"] is True
        assert result.stats["shards_failed"] == 1
        assert result.stats["deadline_ms"] == 80.0
        survivors = _surviving_matches(engine, query, {2})
        assert is_diverse(result.deweys, survivors, 5)
        assert engine.health[2].deadline_drops >= 1


def test_everything_slow_raises_deadline_exceeded():
    rng = random.Random(47)
    relation = random_relation(rng, max_rows=30)
    policy = ResiliencePolicy(deadline_ms=60.0, max_retries=0)
    with ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=2, workers=2, policy=policy
    ) as engine:
        engine.inject_chaos(ChaosPolicy.slow_shards(500.0))
        with pytest.raises(DeadlineExceededError) as excinfo:
            engine.search(random_query(rng), 5, algorithm="naive")
        assert excinfo.value.deadline_ms == 60.0
        assert excinfo.value.elapsed_ms >= 0.0


def test_scan_deadline_cuts_retry_storm():
    """A scan stuck in transient retries gives up when the budget is gone
    rather than retrying forever."""
    rng = random.Random(53)
    relation = random_relation(rng, max_rows=30)
    policy = ResiliencePolicy(
        deadline_ms=40.0, max_retries=1000,
        backoff_base_ms=30.0, backoff_multiplier=1.0, jitter=0.0,
        breaker_window=8, breaker_min_calls=9,
    )
    engine = ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=2, policy=policy
    )
    engine.inject_chaos(ChaosPolicy.transient(1.0, seed=1))  # always flaky
    with pytest.raises(DeadlineExceededError):
        engine.search(random_query(rng), 5, algorithm="probe")


# ----------------------------------------------------------------------
# Mutations keep working under chaos (routing is control-plane)
# ----------------------------------------------------------------------
def test_mutations_survive_chaos_and_answers_recover():
    # Two identical relations (same seed): mutating through one engine must
    # not leak into the other's copy.
    reference = DiversityEngine.from_relation(
        random_relation(random.Random(59), max_rows=30), RANDOM_ORDERING
    )
    engine = ShardedEngine.from_relation(
        random_relation(random.Random(59), max_rows=30),
        RANDOM_ORDERING, shards=3, policy=TRANSPARENT,
    )
    chaos = engine.inject_chaos(ChaosPolicy.crash_shards(0))
    row = ("A", "m1", "red", "fun clean")
    assert reference.insert(row) == engine.insert(row)  # mutation uninjected
    chaos.revive(0)
    rng = random.Random(61)
    query = random_query(rng)
    for algorithm in ALGORITHMS:
        a = reference.search(query, 5, algorithm=algorithm)
        b = engine.search(query, 5, algorithm=algorithm)
        assert _payload(a) == _payload(b)
