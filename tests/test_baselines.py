"""Tests for the Section V baselines: Naive, Basic, MultQ."""

import pytest

from repro.core import baselines
from repro.core.similarity import is_diverse, is_scored_diverse
from repro.index.merged import MergedList
from repro.query.evaluate import res, scored_res
from repro.query.parser import parse_query


class TestCollect:
    def test_collect_all_matches_reference(self, cars, cars_index):
        query = parse_query("Make = 'Honda'")
        merged = MergedList(query, cars_index)
        got = baselines.collect_all(merged)
        expected = sorted(cars_index.dewey.dewey_of(r) for r in res(cars, query))
        assert got == expected

    def test_collect_all_scored(self, cars, cars_index):
        query = parse_query("Make = 'Toyota' [2] OR Year = 2007")
        merged = MergedList(query, cars_index)
        got = baselines.collect_all_scored(merged)
        expected = {
            cars_index.dewey.dewey_of(r): s for r, s in scored_res(cars, query)
        }
        assert got == expected


class TestNaive:
    def test_unscored_is_diverse(self, cars, cars_index):
        query = parse_query("Year = 2007")
        merged = MergedList(query, cars_index)
        got = baselines.naive_unscored(merged, 8)
        full = [cars_index.dewey.dewey_of(r) for r in res(cars, query)]
        assert is_diverse(got, full, 8)

    def test_scored_is_diverse(self, cars, cars_index):
        query = parse_query("Make = 'Toyota' [2] OR Description CONTAINS 'miles'")
        merged = MergedList(query, cars_index)
        got = baselines.naive_scored(merged, 5)
        sres = {
            cars_index.dewey.dewey_of(r): s for r, s in scored_res(cars, query)
        }
        assert is_scored_diverse(list(got), sres, 5)


class TestBasic:
    def test_unscored_returns_first_k_in_document_order(self, cars_index):
        merged = MergedList(parse_query("Make = 'Honda'"), cars_index)
        got = baselines.basic_unscored(merged, 3)
        everything = list(cars_index.scalar_postings("Make", "Honda"))
        assert got == everything[:3]

    def test_unscored_no_diversity_guarantee(self, cars, cars_index):
        """Basic's whole point: with many Civics up front it returns near
        duplicates (the bottom relation of Figure 1(b))."""
        merged = MergedList(parse_query("Description CONTAINS 'Low'"), cars_index)
        got = baselines.basic_unscored(merged, 3)
        models = {cars_index.dewey.values_of(d)[1] for d in got}
        assert models == {"Civic"}

    def test_scored_is_wand_topk(self, cars, cars_index):
        query = parse_query("Make = 'Toyota' [2] OR Description CONTAINS 'miles'")
        merged = MergedList(query, cars_index)
        got = baselines.basic_scored(merged, 4)
        assert sorted(got.values()) == [3.0, 3.0, 3.0, 3.0]


class TestMultQ:
    def test_issues_one_query_per_value_combination(self, cars, cars_index):
        query = parse_query("Description CONTAINS 'miles'")
        got, issued = baselines.multq_unscored(cars_index, query, 3, levels=1)
        # One sub-query per distinct Make.
        assert issued == 2
        full = [cars_index.dewey.dewey_of(r) for r in res(cars, query)]
        assert is_diverse(got, full, 3)

    def test_two_levels_explode_combinatorially(self, cars, cars_index):
        query = parse_query("Year = 2007")
        got, issued = baselines.multq_unscored(cars_index, query, 5, levels=2)
        # Make x Model over the *global* vocabulary: 2 makes x 8 models,
        # including empty combos like Honda Prius (the paper's complaint).
        assert issued == 2 * 8
        full = [cars_index.dewey.dewey_of(r) for r in res(cars, query)]
        assert is_diverse(got, full, 5)

    def test_zero_k(self, cars_index):
        got, issued = baselines.multq_unscored(cars_index, parse_query(""), 0)
        assert got == [] and issued == 0

    def test_scored_multq(self, cars, cars_index):
        query = parse_query("Make = 'Toyota' [2] OR Description CONTAINS 'miles'")
        got, issued = baselines.multq_scored(cars_index, query, 4, levels=1)
        assert issued == 2
        sres = {
            cars_index.dewey.dewey_of(r): s for r, s in scored_res(cars, query)
        }
        assert is_scored_diverse(list(got), sres, 4)
        # Scores are the true query scores (rewrite predicates weigh 0).
        for dewey, score in got.items():
            assert score == pytest.approx(sres[dewey])
