"""Tests for tokenisation, posting lists, sibling dictionaries, the Dewey
index and the inverted index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dewey import MAX_COMPONENT
from repro.core.ordering import DiversityOrdering, OrderingError
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.index.dewey_index import DeweyIndex
from repro.index.dictionary import SiblingDictionary
from repro.index.inverted import InvertedIndex
from repro.index.postings import (
    ArrayPostingList,
    BTreePostingList,
    make_posting_list,
)
from repro.index.tokenize import contains_all, token_set, tokens
from repro.storage.relation import Relation
from repro.storage.schema import Schema


class TestTokenize:
    def test_basic(self):
        assert list(tokens("Low miles, ONE owner!")) == [
            "low",
            "miles",
            "one",
            "owner",
        ]

    def test_numbers_kept(self):
        assert "2007" in token_set("year 2007 model")

    def test_contains_all(self):
        assert contains_all("low miles, clean title", "LOW miles")
        assert not contains_all("low miles", "low price")

    def test_empty(self):
        assert token_set("") == frozenset()

    def test_non_string_coerced(self):
        assert list(tokens(2007)) == ["2007"]


class TestOrdering:
    def test_depth_includes_uniqueness_level(self):
        ordering = DiversityOrdering(["a", "b"])
        assert ordering.depth == 3

    def test_level_of_and_attribute_at(self):
        ordering = DiversityOrdering(["make", "model"])
        assert ordering.level_of("model") == 2
        assert ordering.attribute_at(1) == "make"

    def test_uniqueness_level_has_no_attribute(self):
        ordering = DiversityOrdering(["make"])
        with pytest.raises(OrderingError):
            ordering.attribute_at(2)

    def test_duplicates_rejected(self):
        with pytest.raises(OrderingError):
            DiversityOrdering(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(OrderingError):
            DiversityOrdering([])

    def test_unknown_attribute_for_level(self):
        ordering = DiversityOrdering(["make"])
        with pytest.raises(OrderingError):
            ordering.level_of("bogus")

    def test_validate_against_schema(self):
        ordering = DiversityOrdering(["make", "bogus"])
        schema = Schema.of(make="categorical")
        with pytest.raises(OrderingError):
            ordering.validate_against(schema)


POSTINGS = [(0, 0, 0), (0, 1, 0), (0, 1, 2), (2, 0, 1), (3, 3, 3)]


@pytest.mark.parametrize("backend_cls", [ArrayPostingList, BTreePostingList])
class TestPostingLists:
    def test_seek(self, backend_cls):
        postings = backend_cls(POSTINGS)
        assert postings.seek((0, 1, 0)) == (0, 1, 0)
        assert postings.seek((0, 1, 1)) == (0, 1, 2)
        assert postings.seek((9, 0, 0)) is None

    def test_seek_floor(self, backend_cls):
        postings = backend_cls(POSTINGS)
        assert postings.seek_floor((0, 1, 0)) == (0, 1, 0)
        assert postings.seek_floor((2, 0, 0)) == (0, 1, 2)
        assert postings.seek_floor((0, 0, 0)) == (0, 0, 0)
        assert postings.seek_floor((9, 9, 9)) == (3, 3, 3)

    def test_floor_before_first_is_none(self, backend_cls):
        postings = backend_cls([(5, 5)])
        assert postings.seek_floor((5, 4)) is None

    def test_first_last_len_iter(self, backend_cls):
        postings = backend_cls(POSTINGS)
        assert postings.first() == (0, 0, 0)
        assert postings.last() == (3, 3, 3)
        assert len(postings) == len(POSTINGS)
        assert list(postings) == sorted(POSTINGS)

    def test_contains(self, backend_cls):
        postings = backend_cls(POSTINGS)
        assert (2, 0, 1) in postings
        assert (2, 0, 2) not in postings

    def test_insert_idempotent(self, backend_cls):
        postings = backend_cls(POSTINGS)
        postings.insert((2, 0, 1))
        assert len(postings) == len(POSTINGS)
        postings.insert((1, 1, 1))
        assert len(postings) == len(POSTINGS) + 1
        assert (1, 1, 1) in postings

    def test_duplicates_deduped_at_build(self, backend_cls):
        postings = backend_cls([(1, 1), (1, 1), (2, 2)])
        assert len(postings) == 2

    def test_empty(self, backend_cls):
        postings = backend_cls([])
        assert postings.first() is None and postings.last() is None
        assert postings.seek((0,)) is None and postings.seek_floor((9,)) is None


def test_make_posting_list_backends():
    assert isinstance(make_posting_list([], "array"), ArrayPostingList)
    assert isinstance(make_posting_list([], "bptree"), BTreePostingList)
    with pytest.raises(ValueError):
        make_posting_list([], "hashmap")


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=0, max_size=40
    ),
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
)
def test_backends_agree(postings, probe):
    array = ArrayPostingList(postings)
    btree = BTreePostingList(postings, order=4)
    assert array.seek(probe) == btree.seek(probe)
    assert array.seek_floor(probe) == btree.seek_floor(probe)
    assert list(array) == list(btree)


class TestSiblingDictionary:
    def test_encode_assigns_dense_ids(self):
        dictionary = SiblingDictionary()
        assert dictionary.encode((), "Honda") == 0
        assert dictionary.encode((), "Toyota") == 1
        assert dictionary.encode((), "Honda") == 0

    def test_numbering_restarts_per_prefix(self):
        """Figure 2: numbering re-initialises to 0 at each level."""
        dictionary = SiblingDictionary()
        assert dictionary.encode((0,), "Civic") == 0
        assert dictionary.encode((1,), "Prius") == 0

    def test_decode(self):
        dictionary = SiblingDictionary()
        dictionary.encode((), "Honda")
        dictionary.encode((), "Toyota")
        assert dictionary.decode((), 1) == "Toyota"
        with pytest.raises(KeyError):
            dictionary.decode((), 5)
        with pytest.raises(KeyError):
            dictionary.decode((9,), 0)

    def test_lookup_without_allocation(self):
        dictionary = SiblingDictionary()
        assert dictionary.lookup((), "Honda") is None
        dictionary.encode((), "Honda")
        assert dictionary.lookup((), "Honda") == 0

    def test_fanout(self):
        dictionary = SiblingDictionary()
        dictionary.encode((), "a")
        dictionary.encode((), "b")
        assert dictionary.fanout(()) == 2
        assert dictionary.fanout((0,)) == 0


class TestDeweyIndex:
    def test_figure1_structure(self):
        """The built index reproduces the structure of Figure 2(b):
        Hondas share component 0, Toyotas component 1 (sorted order), and
        the Civic colors get distinct third components."""
        relation = figure1_relation()
        index = DeweyIndex.build(relation, figure1_ordering())
        assert index.depth == 6
        hondas = {rid for rid in range(11)}
        for rid in range(len(relation)):
            dewey = index.dewey_of(rid)
            assert (dewey[0] == 0) == (rid in hondas)
        # All five Civics share the first two components.
        civics = [index.dewey_of(rid) for rid in range(5)]
        assert len({d[:2] for d in civics}) == 1
        # Four distinct colors among the 2007 Civics.
        assert len({d[2] for d in civics}) == 4

    def test_roundtrip(self):
        relation = figure1_relation()
        index = DeweyIndex.build(relation, figure1_ordering())
        for rid in range(len(relation)):
            dewey = index.dewey_of(rid)
            assert index.rid_of(dewey) == rid
            values = index.values_of(dewey)
            row = relation[rid]
            assert values == row[:5]

    def test_document_order_matches_value_order(self):
        relation = figure1_relation()
        index = DeweyIndex.build(relation, figure1_ordering())
        deweys = index.all_deweys()
        keyed = [index.values_of(d) for d in deweys]
        assert keyed == sorted(keyed, key=lambda v: tuple(map(str, v)))

    def test_duplicate_tuples_get_distinct_ids(self):
        schema = Schema.of(make="categorical")
        relation = Relation.from_rows(schema, [("Honda",), ("Honda",)])
        index = DeweyIndex.build(relation, DiversityOrdering(["make"]))
        a, b = index.dewey_of(0), index.dewey_of(1)
        assert a != b
        assert a[0] == b[0]  # same value component
        assert {a[1], b[1]} == {0, 1}  # distinct uniqueness components

    def test_incremental_add_appends_siblings(self):
        schema = Schema.of(make="categorical")
        relation = Relation.from_rows(schema, [("B",), ("A",)])
        ordering = DiversityOrdering(["make"])
        index = DeweyIndex(relation, ordering)
        index.add(0)
        index.add(1)
        # Incremental assignment is first-come: B got 0, A got 1.
        assert index.dewey_of(0)[0] == 0
        assert index.dewey_of(1)[0] == 1

    def test_add_is_idempotent(self):
        relation = figure1_relation()
        index = DeweyIndex.build(relation, figure1_ordering())
        before = index.dewey_of(3)
        assert index.add(3) == before
        assert len(index) == len(relation)

    def test_component_of(self):
        relation = figure1_relation()
        index = DeweyIndex.build(relation, figure1_ordering())
        assert index.component_of("Make", (), "Honda") == 0
        assert index.component_of("Make", (), "Tesla") is None
        civic = index.component_of("Model", ("Honda",), "Civic")
        assert civic is not None
        with pytest.raises(ValueError):
            index.component_of("Model", (), "Civic")

    def test_unknown_rid(self):
        relation = figure1_relation()
        index = DeweyIndex.build(relation, figure1_ordering())
        with pytest.raises(KeyError):
            index.dewey_of(999)
        with pytest.raises(KeyError):
            index.rid_of((9, 9, 9, 9, 9, 9))


class TestInvertedIndex:
    @pytest.fixture
    def index(self):
        return InvertedIndex.build(figure1_relation(), figure1_ordering())

    def test_scalar_postings(self, index):
        hondas = index.scalar_postings("Make", "Honda")
        assert len(hondas) == 11
        toyotas = index.scalar_postings("Make", "Toyota")
        assert len(toyotas) == 4
        assert len(index.scalar_postings("Make", "Tesla")) == 0

    def test_numeric_scalar_postings(self, index):
        assert len(index.scalar_postings("Year", 2007)) == 11

    def test_token_postings(self, index):
        assert len(index.token_postings("Description", "miles")) == 11
        assert len(index.token_postings("Description", "MILES")) == 11
        assert len(index.token_postings("Description", "rare")) == 1

    def test_token_postings_require_text_attribute(self, index):
        with pytest.raises(ValueError):
            index.token_postings("Make", "honda")

    def test_all_postings_sorted(self, index):
        everything = list(index.all_postings())
        assert len(everything) == 15
        assert everything == sorted(everything)

    def test_vocabulary(self, index):
        assert set(index.vocabulary("Make")) == {"Honda", "Toyota"}

    def test_unknown_attribute(self, index):
        with pytest.raises(Exception):
            index.scalar_postings("Bogus", 1)

    def test_incremental_insert_matches_rebuild(self):
        relation = figure1_relation()
        ordering = figure1_ordering()
        incremental = InvertedIndex(relation, ordering)
        for rid in range(len(relation)):
            incremental.insert(rid)
        # Same posting multiset per key (sibling numbering may differ since
        # incremental assignment is first-come rather than sorted).
        assert len(incremental) == len(relation)
        assert len(incremental.scalar_postings("Make", "Honda")) == 11
        assert len(incremental.token_postings("Description", "miles")) == 11
        new_rid = relation.insert(("Tesla", "ModelS", "Red", 2008, "rare find"))
        incremental.insert(new_rid)
        assert len(incremental.scalar_postings("Make", "Tesla")) == 1
        assert len(incremental.token_postings("Description", "rare")) == 2

    def test_insert_idempotent(self):
        relation = figure1_relation()
        index = InvertedIndex.build(relation, figure1_ordering())
        index.insert(0)
        assert len(index) == len(relation)

    def test_bptree_backend(self):
        index = InvertedIndex.build(
            figure1_relation(), figure1_ordering(), backend="bptree"
        )
        assert isinstance(index.scalar_postings("Make", "Honda"), BTreePostingList)
        assert len(index.all_postings()) == 15

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            InvertedIndex(figure1_relation(), figure1_ordering(), backend="x")
