"""Tests for the durable store layer: WAL-ahead mutation, auto-snapshot,
recovery, epoch continuity across restart, and the CLI surface."""

import pytest

from repro import DiversityEngine, ServingEngine
from repro.__main__ import main as cli_main
from repro.core.engine import ALGORITHMS
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.durability import (
    DurableIndex,
    RecoveryError,
    create_sharded_store,
    create_store,
    recover,
    recover_store,
    recover_sharded_store,
)
from repro.durability.store import SNAPSHOT_NAME, WAL_NAME
from repro.durability.wal import read_wal
from repro.index.inverted import InvertedIndex
from repro.sharding.sharded_index import ShardedIndex

NEW_ROWS = [
    ("Tesla", "ModelS", "Red", 2008, "rare electric clean"),
    ("Kia", "Rio", "Green", 2006, "cheap commuter"),
    ("Honda", "Fit", "Orange", 2008, "low miles"),
    ("Acura", "TSX", "Silver", 2007, "one owner"),
]

QUERIES = [
    "Make = 'Honda'",
    "Color = 'Green' OR Description CONTAINS 'miles'",
]


def _signature(index):
    """Everything recovery must reproduce bit-identically."""
    relation = index.relation
    engine = DiversityEngine(index)
    answers = tuple(
        tuple(engine.search(q, k=4, algorithm=a, scored=s).deweys)
        for q in QUERIES
        for a in ALGORITHMS
        for s in (False, True)
    )
    return (
        index.epoch,
        tuple(sorted((rid, index.dewey.dewey_of(rid))
                     for rid in index.dewey.iter_rids())),
        tuple(tuple(row) for row in relation),
        tuple(relation.deleted_rids()),
        answers,
    )


def _fresh_store(tmp_path, name="store", **kwargs):
    relation = figure1_relation()
    index = InvertedIndex.build(relation, figure1_ordering())
    return create_store(index, tmp_path / name, **kwargs)


class TestSingleStore:
    def test_records_written_before_apply(self, tmp_path):
        store = _fresh_store(tmp_path)
        relation = store.relation
        rid = relation.insert(NEW_ROWS[0])
        store.insert(rid)
        store.close()
        records = read_wal(tmp_path / "store" / WAL_NAME).records
        assert len(records) == 1
        assert records[0]["op"] == "insert"
        assert records[0]["rid"] == rid
        assert tuple(records[0]["dewey"]) == store.dewey.dewey_of(rid)
        assert records[0]["seq"] == store.epoch

    def test_recovery_replays_to_identical_state(self, tmp_path):
        store = _fresh_store(tmp_path)
        relation = store.relation
        for row in NEW_ROWS[:3]:
            store.insert(relation.insert(row))
        relation.delete(1)
        store.remove(1)
        expected = _signature(store.index)
        store.close()
        recovered = recover(tmp_path / "store")
        assert isinstance(recovered, DurableIndex)
        assert _signature(recovered.index) == expected
        assert recovered.recovery.replayed == 4

    def test_idempotent_insert_writes_no_record(self, tmp_path):
        store = _fresh_store(tmp_path)
        rid = store.relation.insert(NEW_ROWS[0])
        store.insert(rid)
        store.insert(rid)  # double-apply must not double-log
        store.close()
        assert len(read_wal(tmp_path / "store" / WAL_NAME).records) == 1

    def test_remove_of_absent_rid_writes_no_record(self, tmp_path):
        store = _fresh_store(tmp_path)
        assert store.remove(999_999 if False else 14) is not None
        assert store.remove(14) is None  # already gone
        store.close()
        assert len(read_wal(tmp_path / "store" / WAL_NAME).records) == 1

    def test_auto_snapshot_by_log_length(self, tmp_path):
        store = _fresh_store(tmp_path, snapshot_every=3)
        relation = store.relation
        for row in NEW_ROWS:  # 4 mutations: snapshot fires at the 3rd
            store.insert(relation.insert(row))
        assert store.snapshots == 1
        assert store.wal.appended_since_truncate == 1
        store.close()
        # The snapshot absorbed the first three records.
        assert len(read_wal(tmp_path / "store" / WAL_NAME).records) == 1
        recovered = recover(tmp_path / "store")
        assert recovered.recovery.snapshot_epoch == 3
        assert recovered.recovery.replayed == 1
        assert _signature(recovered.index) == _signature(store.index)

    def test_recovered_store_keeps_accepting_writes(self, tmp_path):
        store = _fresh_store(tmp_path)
        store.insert(store.relation.insert(NEW_ROWS[0]))
        store.close()
        recovered = recover(tmp_path / "store")
        rid = recovered.relation.insert(NEW_ROWS[1])
        recovered.insert(rid)
        recovered.close()
        second = recover(tmp_path / "store")
        assert _signature(second.index) == _signature(recovered.index)

    def test_stale_records_skipped_after_snapshot(self, tmp_path):
        """A snapshot without log truncation (the post-rename crash window)
        must not replay covered records twice."""
        store = _fresh_store(tmp_path)
        relation = store.relation
        for row in NEW_ROWS[:2]:
            store.insert(relation.insert(row))
        # Snapshot manually, bypassing the truncation the normal path does.
        from repro.index.snapshot import save_index

        save_index(store.index, store.snapshot_path)
        store.insert(relation.insert(NEW_ROWS[2]))
        expected = _signature(store.index)
        store.close()
        recovered = recover(tmp_path / "store")
        assert recovered.recovery.skipped == 2
        assert recovered.recovery.replayed == 1
        assert _signature(recovered.index) == expected

    def test_sequence_gap_raises(self, tmp_path):
        store = _fresh_store(tmp_path)
        relation = store.relation
        for row in NEW_ROWS[:3]:
            store.insert(relation.insert(row))
        store.close()
        # Drop the middle record (frames 1 and 3 intact): a gap in
        # acknowledged mutations, not a torn tail.
        wal_path = tmp_path / "store" / WAL_NAME
        scan = read_wal(wal_path)
        from repro.durability.wal import MAGIC, encode_frame

        frames = [encode_frame(r) for r in scan.records]
        wal_path.write_bytes(MAGIC + frames[0] + frames[2])
        with pytest.raises(RecoveryError, match="sequence gap"):
            recover(tmp_path / "store")

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="MANIFEST"):
            recover(tmp_path / "nothing-here")

    def test_corrupt_snapshot_raises_recovery_error(self, tmp_path):
        store = _fresh_store(tmp_path)
        store.close()
        snapshot = tmp_path / "store" / SNAPSHOT_NAME
        data = bytearray(snapshot.read_bytes())
        data[len(data) // 2] ^= 0xFF
        snapshot.write_bytes(bytes(data))
        with pytest.raises(RecoveryError):
            recover(tmp_path / "store")

    def test_wrong_kind_dispatch(self, tmp_path):
        store = _fresh_store(tmp_path)
        store.close()
        with pytest.raises(RecoveryError, match="not a sharded store"):
            recover_sharded_store(tmp_path / "store")


class TestShardedStore:
    def _build(self, tmp_path, shards=3, router="hash", snapshot_every=0):
        relation = figure1_relation()
        index = ShardedIndex.build(
            relation, figure1_ordering(), shards=shards, router=router
        )
        create_sharded_store(
            index, tmp_path / "cluster", snapshot_every=snapshot_every
        )
        return index

    def test_mutations_route_to_per_shard_wals(self, tmp_path):
        index = self._build(tmp_path)
        relation = index.relation
        rids = [relation.insert(row) for row in NEW_ROWS]
        for rid in rids:
            index.insert(rid)
        per_shard = [
            len(read_wal(tmp_path / "cluster" / f"shard-{i:04d}" / WAL_NAME).records)
            for i in range(index.num_shards)
        ]
        assert sum(per_shard) == len(rids)
        for rid in rids:
            shard = index.shard_of(rid)
            assert any(
                record["rid"] == rid
                for record in read_wal(
                    tmp_path / "cluster" / f"shard-{shard:04d}" / WAL_NAME
                ).records
            )

    def test_full_deployment_recovery(self, tmp_path):
        index = self._build(tmp_path, shards=3)
        relation = index.relation
        for row in NEW_ROWS:
            index.insert(relation.insert(row))
        relation.delete(2)
        index.remove(2)
        expected = _signature(index)
        expected_epochs = index.shard_epochs()
        for shard in index.shards:
            shard.close()
        recovered = recover(tmp_path / "cluster")
        assert isinstance(recovered, ShardedIndex)
        assert recovered.shard_epochs() == expected_epochs
        assert _signature(recovered) == expected

    def test_independent_shard_snapshots(self, tmp_path):
        """Shards snapshot at different times; recovery reconciles the
        mixed snapshot epochs + logs into one consistent deployment."""
        index = self._build(tmp_path, shards=2, snapshot_every=2)
        relation = index.relation
        for row in NEW_ROWS * 2:
            index.insert(relation.insert(row))
        snapshots = [shard.snapshots for shard in index.shards]
        assert any(count > 0 for count in snapshots)
        expected = _signature(index)
        for shard in index.shards:
            shard.close()
        recovered = recover(tmp_path / "cluster")
        assert _signature(recovered) == expected

    def test_range_router_boundaries_survive(self, tmp_path):
        index = self._build(tmp_path, shards=3, router="range")
        expected_boundaries = index.router.boundaries
        for shard in index.shards:
            shard.close()
        recovered = recover(tmp_path / "cluster")
        assert recovered.router.boundaries == expected_boundaries
        # New values route identically post-recovery.
        rid = recovered.relation.insert(NEW_ROWS[0])
        assert index.relation.insert(NEW_ROWS[0]) == rid
        assert recovered.shard_of(rid) == index.shard_of(rid)

    def test_missing_shard_raises(self, tmp_path):
        index = self._build(tmp_path, shards=3)
        for shard in index.shards:
            shard.close()
        import shutil

        shutil.rmtree(tmp_path / "cluster" / "shard-0001")
        with pytest.raises(RecoveryError, match="shard 1"):
            recover(tmp_path / "cluster")

    def test_chaos_wrappers_refused(self, tmp_path):
        from repro.resilience import ChaosPolicy

        relation = figure1_relation()
        index = ShardedIndex.build(relation, figure1_ordering(), shards=2)
        index.inject_chaos(ChaosPolicy(seed=1))
        with pytest.raises(TypeError, match="clear chaos"):
            create_sharded_store(index, tmp_path / "cluster")

    def test_clear_chaos_preserves_durability(self, tmp_path):
        """Regression guard: un-wrapping chaos proxies must not also strip
        the durability wrappers (the ``inner`` vs ``index`` naming)."""
        from repro.resilience import ChaosPolicy

        index = self._build(tmp_path, shards=2)
        index.inject_chaos(ChaosPolicy(seed=1))
        index.clear_chaos()
        assert all(isinstance(shard, DurableIndex) for shard in index.shards)


class TestServingRestart:
    def test_warm_cache_survives_restart(self, tmp_path):
        """Epoch continuity: entries cached before a restart are served as
        hits afterwards, because recovery reproduces the exact epoch."""
        serving = ServingEngine.from_relation(
            figure1_relation(), figure1_ordering(), data_dir=tmp_path / "data"
        )
        serving.insert(NEW_ROWS[0])
        first = serving.search(QUERIES[0], k=3)
        cache = serving.cache
        epoch = serving.epoch
        serving.close()

        warm = ServingEngine.recover(tmp_path / "data", cache=cache)
        assert warm.epoch == epoch
        hits_before = warm.stats.hits
        again = warm.search(QUERIES[0], k=3)
        assert again.deweys == first.deweys
        assert warm.stats.hits == hits_before + 1
        warm.close()

    def test_stale_cache_entries_die_after_recovered_mutation(self, tmp_path):
        serving = ServingEngine.from_relation(
            figure1_relation(), figure1_ordering(), data_dir=tmp_path / "data"
        )
        serving.search(QUERIES[0], k=3)
        cache = serving.cache
        serving.close()
        warm = ServingEngine.recover(tmp_path / "data", cache=cache)
        warm.insert(("Honda", "Prelude", "Black", 2007, "rare manual"))
        misses_before = warm.stats.misses
        warm.search(QUERIES[0], k=3)
        assert warm.stats.misses == misses_before + 1  # epoch moved on
        warm.close()

    def test_sharded_serving_recover(self, tmp_path):
        serving = ServingEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=2,
            data_dir=tmp_path / "data", snapshot_every=3,
        )
        for row in NEW_ROWS:
            serving.insert(row)
        expected = serving.search(QUERIES[1], k=4).deweys
        epoch = serving.epoch
        serving.close()
        recovered = ServingEngine.recover(tmp_path / "data")
        assert recovered.epoch == epoch
        assert recovered.search(QUERIES[1], k=4).deweys == expected
        recovered.close()


class TestCli:
    def _write_csv(self, tmp_path):
        csv = tmp_path / "cars.csv"
        csv.write_text(
            "Make:categorical,Model:categorical,Color:categorical,"
            "Year:numeric,Description:text\n"
            "Honda,Civic,Blue,2007,low miles clean\n"
            "Honda,Accord,Green,2006,one owner\n"
            "Toyota,Camry,Red,2007,new tires\n"
            "Kia,Rio,Green,2006,cheap commuter\n"
        )
        return csv

    def test_build_and_recover_single(self, tmp_path, capsys):
        csv = self._write_csv(tmp_path)
        assert cli_main([
            "build", str(csv), "--ordering", "Make,Model,Color",
            "--data-dir", str(tmp_path / "store"), "--snapshot-every", "5",
        ]) == 0
        assert cli_main(["recover", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "recovered 4 live rows" in out

    def test_build_and_recover_sharded_with_query(self, tmp_path, capsys):
        csv = self._write_csv(tmp_path)
        assert cli_main([
            "build", str(csv), "--ordering", "Make,Model",
            "--data-dir", str(tmp_path / "store"), "--shards", "2",
        ]) == 0
        assert cli_main([
            "recover", str(tmp_path / "store"),
            "--query", "Make = 'Honda'", "-k", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "shard-0000" in out and "shard-0001" in out
        assert "Civic" in out or "Accord" in out

    def test_query_command_accepts_data_dir(self, tmp_path, capsys):
        csv = self._write_csv(tmp_path)
        cli_main([
            "build", str(csv), "--ordering", "Make,Model",
            "--data-dir", str(tmp_path / "store"),
        ])
        assert cli_main([
            "query", str(tmp_path / "store"), "Color = 'Green'", "-k", "3",
        ]) == 0
        assert "Accord" in capsys.readouterr().out

    def test_recover_missing_dir_exits_4(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["recover", str(tmp_path / "missing")])
        assert excinfo.value.code == 4
        assert "recovery failed" in capsys.readouterr().err

    def test_recover_corrupt_store_exits_4(self, tmp_path, capsys):
        csv = self._write_csv(tmp_path)
        cli_main([
            "build", str(csv), "--ordering", "Make,Model",
            "--data-dir", str(tmp_path / "store"),
        ])
        snapshot = tmp_path / "store" / SNAPSHOT_NAME
        snapshot.write_bytes(b"garbage, not gzip")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["recover", str(tmp_path / "store")])
        assert excinfo.value.code == 4

    def test_build_requires_destination(self, tmp_path, capsys):
        csv = self._write_csv(tmp_path)
        assert cli_main([
            "build", str(csv), "--ordering", "Make,Model",
        ]) == 2
        assert "--out and/or --data-dir" in capsys.readouterr().err
