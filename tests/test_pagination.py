"""Tests for diverse pagination."""

import pytest

from repro import DiversityEngine, is_diverse
from repro.core.pagination import DiversePaginator, ExcludingMergedList
from repro.core.dewey import LEFT, RIGHT, maxes, zeros
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.index.merged import MergedList
from repro.query.evaluate import res
from repro.query.parser import parse_query


class TestExcludingMergedList:
    def test_skips_excluded(self, cars_index):
        merged = MergedList(parse_query("Make = 'Toyota'"), cars_index)
        toyotas = list(cars_index.scalar_postings("Make", "Toyota"))
        view = ExcludingMergedList(merged, {toyotas[0], toyotas[2]})
        collected = []
        current = view.first()
        from repro.core.dewey import successor

        while current is not None:
            collected.append(current)
            current = view.next(successor(current))
        assert collected == [toyotas[1], toyotas[3]]

    def test_right_direction(self, cars_index):
        merged = MergedList(parse_query("Make = 'Toyota'"), cars_index)
        toyotas = list(cars_index.scalar_postings("Make", "Toyota"))
        view = ExcludingMergedList(merged, {toyotas[-1]})
        assert view.next(maxes(cars_index.depth), RIGHT) == toyotas[-2]

    def test_contains_respects_exclusion(self, cars_index):
        merged = MergedList(parse_query("Make = 'Toyota'"), cars_index)
        toyotas = list(cars_index.scalar_postings("Make", "Toyota"))
        view = ExcludingMergedList(merged, {toyotas[0]})
        assert not view.contains(toyotas[0])
        assert view.contains(toyotas[1])


class TestPaginator:
    @pytest.mark.parametrize("algorithm", ["probe", "onepass"])
    def test_pages_do_not_overlap(self, cars_engine, algorithm):
        paginator = DiversePaginator(
            cars_engine, "Make = 'Honda'", page_size=4, algorithm=algorithm
        )
        seen = set()
        for page in paginator.pages():
            deweys = set(page.deweys)
            assert not deweys & seen
            seen |= deweys
        assert len(seen) == 11  # all Hondas eventually shown

    def test_each_page_is_diverse_over_remaining(self, cars, cars_engine):
        query = parse_query("Make = 'Honda'")
        full = {cars_engine.index.dewey.dewey_of(r) for r in res(cars, query)}
        paginator = DiversePaginator(cars_engine, query, page_size=4)
        remaining = set(full)
        for page in paginator.pages():
            assert is_diverse(page.deweys, remaining, 4)
            remaining -= set(page.deweys)

    def test_first_page_matches_plain_search_quality(self, cars, cars_engine):
        paginator = DiversePaginator(cars_engine, "Year = 2007", page_size=5)
        page = paginator.next_page()
        full = [
            cars_engine.index.dewey.dewey_of(r)
            for r in res(cars, parse_query("Year = 2007"))
        ]
        assert is_diverse(page.deweys, full, 5)

    def test_exhaustion_returns_empty_pages(self, cars_engine):
        paginator = DiversePaginator(cars_engine, "Make = 'Toyota'", page_size=3)
        first = paginator.next_page()
        second = paginator.next_page()
        third = paginator.next_page()
        assert len(first) == 3 and len(second) == 1
        assert len(third) == 0

    def test_pages_iterator_limit(self, cars_engine):
        paginator = DiversePaginator(cars_engine, "", page_size=2)
        pages = list(paginator.pages(limit=3))
        assert len(pages) == 3

    def test_reset(self, cars_engine):
        paginator = DiversePaginator(cars_engine, "Make = 'Toyota'", page_size=2)
        first = paginator.next_page()
        paginator.reset()
        again = paginator.next_page()
        assert first.deweys == again.deweys

    def test_invalid_arguments(self, cars_engine):
        with pytest.raises(ValueError):
            DiversePaginator(cars_engine, "", page_size=0)
        with pytest.raises(ValueError):
            DiversePaginator(cars_engine, "", page_size=2, algorithm="naive")

    def test_items_materialised(self, cars_engine):
        paginator = DiversePaginator(cars_engine, "Make = 'Honda'", page_size=3)
        page = paginator.next_page()
        assert all(item["Make"] == "Honda" for item in page)
