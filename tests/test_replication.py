"""Unit tests for repro.replication: bootstrap, failover, hedging,
mutation convergence, per-replica chaos, and the replica health surface.

The differential acceptance matrix (every algorithm, scored and unscored,
under minority replica kills) lives in test_replication_differential.py;
this file tests the machinery piece by piece.
"""

from __future__ import annotations

import random

import pytest

from repro import DiversityEngine
from repro.index.inverted import InvertedIndex
from repro.observability import FakeClock, MetricsRegistry, use_registry
from repro.replication import (
    HedgePolicy,
    ReplicaBootstrapError,
    ReplicaSet,
    bootstrap_replicas,
    clone_from_index,
    live_rids,
    replica_digest,
)
from repro.resilience import (
    ChaosPolicy,
    ReplicaDivergenceError,
    ResiliencePolicy,
    ShardCrashedError,
    ShardFaultSpec,
    ShardUnavailableError,
    TransientShardError,
)
from repro.sharding import ShardedEngine, ShardedIndex

from .conftest import RANDOM_ORDERING, random_relation

#: Fast-failing policy for breaker-path tests (trips after two failures).
TRIGGER_HAPPY = ResiliencePolicy(
    max_retries=1,
    backoff_base_ms=0.01,
    backoff_cap_ms=0.02,
    breaker_threshold=0.5,
    breaker_window=4,
    breaker_min_calls=2,
    breaker_cooldown_ms=10_000.0,
)


def _relation(seed=11, rows=80):
    return random_relation(random.Random(seed), max_rows=rows)


# ----------------------------------------------------------------------
# Bootstrap
# ----------------------------------------------------------------------
class TestBootstrap:
    def test_in_memory_clone_is_bit_identical(self):
        index = ShardedIndex.build(_relation(), RANDOM_ORDERING, shards=2)
        for shard in index.shards:
            clone = clone_from_index(shard)
            assert replica_digest(clone) == replica_digest(shard)
            assert clone.epoch == shard.epoch
            assert len(clone) == len(shard)
            assert clone.dewey is shard.dewey  # shared global assignment

    def test_durable_clone_replays_wal_to_same_epoch(self, tmp_path):
        from repro.durability import create_sharded_store

        relation = _relation(seed=12)
        index = ShardedIndex.build(relation, RANDOM_ORDERING, shards=2)
        create_sharded_store(index, tmp_path, replicas=2)
        # Mutate past the snapshot so the clone must replay WAL records.
        rid = relation.insert(("Honda", "Civic", "Red", "wal replayed row"))
        index.insert(rid)
        for shard in index.shards:
            copies = bootstrap_replicas(shard, 2)
            assert len(copies) == 1
            assert replica_digest(copies[0]) == replica_digest(shard)
            assert copies[0].epoch == shard.epoch
        for shard in index.shards:
            shard.close()

    def test_bootstrap_count_validation(self):
        index = ShardedIndex.build(_relation(), RANDOM_ORDERING, shards=2)
        with pytest.raises(ValueError):
            bootstrap_replicas(index.shards[0], 0)
        assert bootstrap_replicas(index.shards[0], 1) == []

    def test_replicate_is_in_place_and_guarded(self):
        index = ShardedIndex.build(_relation(), RANDOM_ORDERING, shards=2)
        assert index.replication_factor == 1
        index.replicate(3)
        assert index.replication_factor == 3
        assert all(isinstance(shard, ReplicaSet) for shard in index.shards)
        with pytest.raises(ValueError):
            index.replicate(2)  # already replicated

    def test_diverged_copy_is_rejected(self, monkeypatch):
        import repro.replication.bootstrap as bootstrap_module

        index = ShardedIndex.build(_relation(), RANDOM_ORDERING, shards=2)
        primary = index.shards[0]
        assert replica_digest(primary) != replica_digest(index.shards[1])
        real_clone = bootstrap_module.clone_from_index

        def lossy_clone(shard):
            clone = real_clone(shard)
            rid = live_rids(clone)[0]
            clone.remove_mirrored(rid, clone.dewey.dewey_of(rid))
            return clone

        monkeypatch.setattr(bootstrap_module, "clone_from_index", lossy_clone)
        with pytest.raises(ReplicaBootstrapError):
            bootstrap_replicas(primary, 2)


# ----------------------------------------------------------------------
# Read failover
# ----------------------------------------------------------------------
class TestFailover:
    def _replicated_engine(self, shards=2, replicas=2, policy=None, **kw):
        relation = _relation(seed=21)
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=shards, replicas=replicas,
            policy=policy, **kw
        )
        reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
        return engine, reference

    def test_crashed_replica_is_invisible(self):
        engine, reference = self._replicated_engine()
        chaos = engine.inject_chaos(ChaosPolicy(seed=1))
        chaos.crash(0, replica_id=0)
        chaos.crash(1, replica_id=1)
        for algorithm in ("naive", "basic", "onepass", "probe", "multq"):
            expected = reference.search("color = 'red'", 5,
                                        algorithm=algorithm)
            actual = engine.search("color = 'red'", 5, algorithm=algorithm)
            assert actual.deweys == expected.deweys
            assert actual.stats["degraded"] is False
        assert engine.sharded_index.shards[0].failovers > 0
        engine.close()

    def test_all_replicas_down_surfaces_shard_loss(self):
        engine, _ = self._replicated_engine(policy=TRIGGER_HAPPY)
        chaos = engine.inject_chaos(ChaosPolicy(seed=2))
        chaos.crash(0, replica_id=0)
        chaos.crash(0, replica_id=1)
        with pytest.raises(ShardUnavailableError) as excinfo:
            engine.search("color = 'red'", 5, algorithm="probe")
        assert 0 in excinfo.value.shards_lost
        # The degradable gather path still answers from shard 1.
        result = engine.search("color = 'red'", 5, algorithm="naive")
        assert result.stats["degraded"] is True
        assert result.stats["shards_failed"] == 1
        engine.close()

    def test_transient_on_one_replica_fails_over_without_retry(self):
        """A replica that flakes is failed over *inside* the set — the
        engine-level retry budget is untouched."""
        engine, reference = self._replicated_engine(
            policy=ResiliencePolicy(max_retries=0))
        chaos = engine.inject_chaos(ChaosPolicy(seed=3))
        chaos.set_spec((0, 0), ShardFaultSpec(transient_rate=1.0))
        expected = reference.search("color = 'red'", 5, algorithm="probe")
        actual = engine.search("color = 'red'", 5, algorithm="probe")
        assert actual.deweys == expected.deweys
        assert actual.stats["retries"] == 0
        engine.close()

    def test_selection_prefers_closed_breaker_and_primary(self):
        index = ShardedIndex.build(_relation(), RANDOM_ORDERING, shards=1)
        index.replicate(3, policy=TRIGGER_HAPPY)
        replica_set = index.shards[0]
        assert replica_set._selection_order() == [0, 1, 2]
        for _ in range(3):
            replica_set.breakers[0].record_failure()
        assert replica_set.breakers[0].state == "open"
        assert replica_set._selection_order()[0] != 0
        assert replica_set._selection_order()[-1] == 0

    def test_exhausted_reasons_name_every_replica(self):
        index = ShardedIndex.build(_relation(), RANDOM_ORDERING, shards=1)
        index.replicate(2)
        chaos = ChaosPolicy.crash_shards(0)  # whole shard: every replica
        index.inject_chaos(chaos)
        with pytest.raises(ShardCrashedError) as excinfo:
            index.shards[0].all_postings()
        message = str(excinfo.value)
        assert "replica 0" in message and "replica 1" in message

    def test_transient_anywhere_keeps_retryability(self):
        index = ShardedIndex.build(_relation(), RANDOM_ORDERING, shards=1)
        index.replicate(2)
        chaos = ChaosPolicy(seed=4, per_shard={
            (0, 0): ShardFaultSpec(transient_rate=1.0),
            (0, 1): ShardFaultSpec(crashed=True),
        })
        index.inject_chaos(chaos)
        with pytest.raises(TransientShardError):
            index.shards[0].all_postings()


# ----------------------------------------------------------------------
# Hedged reads
# ----------------------------------------------------------------------
class TestHedging:
    def test_delay_floor_and_percentile(self):
        policy = HedgePolicy(delay_ms=10.0, percentile=0.9, min_samples=4)
        assert policy.delay_seconds([]) == pytest.approx(0.010)
        assert policy.delay_seconds([1.0, 2.0]) == pytest.approx(0.010)
        samples = [float(i) for i in range(1, 101)]  # 1..100 ms
        assert policy.delay_seconds(samples) == pytest.approx(0.091)
        # The floor wins when the observed percentile is lower.
        assert HedgePolicy(delay_ms=500.0, min_samples=4).delay_seconds(
            samples) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay_ms=-1.0)
        with pytest.raises(ValueError):
            HedgePolicy(percentile=1.0)
        with pytest.raises(ValueError):
            HedgePolicy(window=0)

    def test_slow_primary_loses_to_hedged_backup(self):
        relation = _relation(seed=31)
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=2, replicas=2, hedge_ms=0.01
        )
        chaos = engine.inject_chaos(ChaosPolicy(seed=5))
        chaos.set_spec((0, 0), ShardFaultSpec(latency_ms=40.0))
        reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
        expected = reference.search("color = 'red'", 5, algorithm="probe")
        actual = engine.search("color = 'red'", 5, algorithm="probe")
        assert actual.deweys == expected.deweys
        replica_set = engine.sharded_index.shards[0]
        assert replica_set.hedges_fired > 0
        assert replica_set.hedges_won > 0
        # Never more than one backup per read, by construction.
        assert replica_set.hedges_fired <= replica_set._health[0].requests
        engine.close()

    def test_unhedged_set_never_spawns_threads(self):
        index = ShardedIndex.build(_relation(), RANDOM_ORDERING, shards=1)
        index.replicate(2)
        replica_set = index.shards[0]
        for _ in range(5):
            replica_set.all_postings()
        assert replica_set._pool is None

    def test_hedge_metrics_exported(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            relation = _relation(seed=32)
            engine = ShardedEngine.from_relation(
                relation, RANDOM_ORDERING, shards=2, replicas=2,
                hedge_ms=0.01,
            )
            chaos = engine.inject_chaos(ChaosPolicy(seed=6))
            chaos.set_spec((1, 0), ShardFaultSpec(latency_ms=40.0))
            engine.search("color = 'red'", 4, algorithm="probe")
            fired = registry.value(
                "repro_replica_hedges_total", outcome="fired")
            assert fired > 0
            engine.close()


# ----------------------------------------------------------------------
# Mutations
# ----------------------------------------------------------------------
class TestMutationConvergence:
    def test_insert_and_remove_keep_replicas_identical(self):
        relation = _relation(seed=41)
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=2, replicas=3
        )
        rid = engine.insert(("Honda", "Civic", "Red", "fresh row"))
        for replica_set in engine.sharded_index.shards:
            digests = {replica_digest(r) for r in replica_set.replicas}
            assert len(digests) == 1
        assert engine.delete(rid)
        for replica_set in engine.sharded_index.shards:
            digests = {replica_digest(r) for r in replica_set.replicas}
            assert len(digests) == 1
            epochs = {r.epoch for r in replica_set.replicas}
            assert len(epochs) == 1
        engine.close()

    def test_mutations_survive_a_crashed_replica(self):
        """Chaos only breaks the data path: a killed replica still applies
        forwarded mutations, so it is consistent when revived."""
        relation = _relation(seed=42)
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=2, replicas=2
        )
        chaos = engine.inject_chaos(ChaosPolicy(seed=7))
        chaos.crash(0, replica_id=0)
        chaos.crash(1, replica_id=0)
        rid = engine.insert(("Honda", "Civic", "Red", "during outage"))
        chaos.revive(0, replica_id=0)
        chaos.revive(1, replica_id=0)
        for replica_set in engine.sharded_index.shards:
            digests = {replica_digest(r) for r in replica_set.replicas}
            assert len(digests) == 1
        assert engine.delete(rid)
        engine.close()

    def test_divergence_is_detected(self):
        index = ShardedIndex.build(_relation(seed=43), RANDOM_ORDERING,
                                   shards=1)
        index.replicate(2)
        replica_set = index.shards[0]
        relation = index.relation
        rid = relation.insert(("Honda", "Civic", "Red", "skewed"))
        # Sabotage: bump only the follower's epoch so the convergence
        # check sees disagreement on the next mutation.
        follower = replica_set.replicas[1]
        follower.insert(rid)
        rid2 = relation.insert(("Ford", "F150", "Black", "next"))
        with pytest.raises(ReplicaDivergenceError) as excinfo:
            replica_set.insert(rid2)
        assert excinfo.value.shard_id == 0

    def test_remove_mirrored_leaves_shared_dewey_alone(self):
        from repro.core.ordering import DiversityOrdering

        relation = _relation(seed=44)
        primary = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
        copy = clone_from_index(primary)
        rid = relation.insert(("Honda", "Civic", "Red", "to remove"))
        dewey = primary.insert(rid)
        copy.insert(rid)
        removed = copy.remove_mirrored(rid, dewey)
        assert removed == dewey
        assert rid in primary.dewey  # shared assignment untouched
        assert dewey in primary.all_postings()
        assert dewey not in copy.all_postings()


# ----------------------------------------------------------------------
# Per-replica chaos addressing + injectable sleep (satellite 1)
# ----------------------------------------------------------------------
class TestReplicaChaos:
    def test_tuple_key_beats_shard_key(self):
        chaos = ChaosPolicy(per_shard={
            0: ShardFaultSpec(crashed=True),
            (0, 1): ShardFaultSpec(),
        })
        assert chaos.spec_for(0).crashed
        assert chaos.spec_for(0, replica_id=0).crashed
        assert not chaos.spec_for(0, replica_id=1).crashed

    def test_crash_and_revive_single_replica(self):
        chaos = ChaosPolicy()
        chaos.crash(2, replica_id=1)
        assert chaos.spec_for(2, replica_id=1).crashed
        assert not chaos.spec_for(2, replica_id=0).crashed
        assert not chaos.spec_for(2).crashed
        chaos.revive(2, replica_id=1)
        assert not chaos.spec_for(2, replica_id=1).crashed

    def test_shard_only_rng_stream_is_stable_across_replication(self):
        """Pre-replication chaos runs must stay bit-identical: the
        replica-less RNG stream ignores the replica dimension."""
        first = ChaosPolicy(seed=9)
        second = ChaosPolicy(seed=9)
        draws_first = [first._rng(3).random() for _ in range(5)]
        second._rng(3, replica_id=0)  # interleave a replica stream
        draws_second = [second._rng(3).random() for _ in range(5)]
        assert draws_first == draws_second
        # Distinct replica streams are independent of each other.
        assert first._rng(3, 0).random() != first._rng(3, 1).random()

    def test_latency_uses_injected_sleep(self):
        clock = FakeClock()
        slept = []

        def fake_sleep(seconds):
            slept.append(seconds)
            clock.advance(seconds)

        chaos = ChaosPolicy(per_shard={0: ShardFaultSpec(latency_ms=25.0)})
        chaos.bind_sleep(fake_sleep)
        chaos.before_read(0, "all_postings")
        assert slept == [pytest.approx(0.025)]
        assert clock() == pytest.approx(0.025)

    def test_engine_binds_its_sleep_on_injection(self):
        sleeps = []
        engine = ShardedEngine.from_relation(
            _relation(seed=51), RANDOM_ORDERING, shards=2,
            sleep=lambda s: sleeps.append(s),
        )
        chaos = engine.inject_chaos(
            ChaosPolicy(default=ShardFaultSpec(latency_ms=5.0)))
        engine.search("color = 'red'", 3, algorithm="naive")
        assert sleeps, "chaos latency must run on the engine's sleep"
        assert chaos.injected["latency"] == len(sleeps)
        engine.close()

    def test_explicit_sleep_wins_over_bind(self):
        mine = []
        chaos = ChaosPolicy(sleep=lambda s: mine.append(s),
                            per_shard={0: ShardFaultSpec(latency_ms=1.0)})
        chaos.bind_sleep(lambda s: (_ for _ in ()).throw(AssertionError))
        chaos.before_read(0, "all_postings")
        assert mine == [pytest.approx(0.001)]


# ----------------------------------------------------------------------
# Health surface (satellite 2)
# ----------------------------------------------------------------------
class TestReplicaHealth:
    def test_snapshot_gains_replica_dimension(self):
        engine = ShardedEngine.from_relation(
            _relation(seed=61), RANDOM_ORDERING, shards=2, replicas=2
        )
        engine.search("color = 'red'", 3, algorithm="probe")
        rows = engine.health.snapshot()
        logical = [row for row in rows if row["replica_id"] is None]
        physical = [row for row in rows if row["replica_id"] is not None]
        assert len(logical) == 2
        assert len(physical) == 4
        assert {(row["shard_id"], row["replica_id"]) for row in physical} == {
            (0, 0), (0, 1), (1, 0), (1, 1)
        }
        assert all("breaker" in row and "ewma_ms" in row for row in physical)
        engine.close()

    def test_unreplicated_snapshot_unchanged(self):
        engine = ShardedEngine.from_relation(
            _relation(seed=62), RANDOM_ORDERING, shards=2
        )
        rows = engine.health.snapshot()
        assert len(rows) == 2
        assert all(row["replica_id"] is None for row in rows)
        engine.close()

    def test_replica_gauges_exported(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            engine = ShardedEngine.from_relation(
                _relation(seed=63), RANDOM_ORDERING, shards=2, replicas=2
            )
            engine.search("color = 'red'", 3, algorithm="probe")
            registry.run_collectors()
            # Healthy reads stay on the primary copy of every shard; the
            # idle follower is still visible (at zero) per its address.
            assert registry.value(
                "repro_replica_requests", shard="0", replica="0") > 0
            assert registry.value(
                "repro_replica_requests", shard="1", replica="0") > 0
            assert registry.find(
                "repro_replica_requests", shard="0", replica="1") is not None
            # The coordinator-driven scan credits shard successes (its
            # admission counters belong to the gather fan-out).
            assert registry.value("repro_shard_successes", shard="0") > 0
            engine.close()

    def test_failover_counter_exported(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            engine = ShardedEngine.from_relation(
                _relation(seed=64), RANDOM_ORDERING, shards=2, replicas=2
            )
            chaos = engine.inject_chaos(ChaosPolicy(seed=8))
            chaos.crash(0, replica_id=0)
            engine.search("color = 'red'", 3, algorithm="probe")
            assert registry.value(
                "repro_replica_failovers_total", shard="0") > 0
            engine.close()
