"""Deep invariant tests: the paper's stated invariants, checked *during*
algorithm execution (not just on the outputs)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dewey import LEFT, MIDDLE, RIGHT, in_region, zeros
from repro.core.onepass import OnePassTree, one_pass_unscored
from repro.core.ordering import DiversityOrdering
from repro.core.probe_node import ProbeNode
from repro.index.inverted import InvertedIndex
from repro.index.merged import MergedList

from .conftest import RANDOM_ORDERING, random_query, random_relation


def check_probe_tree(node: ProbeNode, members: set, tentatives: set) -> None:
    """Recursively verify the probing structure's bookkeeping:

    * ``count`` equals the number of confirmed leaves below,
    * ``tentative_count`` likewise for tentative leaves,
    * every leaf lies inside its ancestors' regions.
    """
    if node.level == node.depth:
        if node.is_tentative:
            tentatives.add(node.prefix)
        else:
            members.add(node.prefix)
        return
    child_members: set = set()
    child_tentatives: set = set()
    for component, child in node.children.items():
        assert child.prefix == node.prefix + (component,)
        check_probe_tree(child, child_members, child_tentatives)
    for leaf in child_members | child_tentatives:
        assert in_region(leaf, node.prefix)
    assert node.count == len(child_members)
    assert node.tentative_count == len(child_tentatives)
    members |= child_members
    tentatives |= child_tentatives


def check_paper_invariant(node: ProbeNode, all_ids) -> None:
    """Section IV-A: "Whenever id ∈ node, either id belongs to some child of
    node in our data structure, or node.edge[LEFT] <= id <= node.edge[RIGHT]"
    — checked for every match of the query against every structure node."""
    if node.level == node.depth:
        return
    for dewey in all_ids:
        if not in_region(dewey, node.prefix):
            continue
        child = node.children.get(dewey[node.level])
        inside_child = child is not None and in_region(dewey, child.prefix)
        in_gap = (
            node.edge_left is not None
            and node.edge_right is not None
            and node.edge_left <= dewey <= node.edge_right
        )
        assert inside_child or in_gap, (
            f"{dewey} lost by node {node.prefix}: not in any child and "
            f"outside [{node.edge_left}, {node.edge_right}]"
        )
    for child in node.children.values():
        check_paper_invariant(child, all_ids)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000), st.integers(1, 8))
def test_probe_structure_invariants_throughout_execution(seed, k):
    """Run the unscored probing driver step by step, checking the structure
    and the paper's containment invariant after every add."""
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=35)
    index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
    query = random_query(rng)
    merged = MergedList(query, index)
    from repro.core.baselines import collect_all

    all_ids = collect_all(MergedList(query, index))
    first = merged.next(zeros(merged.depth), LEFT)
    if first is None:
        return
    root = ProbeNode(first, 0, LEFT)
    steps = 0
    while root.num_items() < k and steps < 4 * k + 20:
        steps += 1
        request = root.get_probe_id()
        if request is None:
            break
        probe_id, direction, owner = request
        found = merged.next(probe_id, direction)
        if found is None or not in_region(found, owner.prefix):
            owner.close_frontier()
            continue
        root.add(found, direction)
        members: set = set()
        tentatives: set = set()
        check_probe_tree(root, members, tentatives)
        assert members <= set(all_ids)
        check_paper_invariant(root, all_ids)
    assert root.num_items() == min(k, len(all_ids))


def check_onepass_tree(tree: OnePassTree) -> None:
    """Verify OnePassTree's incremental counters against its leaf set."""
    leaves = tree.scored_results()
    from collections import Counter, defaultdict

    expected_counts: Counter = Counter()
    expected_scores: dict = defaultdict(Counter)
    for dewey, score in leaves.items():
        for level in range(tree.depth + 1):
            expected_counts[dewey[:level]] += 1
            expected_scores[dewey[:level]][score] += 1
    for prefix, count in expected_counts.items():
        assert tree._counts[prefix] == count
        assert dict(expected_scores[prefix]) == tree._score_counts[prefix]
    # No stale entries beyond the root.
    for prefix, count in tree._counts.items():
        if prefix != ():
            assert count == expected_counts[prefix] > 0
    for prefix, bucket in tree._children.items():
        for component in bucket:
            assert expected_counts.get(prefix + (component,), 0) > 0


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000))
def test_onepass_tree_bookkeeping(seed):
    """Random add/remove sequences keep every counter consistent."""
    rng = random.Random(seed)
    tree = OnePassTree(depth=4, k=6)
    live = 0
    for _ in range(rng.randint(1, 60)):
        if live and rng.random() < 0.4:
            victim = tree.remove()
            assert victim is not None
            live -= 1
        else:
            dewey = (
                rng.randint(0, 2), rng.randint(0, 2),
                rng.randint(0, 2), rng.randint(0, 4),
            )
            before = tree.num_items()
            tree.add(dewey, score=float(rng.randint(1, 3)))
            live += tree.num_items() - before
        check_onepass_tree(tree)
        assert tree.num_items() == live


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000), st.integers(1, 8))
def test_onepass_remove_always_evicts_minimum_score(seed, k):
    rng = random.Random(seed)
    tree = OnePassTree(depth=3, k=k)
    for _ in range(rng.randint(1, 30)):
        tree.add(
            (rng.randint(0, 2), rng.randint(0, 2), rng.randint(0, 9)),
            score=float(rng.randint(1, 3)),
        )
    while tree.num_items():
        scores = tree.scored_results()
        minimum = min(scores.values())
        victim = tree.remove()
        assert scores[victim] == minimum
