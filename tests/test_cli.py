"""Tests for the command-line interface."""

import io

import pytest

from repro.__main__ import main
from repro.data.paper_example import figure1_relation
from repro.storage.csvio import write_csv


@pytest.fixture
def cars_csv(tmp_path):
    path = tmp_path / "cars.csv"
    write_csv(figure1_relation(), path)
    return path


@pytest.fixture
def built_snapshot(cars_csv, tmp_path):
    out = tmp_path / "cars.idx"
    code = main([
        "build", str(cars_csv),
        "--ordering", "Make,Model,Color,Year,Description",
        "--out", str(out),
    ])
    assert code == 0
    return out


class TestBuild:
    def test_build_reports_stats(self, cars_csv, tmp_path, capsys):
        out = tmp_path / "cars.idx"
        code = main([
            "build", str(cars_csv),
            "--ordering", "Make,Model",
            "--out", str(out), "--backend", "bptree",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "indexed 15 rows" in text
        assert "backend=bptree" in text
        assert out.exists()


class TestQuery:
    def test_basic_query(self, built_snapshot, capsys):
        code = main(["query", str(built_snapshot), "Make = 'Honda'", "-k", "3"])
        assert code == 0
        text = capsys.readouterr().out
        assert "Honda" in text
        assert "[3 results, probe, " in text

    def test_scored_query(self, built_snapshot, capsys):
        code = main([
            "query", str(built_snapshot),
            "Make = 'Toyota' [2] OR Description CONTAINS 'miles'",
            "-k", "4", "--scored", "--algorithm", "onepass",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "score" in text
        assert "scored" in text

    def test_stats_flag(self, built_snapshot, capsys):
        code = main([
            "query", str(built_snapshot), "Make = 'Honda'", "--stats",
        ])
        assert code == 0
        assert "next_calls" in capsys.readouterr().out

    def test_parse_error_exit_code(self, built_snapshot, capsys):
        code = main(["query", str(built_snapshot), "Make = "])
        assert code == 2
        assert "parse error" in capsys.readouterr().err

    def test_no_results(self, built_snapshot, capsys):
        code = main(["query", str(built_snapshot), "Make = 'Tesla'"])
        assert code == 0
        assert "(no results)" in capsys.readouterr().out


class TestCacheFlag:
    def test_stats_show_cache_counters_by_default(self, built_snapshot, capsys):
        code = main(["query", str(built_snapshot), "Make = 'Honda'", "--stats"])
        assert code == 0
        text = capsys.readouterr().out
        assert "cache_hit" in text
        assert "cache_misses" in text

    def test_no_cache_flag_disables_counters(self, built_snapshot, capsys):
        code = main([
            "query", str(built_snapshot), "Make = 'Honda'", "--stats", "--no-cache",
        ])
        assert code == 0
        assert "cache_hit" not in capsys.readouterr().out

    def test_shell_repeated_query_hits_cache(self, built_snapshot, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("Make = 'Honda'\nMake = 'Honda'\nexit\n")
        )
        code = main(["shell", str(built_snapshot), "-k", "2", "--stats"])
        assert code == 0
        text = capsys.readouterr().out
        assert "cache_hit: 0" in text
        assert "cache_hit: 1" in text


class TestShell:
    def test_shell_session(self, built_snapshot, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("Make = 'Toyota'\nexit\n")
        )
        code = main(["shell", str(built_snapshot), "-k", "2"])
        assert code == 0
        text = capsys.readouterr().out
        assert "repro shell" in text
        assert "Toyota" in text

    def test_shell_blank_line_quits(self, built_snapshot, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("\n"))
        assert main(["shell", str(built_snapshot)]) == 0


class TestDemo:
    def test_default_demo(self, capsys):
        assert main(["demo"]) == 0
        text = capsys.readouterr().out
        assert "Figure 1(a)" in text
        assert "Honda" in text

    def test_demo_custom_query(self, capsys):
        assert main(["demo", "Description CONTAINS 'Low'", "-k", "3"]) == 0
        assert "results" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
