"""Tests for the command-line interface."""

import io

import pytest

from repro.__main__ import main
from repro.data.paper_example import figure1_relation
from repro.storage.csvio import write_csv


@pytest.fixture
def cars_csv(tmp_path):
    path = tmp_path / "cars.csv"
    write_csv(figure1_relation(), path)
    return path


@pytest.fixture
def built_snapshot(cars_csv, tmp_path):
    out = tmp_path / "cars.idx"
    code = main([
        "build", str(cars_csv),
        "--ordering", "Make,Model,Color,Year,Description",
        "--out", str(out),
    ])
    assert code == 0
    return out


class TestBuild:
    def test_build_reports_stats(self, cars_csv, tmp_path, capsys):
        out = tmp_path / "cars.idx"
        code = main([
            "build", str(cars_csv),
            "--ordering", "Make,Model",
            "--out", str(out), "--backend", "bptree",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "indexed 15 rows" in text
        assert "backend=bptree" in text
        assert out.exists()


class TestQuery:
    def test_basic_query(self, built_snapshot, capsys):
        code = main(["query", str(built_snapshot), "Make = 'Honda'", "-k", "3"])
        assert code == 0
        text = capsys.readouterr().out
        assert "Honda" in text
        assert "[3 results, probe, " in text

    def test_scored_query(self, built_snapshot, capsys):
        code = main([
            "query", str(built_snapshot),
            "Make = 'Toyota' [2] OR Description CONTAINS 'miles'",
            "-k", "4", "--scored", "--algorithm", "onepass",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "score" in text
        assert "scored" in text

    def test_stats_flag(self, built_snapshot, capsys):
        code = main([
            "query", str(built_snapshot), "Make = 'Honda'", "--stats",
        ])
        assert code == 0
        assert "next_calls" in capsys.readouterr().out

    def test_parse_error_exit_code(self, built_snapshot, capsys):
        code = main(["query", str(built_snapshot), "Make = "])
        assert code == 2
        assert "parse error" in capsys.readouterr().err

    def test_no_results(self, built_snapshot, capsys):
        code = main(["query", str(built_snapshot), "Make = 'Tesla'"])
        assert code == 0
        assert "(no results)" in capsys.readouterr().out


class TestCacheFlag:
    def test_stats_show_cache_counters_by_default(self, built_snapshot, capsys):
        code = main(["query", str(built_snapshot), "Make = 'Honda'", "--stats"])
        assert code == 0
        text = capsys.readouterr().out
        assert "cache_hit" in text
        assert "cache_misses" in text

    def test_no_cache_flag_disables_counters(self, built_snapshot, capsys):
        code = main([
            "query", str(built_snapshot), "Make = 'Honda'", "--stats", "--no-cache",
        ])
        assert code == 0
        assert "cache_hit" not in capsys.readouterr().out

    def test_shell_repeated_query_hits_cache(self, built_snapshot, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("Make = 'Honda'\nMake = 'Honda'\nexit\n")
        )
        code = main(["shell", str(built_snapshot), "-k", "2", "--stats"])
        assert code == 0
        text = capsys.readouterr().out
        assert "cache_hit: 0" in text
        assert "cache_hit: 1" in text


class TestShell:
    def test_shell_session(self, built_snapshot, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("Make = 'Toyota'\nexit\n")
        )
        code = main(["shell", str(built_snapshot), "-k", "2"])
        assert code == 0
        text = capsys.readouterr().out
        assert "repro shell" in text
        assert "Toyota" in text

    def test_shell_blank_line_quits(self, built_snapshot, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("\n"))
        assert main(["shell", str(built_snapshot)]) == 0


class TestDemo:
    def test_default_demo(self, capsys):
        assert main(["demo"]) == 0
        text = capsys.readouterr().out
        assert "Figure 1(a)" in text
        assert "Honda" in text

    def test_demo_custom_query(self, capsys):
        assert main(["demo", "Description CONTAINS 'Low'", "-k", "3"]) == 0
        assert "results" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestAutoAlgorithm:
    def test_query_with_auto_prints_selection(self, built_snapshot, capsys):
        code = main([
            "query", str(built_snapshot), "Make = 'Honda'",
            "-k", "3", "--algorithm", "auto",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "auto->" in text
        assert "Honda" in text

    def test_auto_stats_carry_plan_features(self, built_snapshot, capsys):
        code = main([
            "query", str(built_snapshot), "Make = 'Honda'",
            "--algorithm", "auto", "--stats",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "algorithm_selected" in text
        assert "plan_est_matches" in text

    def test_demo_supports_auto(self, capsys):
        assert main(["demo", "--algorithm", "auto"]) == 0
        assert "auto->" in capsys.readouterr().out


class TestPlanExplain:
    def test_explain_demo_default_query(self, capsys):
        assert main(["plan", "explain"]) == 0
        text = capsys.readouterr().out
        assert "query: Make = 'Honda'" in text
        assert "<- selected" in text
        assert "costs (seek units, lower wins):" in text
        assert "excluded: not diversity-preserving" in text

    def test_explain_query_text_positional(self, capsys):
        assert main(["plan", "explain", "Color = 'Blue'", "-k", "3"]) == 0
        text = capsys.readouterr().out
        assert "query: Color = 'Blue'" in text
        for algorithm in ("onepass", "probe", "naive", "basic", "multq"):
            assert algorithm in text

    def test_explain_against_snapshot(self, built_snapshot, capsys):
        code = main([
            "plan", "explain", str(built_snapshot), "Make = 'Honda'", "-k", "4",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "plan:" in text
        assert "est matches" in text

    def test_explain_parse_error(self, capsys):
        assert main(["plan", "explain", "Make = "]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_explain_sharded(self, capsys):
        assert main(["plan", "explain", "--shards", "2"]) == 0
        assert "<- selected" in capsys.readouterr().out


class TestMetricsAuto:
    def test_metrics_accepts_auto_and_checks_bounds(self, capsys):
        code = main([
            "metrics", "--limit", "4", "--repeat", "1",
            "--algorithms", "probe,auto", "--check",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "bounds ok" in captured.err
        assert "repro_plan_choice_total" in captured.out
