"""Tests for the synthetic Autos generator and the Figure 4 workloads."""

import random

import pytest

from repro.data.autos import (
    MAKES_MODELS,
    AutosSpec,
    autos_ordering,
    autos_schema,
    generate_autos,
    rare_models,
)
from repro.data.paper_example import FIGURE1_ROWS, figure1_relation
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.query.evaluate import res, selectivity


class TestAutosGenerator:
    def test_deterministic(self):
        a = generate_autos(rows=500, seed=7)
        b = generate_autos(rows=500, seed=7)
        assert list(a) == list(b)

    def test_seed_changes_data(self):
        a = generate_autos(rows=500, seed=7)
        b = generate_autos(rows=500, seed=8)
        assert list(a) != list(b)

    def test_schema(self):
        relation = generate_autos(rows=10, seed=1)
        assert relation.schema == autos_schema()
        assert autos_ordering().depth == 6

    def test_row_count(self):
        assert len(generate_autos(rows=1234, seed=1)) == 1234

    def test_models_belong_to_makes(self):
        relation = generate_autos(rows=2000, seed=3)
        for row in relation:
            make, model = row[0], row[1]
            assert model in MAKES_MODELS[make]

    def test_make_skew(self):
        """Zipf weighting: the top make dominates the last one."""
        relation = generate_autos(rows=20_000, seed=2)
        counts = {}
        for row in relation:
            counts[row[0]] = counts.get(row[0], 0) + 1
        ordered = list(MAKES_MODELS)
        assert counts[ordered[0]] > 3 * counts.get(ordered[-1], 1)

    def test_rare_models_exist(self):
        """Every vertical needs its S2000: rare listings must be present so
        diversity can surface them."""
        relation = generate_autos(rows=30_000, seed=4)
        rare = rare_models(relation)
        assert rare  # at least one genuinely rare model

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AutosSpec(rows=-1)
        with pytest.raises(ValueError):
            AutosSpec(makes=0)
        with pytest.raises(ValueError):
            generate_autos(AutosSpec(rows=5), rows=5)

    def test_makes_limit(self):
        relation = generate_autos(rows=1000, seed=5, makes=3)
        observed = {row[0] for row in relation}
        assert observed <= set(list(MAKES_MODELS)[:3])


class TestFigure1Data:
    def test_fifteen_rows(self):
        assert len(FIGURE1_ROWS) == 15
        assert len(figure1_relation()) == 15

    def test_fresh_copies(self):
        a = figure1_relation()
        b = figure1_relation()
        a.insert(("Tesla", "ModelS", "Red", 2008, "new"))
        assert len(b) == 15


class TestWorkloads:
    def test_deterministic(self):
        relation = generate_autos(rows=500, seed=1)
        spec = WorkloadSpec(queries=20, predicates=2, seed=9)
        a = WorkloadGenerator(relation, spec).materialise()
        b = WorkloadGenerator(relation, spec).materialise()
        assert [q.describe() for q in a] == [q.describe() for q in b]

    def test_query_count(self):
        relation = generate_autos(rows=200, seed=1)
        queries = WorkloadGenerator(relation, queries=7, predicates=1).materialise()
        assert len(queries) == 7

    def test_zero_predicates_is_match_all(self):
        relation = generate_autos(rows=100, seed=1)
        queries = WorkloadGenerator(relation, queries=3, predicates=0).materialise()
        assert all(q.is_match_all() for q in queries)

    def test_predicate_count(self):
        relation = generate_autos(rows=300, seed=1)
        queries = WorkloadGenerator(relation, queries=10, predicates=3).materialise()
        for query in queries:
            assert len(list(query.leaves())) == 3

    def test_disjunctive_flag(self):
        relation = generate_autos(rows=300, seed=1)
        queries = WorkloadGenerator(
            relation, queries=5, predicates=2, disjunctive=True
        ).materialise()
        from repro.query.query import OR

        assert all(q.kind == OR for q in queries)

    def test_weighted_flag(self):
        relation = generate_autos(rows=300, seed=1)
        queries = WorkloadGenerator(
            relation, queries=10, predicates=2, weighted=True, seed=3
        ).materialise()
        weights = {leaf.weight for q in queries for leaf in q.leaves()}
        assert len(weights) > 1

    def test_selectivity_steering(self):
        """Target 0.8 workloads should measure clearly higher selectivity
        than target 0.05 workloads."""
        relation = generate_autos(rows=2000, seed=1)
        low = WorkloadGenerator(
            relation, queries=15, predicates=1, selectivity=0.05, seed=2
        ).materialise()
        high = WorkloadGenerator(
            relation, queries=15, predicates=1, selectivity=0.8, seed=2
        ).materialise()
        mean = lambda qs: sum(selectivity(relation, q) for q in qs) / len(qs)
        assert mean(high) > mean(low) + 0.2

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(predicates=6)
        with pytest.raises(ValueError):
            WorkloadSpec(selectivity=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(k=0)
        with pytest.raises(ValueError):
            WorkloadSpec(queries=-1)

    def test_spec_or_overrides_not_both(self):
        relation = generate_autos(rows=50, seed=1)
        with pytest.raises(ValueError):
            WorkloadGenerator(relation, WorkloadSpec(), queries=5)

    def test_queries_actually_match_something(self):
        """Random predicates are drawn from the data, so most queries should
        have at least one result at moderate selectivity."""
        relation = generate_autos(rows=1000, seed=6)
        queries = WorkloadGenerator(
            relation, queries=20, predicates=1, selectivity=0.5, seed=4
        ).materialise()
        nonempty = sum(1 for q in queries if res(relation, q))
        assert nonempty >= 15


class TestSkewedWorkloads:
    """The Zipf repeated-query mode feeding the serving-cache benchmarks."""

    def _relation(self):
        return generate_autos(rows=200, seed=3)

    def test_distinct_pool_bounds_unique_queries(self):
        generator = WorkloadGenerator(
            self._relation(),
            WorkloadSpec(queries=200, predicates=1, distinct=10, zipf_s=1.0, seed=5),
        )
        queries = generator.materialise()
        assert len(queries) == 200
        assert len(set(queries)) <= 10

    def test_deterministic(self):
        spec = WorkloadSpec(queries=100, predicates=1, distinct=8, zipf_s=1.0, seed=9)
        relation = self._relation()
        first = WorkloadGenerator(relation, spec).materialise()
        second = WorkloadGenerator(relation, spec).materialise()
        assert first == second

    def test_zipf_skews_toward_low_ranks(self):
        """With s=1.0 the rank-1 query must dominate the tail rank."""
        relation = self._relation()
        generator = WorkloadGenerator(
            relation,
            WorkloadSpec(queries=2000, predicates=1, distinct=20, zipf_s=1.0, seed=11),
        )
        pool = generator.query_pool()
        counts = {}
        for query in generator.queries():
            counts[query] = counts.get(query, 0) + 1
        assert counts.get(pool[0], 0) > counts.get(pool[-1], 0) * 2

    def test_zero_skew_is_roughly_uniform(self):
        relation = self._relation()
        generator = WorkloadGenerator(
            relation,
            WorkloadSpec(queries=2000, predicates=1, distinct=4, zipf_s=0.0, seed=13),
        )
        counts = {}
        for query in generator.queries():
            counts[query] = counts.get(query, 0) + 1
        assert max(counts.values()) < 2 * min(counts.values())

    def test_query_pool_requires_distinct(self):
        generator = WorkloadGenerator(
            self._relation(), WorkloadSpec(queries=10, predicates=1)
        )
        with pytest.raises(ValueError):
            generator.query_pool()

    def test_skew_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(distinct=-1)
        with pytest.raises(ValueError):
            WorkloadSpec(zipf_s=-0.5)

    def test_distinct_zero_keeps_legacy_behaviour(self):
        """distinct=0 must reproduce the pre-skew workload stream exactly."""
        relation = self._relation()
        legacy = WorkloadGenerator(
            relation, WorkloadSpec(queries=20, predicates=1, seed=17)
        ).materialise()
        rng = random.Random(17)
        generator = WorkloadGenerator(
            relation, WorkloadSpec(queries=20, predicates=1, seed=17)
        )
        assert legacy == [generator.one_query(rng) for _ in range(20)]
