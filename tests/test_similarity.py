"""Tests for the formal diversity semantics: water-filling, checkers, and
their equivalence to brute-force minimisation of the paper's objective."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diversify import diverse_subset, scored_diverse_subset, waterfill
from repro.core.similarity import (
    children_of,
    count_tree,
    is_balanced,
    is_diverse,
    is_scored_diverse,
    pair_objective,
)


class TestCountTree:
    def test_counts_every_prefix(self):
        counts = count_tree([(0, 0), (0, 1), (1, 0)])
        assert counts[()] == 3
        assert counts[(0,)] == 2
        assert counts[(1,)] == 1
        assert counts[(0, 1)] == 1

    def test_children_of(self):
        counts = count_tree([(0, 0), (0, 1), (1, 0)])
        assert sorted(children_of(counts, ())) == [(0,), (1,)]
        assert children_of(counts, (0,)) == [(0, 0), (0, 1)] or sorted(
            children_of(counts, (0,))
        ) == [(0, 0), (0, 1)]


class TestPairObjective:
    def test_zero_for_singletons(self):
        assert pair_objective([1, 1, 1]) == 0

    def test_counts_pairs(self):
        assert pair_objective([3]) == 3
        assert pair_objective([2, 2]) == 2


class TestIsBalanced:
    def test_balanced(self):
        assert is_balanced([2, 1, 1], [5, 5, 5])

    def test_unbalanced(self):
        assert not is_balanced([3, 1, 0], [5, 5, 5])

    def test_capacity_excuses_imbalance(self):
        assert is_balanced([3, 1, 1], [5, 1, 1])

    def test_overflow_rejected(self):
        assert not is_balanced([3], [2])

    def test_lower_bound_respected(self):
        assert not is_balanced([0, 1], [2, 2], [1, 0])

    def test_lower_bounds_excuse_imbalance(self):
        # Child 0 is pinned at 3 by forced items: (3, 1) is optimal.
        assert is_balanced([3, 1], [3, 5], [3, 0])

    def test_misaligned_vectors_rejected(self):
        with pytest.raises(ValueError):
            is_balanced([1], [1, 2])


class TestWaterfill:
    def test_even_split(self):
        assert waterfill(6, [5, 5, 5]) == [2, 2, 2]

    def test_capacity_limits(self):
        assert waterfill(6, [1, 10, 2]) == [1, 3, 2]

    def test_lower_bounds(self):
        assert waterfill(5, [5, 5], [4, 0]) == [4, 1]

    def test_infeasible_budget(self):
        with pytest.raises(ValueError):
            waterfill(7, [2, 2])
        with pytest.raises(ValueError):
            waterfill(1, [5, 5], [1, 1])

    def test_zero_budget(self):
        assert waterfill(0, [3, 3]) == [0, 0]

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=5),
        st.data(),
    )
    def test_optimal_vs_bruteforce(self, capacities, data):
        budget = data.draw(st.integers(min_value=0, max_value=sum(capacities)))
        allocation = waterfill(budget, capacities)
        assert sum(allocation) == budget
        assert all(0 <= n <= c for n, c in zip(allocation, capacities))
        best = min(
            sum(n * n for n in combo)
            for combo in itertools.product(
                *(range(c + 1) for c in capacities)
            )
            if sum(combo) == budget
        )
        assert sum(n * n for n in allocation) == best

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4),
    )
    def test_nestedness(self, capacities):
        """Optimal allocations grow one unit at a time (greedy = nested)."""
        previous = [0] * len(capacities)
        for budget in range(1, sum(capacities) + 1):
            allocation = waterfill(budget, capacities)
            grew = [a - p for a, p in zip(allocation, previous)]
            assert sum(grew) == 1 and all(g >= 0 for g in grew)
            previous = allocation


def brute_force_diverse_sets(deweys, k):
    """All size-k subsets achieving per-prefix optimality (the definition)."""
    return [
        set(combo)
        for combo in itertools.combinations(sorted(deweys), k)
        if is_diverse(combo, deweys, k)
    ]


def brute_force_best_objective(deweys, k):
    """Check the checker itself: Definition 2 via exhaustive per-prefix
    minimisation.  For each candidate set, every prefix's child counts must
    be water-fill optimal, which we verify by direct enumeration."""
    best = []
    counts_all = count_tree(deweys)
    depth = len(next(iter(deweys)))
    for combo in itertools.combinations(sorted(deweys), k):
        chosen = count_tree(combo)
        ok = True
        for prefix, budget in chosen.items():
            if len(prefix) >= depth:
                continue
            kids = children_of(counts_all, prefix)
            ns = [chosen.get(c, 0) for c in kids]
            caps = [counts_all[c] for c in kids]
            best_obj = min(
                sum(x * x for x in assign)
                for assign in itertools.product(*(range(c + 1) for c in caps))
                if sum(assign) == budget
            )
            if sum(x * x for x in ns) != best_obj:
                ok = False
                break
        if ok:
            best.append(set(combo))
    return best


class TestIsDiverse:
    def test_figure1_example(self):
        """The top relation of Figure 1(b) (three Honda models) is diverse;
        the bottom one (three Civics) is not, when four models exist."""
        hondas = [(0, m, c, 0) for m, c in [(0, 0), (0, 1), (0, 2), (1, 0), (2, 0), (3, 0)]]
        three_models = [(0, 0, 0, 0), (0, 1, 0, 0), (0, 2, 0, 0)]
        three_civics = [(0, 0, 0, 0), (0, 0, 1, 0), (0, 0, 2, 0)]
        assert is_diverse(three_models, hondas, 3)
        assert not is_diverse(three_civics, hondas, 3)

    def test_must_be_subset(self):
        assert not is_diverse([(9, 9)], [(0, 0)], 1)

    def test_size_enforced(self):
        universe = [(0, 0), (1, 0)]
        assert not is_diverse([(0, 0)], universe, 2)

    def test_empty_selection(self):
        assert is_diverse([], [], 0)
        assert is_diverse([], [(0, 0)], 0)

    def test_duplicates_rejected(self):
        assert not is_diverse([(0, 0), (0, 0)], [(0, 0), (1, 0)], 2)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_checker_matches_bruteforce_definition(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 8)
        deweys = list(
            {
                (rng.randint(0, 2), rng.randint(0, 2), i)
                for i in range(n)
            }
        )
        k = rng.randint(1, len(deweys))
        expected = brute_force_best_objective(deweys, k)
        for combo in itertools.combinations(sorted(deweys), k):
            assert is_diverse(combo, deweys, k) == (set(combo) in expected)


class TestIsScoredDiverse:
    def test_forced_items_required(self):
        scores = {(0, 0): 5.0, (0, 1): 1.0, (1, 0): 1.0}
        assert is_scored_diverse([(0, 0), (1, 0)], scores, 2)
        # Dropping the score-5 tuple loses total score.
        assert not is_scored_diverse([(0, 1), (1, 0)], scores, 2)

    def test_diversity_among_ties(self):
        scores = {(0, 0): 1.0, (0, 1): 1.0, (1, 0): 1.0}
        assert is_scored_diverse([(0, 0), (1, 0)], scores, 2)
        assert not is_scored_diverse([(0, 0), (0, 1)], scores, 2)

    def test_reduces_to_unscored_on_uniform_scores(self):
        deweys = [(0, 0), (0, 1), (1, 0), (1, 1)]
        scores = {d: 2.0 for d in deweys}
        for combo in itertools.combinations(deweys, 2):
            assert is_scored_diverse(list(combo), scores, 2) == is_diverse(
                combo, deweys, 2
            )

    def test_reduces_to_topk_on_unique_scores(self):
        scores = {(0, 0): 1.0, (0, 1): 2.0, (0, 2): 3.0, (1, 0): 4.0}
        assert is_scored_diverse([(0, 2), (1, 0)], scores, 2)
        assert not is_scored_diverse([(0, 0), (1, 0)], scores, 2)

    def test_forced_imbalance_is_tolerated(self):
        """Forced high scorers may crowd one branch; the tier must still be
        spread as well as the bounds allow."""
        scores = {(0, 0): 9.0, (0, 1): 9.0, (0, 2): 1.0, (1, 0): 1.0}
        assert is_scored_diverse([(0, 0), (0, 1), (1, 0)], scores, 3)
        assert not is_scored_diverse([(0, 0), (0, 1), (0, 2)], scores, 3)
