"""The serving layer: plan/result caching, epoch invalidation, batching.

The central contract under test: **a cached engine is answer-identical to
an uncached engine at every index state** — caching changes timings and
``cache_*`` stats, never items.  The property tests interleave inserts,
deletes and searches over one shared index to prove it for all five
algorithms, scored and unscored.
"""

from __future__ import annotations

import random

import pytest

from repro import ALGORITHMS, DiversityEngine, Query
from repro.bench.harness import run_serving_workload
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.serving import BatchReport, CacheStats, ServingCache, ServingEngine
from repro.serving.cache import PlanCache, ResultCache, _LRU

from .conftest import (
    COLORS,
    MAKES,
    MODELS,
    RANDOM_ORDERING,
    WORDS,
    random_query,
    random_relation,
)


def _paired_engines(**cache_options):
    """One shared index, one plain engine, one cached engine."""
    plain = DiversityEngine.from_relation(figure1_relation(), figure1_ordering())
    cached = DiversityEngine(plain.index, cache=ServingCache(**cache_options))
    return plain, cached


def _answers(result):
    """The answer payload of a result (everything but stats)."""
    return [
        (item.dewey, item.rid, item.values, item.score) for item in result.items
    ]


class TestLRU:
    def test_capacity_evicts_oldest(self):
        lru = _LRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)
        assert lru.get("a") is None
        assert lru.get("b") == 2
        assert lru.evictions == 1

    def test_get_refreshes_recency(self):
        lru = _LRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")
        lru.put("c", 3)
        assert lru.get("a") == 1
        assert lru.get("b") is None

    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            _LRU(0)


class TestResultCacheBehaviour:
    def test_repeat_query_hits(self):
        _, cached = _paired_engines()
        first = cached.search("Make = 'Honda'", k=3)
        second = cached.search("Make = 'Honda'", k=3)
        assert first.stats["cache_hit"] == 0
        assert second.stats["cache_hit"] == 1
        assert second.stats["cache_hits"] == 1
        assert second.stats["cache_misses"] == 1
        assert _answers(first) == _answers(second)

    def test_hit_requires_same_k_algorithm_scored(self):
        _, cached = _paired_engines()
        cached.search("Make = 'Honda'", k=3)
        assert cached.search("Make = 'Honda'", k=4).stats["cache_hit"] == 0
        assert (
            cached.search("Make = 'Honda'", k=3, algorithm="onepass").stats["cache_hit"]
            == 0
        )
        assert cached.search("Make = 'Honda'", k=3, scored=True).stats["cache_hit"] == 0
        # The original key still hits.
        assert cached.search("Make = 'Honda'", k=3).stats["cache_hit"] == 1

    def test_equivalent_spellings_share_one_entry(self):
        """Canonicalisation: whitespace/formatting differences hit the same
        result entry once the plan is parsed."""
        _, cached = _paired_engines()
        cached.search("Make = 'Honda'", k=3)
        other = cached.search("Make   =   'Honda'", k=3)
        assert other.stats["cache_hit"] == 1

    def test_query_object_and_string_share_one_entry(self):
        _, cached = _paired_engines()
        cached.search(Query.scalar("Make", "Honda"), k=3)
        assert cached.search("Make = 'Honda'", k=3).stats["cache_hit"] == 1

    def test_insert_invalidates_lazily(self):
        plain, cached = _paired_engines()
        cached.search("Make = 'Honda'", k=5)
        plain.insert(("Honda", "Prelude", "Black", 1999, "classic coupe"))
        result = cached.search("Make = 'Honda'", k=5)
        assert result.stats["cache_hit"] == 0
        assert result.stats["cache_epoch_invalidations"] == 1
        assert _answers(result) == _answers(plain.search("Make = 'Honda'", k=5))

    def test_delete_invalidates_lazily(self):
        plain, cached = _paired_engines()
        before = cached.search("Make = 'Honda'", k=5)
        victim = before.items[0].rid
        cached_engine_result = cached.search("Make = 'Honda'", k=5)
        assert cached_engine_result.stats["cache_hit"] == 1
        assert plain.delete(victim)
        after = cached.search("Make = 'Honda'", k=5)
        assert after.stats["cache_hit"] == 0
        assert after.stats["cache_epoch_invalidations"] == 1
        assert victim not in after.rids

    def test_unrelated_entries_survive_by_revalidation(self):
        """Epoch invalidation is lazy: an entry computed *after* the bump
        is immediately servable again."""
        plain, cached = _paired_engines()
        cached.search("Make = 'Honda'", k=3)
        plain.insert(("Kia", "Rio", "Red", 2005, "commuter"))
        miss = cached.search("Make = 'Honda'", k=3)
        assert miss.stats["cache_hit"] == 0
        hit = cached.search("Make = 'Honda'", k=3)
        assert hit.stats["cache_hit"] == 1

    def test_eviction_counter(self):
        _, cached = _paired_engines(result_capacity=2)
        cached.search("Make = 'Honda'", k=1)
        cached.search("Make = 'Honda'", k=2)
        cached.search("Make = 'Honda'", k=3)  # evicts the k=1 entry
        result = cached.search("Make = 'Honda'", k=1)
        assert result.stats["cache_hit"] == 0
        assert result.stats["cache_evictions"] >= 1

    def test_result_items_are_isolated_copies(self):
        _, cached = _paired_engines()
        first = cached.search("Make = 'Honda'", k=3)
        first.items.append("garbage")
        second = cached.search("Make = 'Honda'", k=3)
        assert second.stats["cache_hit"] == 1
        assert "garbage" not in second.items


class TestEmptyPostingListInvalidation:
    """Regression: deleting the *last* row matching a term must invalidate
    cached results for that term.  The hazard is an index that drops the
    now-empty posting list entirely — the re-search sees "no such term" and
    must still miss the cache (epoch bump), not serve the stale hit."""

    def test_delete_last_row_for_term_invalidates_cached_result(self):
        plain, cached = _paired_engines()
        rid = plain.insert(("Honda", "Insight", "Silver", 2009, "zebrafish hybrid"))
        first = cached.search("Description CONTAINS 'zebrafish'", k=5)
        assert [item.rid for item in first.items] == [rid]
        hit = cached.search("Description CONTAINS 'zebrafish'", k=5)
        assert hit.stats["cache_hit"] == 1
        # Delete through the *cached* engine: the only 'zebrafish' posting dies.
        assert cached.delete(rid)
        after = cached.search("Description CONTAINS 'zebrafish'", k=5)
        assert after.stats["cache_hit"] == 0, "stale result served after delete"
        assert after.stats["cache_epoch_invalidations"] >= 1
        assert list(after.items) == []

    def test_delete_last_row_for_scalar_value_invalidates(self):
        """Same edge for a scalar predicate whose value disappears."""
        plain, cached = _paired_engines()
        rid = plain.insert(("Zonda", "F", "Yellow", 2006, "track toy"))
        assert [i.rid for i in cached.search("Make = 'Zonda'", k=3).items] == [rid]
        assert cached.search("Make = 'Zonda'", k=3).stats["cache_hit"] == 1
        assert plain.delete(rid)  # mutation through the *other* facade
        after = cached.search("Make = 'Zonda'", k=3)
        assert after.stats["cache_hit"] == 0
        assert list(after.items) == []

    def test_reinsert_after_emptying_serves_fresh_result(self):
        _, cached = _paired_engines()
        rid = cached.insert(("Honda", "Insight", "Silver", 2009, "zebrafish"))
        cached.search("Description CONTAINS 'zebrafish'", k=5)
        assert cached.delete(rid)
        assert cached.search("Description CONTAINS 'zebrafish'", k=5).items == []
        rid2 = cached.insert(("Honda", "Insight", "Blue", 2010, "zebrafish two"))
        again = cached.search("Description CONTAINS 'zebrafish'", k=5)
        assert [item.rid for item in again.items] == [rid2]


class TestPlanCacheBehaviour:
    def test_plan_hits_and_revalidation(self):
        plain, cached = _paired_engines()
        cached.search("Make = 'Honda' AND Color = 'Green'", k=2)
        again = cached.search("Make = 'Honda' AND Color = 'Green'", k=2)
        assert again.stats["cache_plan_hits"] == 1
        plain.insert(("Honda", "Fit", "Green", 2008, "hatchback"))
        after = cached.search("Make = 'Honda' AND Color = 'Green'", k=2)
        # The parse/normalise work was reused; only the ordering was redone.
        assert after.stats["cache_plan_revalidations"] == 1
        assert after.stats["cache_plan_misses"] == 1

    def test_unoptimized_plans_never_revalidate(self):
        plain, cached = _paired_engines()
        cached.search("Make = 'Honda'", k=2, optimize=False)
        plain.insert(("Honda", "Fit", "Green", 2008, "hatchback"))
        after = cached.search("Make = 'Honda'", k=2, optimize=False)
        assert after.stats["cache_plan_hits"] == 1
        assert after.stats["cache_plan_revalidations"] == 0

    def test_plan_cache_standalone(self):
        engine = DiversityEngine.from_relation(figure1_relation(), figure1_ordering())
        plans = PlanCache(capacity=4)
        entry, outcome = plans.lookup(engine, "Make = 'Honda'", False, True)
        assert outcome == "miss"
        entry2, outcome2 = plans.lookup(engine, "Make = 'Honda'", False, True)
        assert outcome2 == "hit"
        assert entry2 is entry
        engine.insert(("Honda", "Fit", "Green", 2008, "hatchback"))
        _, outcome3 = plans.lookup(engine, "Make = 'Honda'", False, True)
        assert outcome3 == "revalidated"


class TestCacheStats:
    def test_hit_ratio(self):
        stats = CacheStats()
        assert stats.hit_ratio == 0.0
        stats.hits, stats.misses = 3, 1
        assert stats.hit_ratio == 0.75
        assert stats.lookups == 4

    def test_as_stats_dict_keys(self):
        keys = CacheStats().as_stats_dict()
        assert set(keys) == {
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_epoch_invalidations",
            "cache_plan_hits",
            "cache_plan_misses",
            "cache_plan_revalidations",
            "cache_decision_hits",
            "cache_decision_misses",
            "cache_decision_replans",
        }

    def test_clear_keeps_counters(self):
        _, cached = _paired_engines()
        cached.search("Make = 'Honda'", k=3)
        cached.cache.clear()
        result = cached.search("Make = 'Honda'", k=3)
        assert result.stats["cache_hit"] == 0
        assert result.stats["cache_misses"] == 2


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("scored", [False, True])
def test_cached_engine_identical_under_mutations(algorithm, scored):
    """Property: interleaving insert/delete/search, the cached engine's
    answers stay bit-identical to a cache-disabled engine sharing the same
    index — for every algorithm, scored and unscored."""
    rng = random.Random(20080 + hash((algorithm, scored)) % 1000)
    relation = random_relation(rng, max_rows=30)
    plain = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
    cached = DiversityEngine(plain.index, cache=ServingCache(result_capacity=64))
    live_rids = list(relation.live_rids()) if hasattr(relation, "live_rids") else [
        rid for rid, _ in relation.iter_live()
    ]
    recent_queries = []
    for _ in range(60):
        action = rng.random()
        if action < 0.12:
            row = (
                rng.choice(MAKES),
                rng.choice(MODELS),
                rng.choice(COLORS),
                " ".join(rng.sample(WORDS, rng.randint(1, 3))),
            )
            live_rids.append(cached.insert(row))
        elif action < 0.18 and live_rids:
            cached.delete(live_rids.pop(rng.randrange(len(live_rids))))
        else:
            # Re-ask recent (query, k) pairs often so the cache gets hits.
            if recent_queries and rng.random() < 0.6:
                query, k = rng.choice(recent_queries)
            else:
                query = random_query(rng, weighted=scored)
                k = rng.randint(0, 8)
                recent_queries.append((query, k))
            expected = plain.search(query, k, algorithm=algorithm, scored=scored)
            actual = cached.search(query, k, algorithm=algorithm, scored=scored)
            assert _answers(actual) == _answers(expected), (
                f"cached answers diverged for {query!r} (k={k}, "
                f"algorithm={algorithm}, scored={scored})"
            )
    # The interleave must actually have exercised the cache.
    assert cached.cache.stats.hits > 0


class TestServingEngine:
    def test_search_many_preserves_order_and_counts(self):
        serving = ServingEngine.from_relation(figure1_relation(), figure1_ordering())
        queries = ["Make = 'Honda'", "Make = 'Toyota'", "Make = 'Honda'"]
        report = serving.search_many(queries, k=3)
        assert isinstance(report, BatchReport)
        assert report.queries == 3
        assert report.cache_stats["hits"] == 1
        assert report.cache_stats["misses"] == 2
        assert report.hit_ratio == pytest.approx(1 / 3)
        assert report.results[0].deweys == report.results[2].deweys
        assert report.total_seconds >= 0.0
        assert report.mean_ms >= 0.0

    def test_search_many_threaded_matches_sequential(self):
        relation = figure1_relation()
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(queries=40, predicates=1, distinct=8, zipf_s=1.0, seed=7),
        ).materialise()
        sequential = ServingEngine.from_relation(relation, figure1_ordering())
        threaded = ServingEngine.from_relation(figure1_relation(), figure1_ordering())
        seq_report = sequential.search_many(workload, k=4)
        thr_report = threaded.search_many(workload, k=4, threads=4)
        assert thr_report.threads == 4
        assert [r.deweys for r in seq_report.results] == [
            r.deweys for r in thr_report.results
        ]

    def test_search_many_threaded_counters_sum(self):
        """Under a thread pool the cache counters must still account for
        every query exactly once: hits + misses == len(queries), and the
        result payloads equal the sequential run's."""
        relation = figure1_relation()
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(queries=60, predicates=1, distinct=6, zipf_s=1.0, seed=11),
        ).materialise()
        sequential = ServingEngine.from_relation(relation, figure1_ordering())
        threaded = ServingEngine.from_relation(figure1_relation(), figure1_ordering())
        seq = sequential.search_many(workload, k=4)
        thr = threaded.search_many(workload, k=4, threads=4)
        assert thr.cache_stats["hits"] + thr.cache_stats["misses"] == len(workload)
        assert seq.cache_stats["hits"] + seq.cache_stats["misses"] == len(workload)
        # Concurrent misses of one query may each compute (benign): the
        # threaded run can only trade hits for misses, never lose lookups.
        assert thr.cache_stats["misses"] >= seq.cache_stats["misses"]
        assert [_answers(a) for a in thr.results] == [
            _answers(b) for b in seq.results
        ]

    def test_from_relation_sharded_wiring(self):
        """shards>1 builds a ShardedEngine under the serving facade; the
        caches key on the summed epoch and answers match shards=1."""
        from repro.sharding import ShardedEngine

        flat = ServingEngine.from_relation(figure1_relation(), figure1_ordering())
        sharded = ServingEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=3, workers=2
        )
        assert isinstance(sharded.engine, ShardedEngine)
        assert sharded.engine.num_shards == 3
        for algorithm in ALGORITHMS:
            a = flat.search("Make = 'Honda'", k=5, algorithm=algorithm)
            b = sharded.search("Make = 'Honda'", k=5, algorithm=algorithm)
            assert _answers(a) == _answers(b)
        # Repeat hits the sharded engine's cache...
        assert sharded.search("Make = 'Honda'", k=5).stats["cache_hit"] == 1
        # ...and a routed mutation (one shard's epoch) invalidates it.
        rid = sharded.insert(("Honda", "Fit", "Green", 2008, "hatchback"))
        assert sharded.epoch == 1
        after = sharded.search("Make = 'Honda'", k=5)
        assert after.stats["cache_hit"] == 0
        assert sharded.delete(rid)
        assert sharded.epoch == 2

    def test_search_many_rejects_negative_threads(self):
        serving = ServingEngine.from_relation(figure1_relation(), figure1_ordering())
        with pytest.raises(ValueError):
            serving.search_many(["Make = 'Honda'"], k=3, threads=-1)

    def test_delegation_and_epoch(self):
        serving = ServingEngine.from_relation(figure1_relation(), figure1_ordering())
        assert serving.epoch == 0
        rid = serving.insert(("Honda", "Fit", "Green", 2008, "hatchback"))
        assert serving.epoch == 1
        assert serving.delete(rid)
        assert serving.epoch == 2
        assert serving.engine.cache is serving.cache

    def test_clear_cache(self):
        serving = ServingEngine.from_relation(figure1_relation(), figure1_ordering())
        serving.search("Make = 'Honda'", k=3)
        serving.clear_cache()
        assert serving.search("Make = 'Honda'", k=3).stats["cache_hit"] == 0


class TestHarnessIntegration:
    def test_run_serving_workload_counts(self):
        relation = figure1_relation()
        serving = ServingEngine.from_relation(relation, figure1_ordering())
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(queries=50, predicates=1, distinct=5, zipf_s=1.0, seed=2),
        ).materialise()
        timing = run_serving_workload(serving, workload, 5, "UProbe")
        assert timing.queries == 50
        assert timing.cache_hits + timing.cache_misses == 50
        assert timing.cache_hits >= 40  # only 5 distinct queries
        assert 0.0 < timing.cache_hit_ratio <= 1.0
        warm = run_serving_workload(serving, workload, 5, "UProbe")
        assert warm.cache_hits == 50
        assert warm.next_calls == 0  # pure hits touch no posting lists

    def test_run_serving_workload_rejects_ablation_tags(self):
        serving = ServingEngine.from_relation(figure1_relation(), figure1_ordering())
        with pytest.raises(ValueError):
            run_serving_workload(serving, [], 5, "UOnePassNoSkip")
        with pytest.raises(ValueError):
            run_serving_workload(serving, [], 5, "NoSuchTag")


class TestEngineFacadeHooks:
    def test_prepare_execute_round_trip(self, cars_engine):
        plan = cars_engine.prepare("Make = 'Honda' AND Color = 'Green'")
        direct = cars_engine.execute(plan, 3)
        assert _answers(direct) == _answers(
            cars_engine.search("Make = 'Honda' AND Color = 'Green'", 3)
        )

    def test_attach_and_detach_cache(self, cars_engine):
        cache = ServingCache()
        cars_engine.attach_cache(cache)
        assert cars_engine.cache is cache
        cars_engine.search("Make = 'Honda'", k=2)
        cars_engine.search("Make = 'Honda'", k=2)
        assert cache.stats.hits == 1
        cars_engine.attach_cache(None)
        assert cars_engine.cache is None
        assert "cache_hit" not in cars_engine.search("Make = 'Honda'", k=2).stats

    def test_index_epoch_counts_mutations(self, cars_engine):
        assert cars_engine.epoch == 0
        rid = cars_engine.insert(("Honda", "Fit", "Green", 2008, "hatchback"))
        assert cars_engine.epoch == 1
        cars_engine.delete(rid)
        assert cars_engine.epoch == 2
        # A failed delete is not a mutation.
        assert not cars_engine.delete(rid)
        assert cars_engine.epoch == 2
