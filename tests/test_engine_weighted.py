"""Tests for the engine's weighted-search convenience."""

import pytest

from repro import DiversityEngine
from repro.data.paper_example import figure1_ordering, figure1_relation


@pytest.fixture
def engine():
    relation = figure1_relation()
    # Add a couple of Teslas so make-level weighting has something to skew.
    relation.insert(("Tesla", "ModelS", "Red", 2008, "fast"))
    relation.insert(("Tesla", "Roadster", "Red", 2008, "faster"))
    return DiversityEngine.from_relation(relation, figure1_ordering())


class TestSearchWeighted:
    def test_uniform_weights_behave_like_unweighted(self, engine):
        result = engine.search_weighted("Year = 2007", k=6, value_weights={})
        plain = engine.search("Year = 2007", k=6, algorithm="naive")
        count = lambda res: sorted(
            sum(1 for item in res if item["Make"] == make)
            for make in ("Honda", "Toyota")
        )
        assert count(result) == count(plain)

    def test_boost_shifts_allocation(self, engine):
        boosted = engine.search_weighted(
            "", k=6, value_weights={("Make", "Honda"): 9.0}
        )
        hondas = sum(1 for item in boosted if item["Make"] == "Honda")
        plain = engine.search("", k=6, algorithm="naive")
        hondas_plain = sum(1 for item in plain if item["Make"] == "Honda")
        assert hondas > hondas_plain

    def test_result_metadata(self, engine):
        result = engine.search_weighted("Make = 'Honda'", k=3, value_weights={})
        assert result.algorithm == "weighted"
        assert not result.scored
        assert len(result) == 3
        assert "next_calls" in result.stats

    def test_k_larger_than_matches(self, engine):
        result = engine.search_weighted("Make = 'Tesla'", k=10, value_weights={})
        assert len(result) == 2
